"""Authentication-flow execution (§3.2).

Reproduces the paper's manual procedure step by step: browse the site, fill
every sign-up field with the persona, submit, fetch the confirmation link
from the mailbox when the site requires it, sign in with the created
account, reload the site logged-in, and finally click through to a product
subpage (to observe leakage behaviour on subpages vs. the auth pages).

The runner reports the same per-site outcomes the paper tabulates:
successful flows, unreachable sites, sites without authentication, sites
whose policy blocks sign-up, and CAPTCHA failures (the Brave/nykaa case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..browser import Browser
from ..core.persona import Persona
from ..mailsim import Mailbox
from ..netsim import (
    STAGE_CONFIRM,
    STAGE_HOMEPAGE,
    STAGE_RELOAD,
    STAGE_SIGNIN,
    STAGE_SIGNUP,
    STAGE_SUBPAGE,
)
from ..websim.html import ParsedForm, ParsedPage
from ..websim.site import PAGE_PRODUCT, PAGE_SIGNIN, PAGE_SIGNUP, Website

# Flow outcomes (§3.2 population accounting).
STATUS_SUCCESS = "success"
STATUS_UNREACHABLE = "unreachable"
STATUS_NO_AUTH = "no_auth"
STATUS_BLOCKED = "signup_blocked"
STATUS_CAPTCHA_FAILED = "captcha_failed"
STATUS_SIGNIN_FAILED = "signin_failed"
STATUS_BOT_BLOCKED = "bot_blocked"                 # automated mode only
STATUS_CONFIRMATION_FAILED = "confirmation_failed"  # automated mode only
STATUS_QUARANTINED = "quarantined"  # circuit breaker gave up on the origin

# Transient-vs-permanent failure taxonomy.  The paper's §3.2 accounting
# distinguishes sites worth revisiting (temporarily unreachable) from
# sites that are definitively out of the study; the resilient crawl
# engine classifies every failed flow the same way.
FAILURE_TRANSIENT = "transient"
FAILURE_PERMANENT = "permanent"

#: status -> failure class (None for success).
STATUS_TAXONOMY = {
    STATUS_SUCCESS: None,
    STATUS_UNREACHABLE: FAILURE_TRANSIENT,
    STATUS_QUARANTINED: FAILURE_PERMANENT,
    STATUS_NO_AUTH: FAILURE_PERMANENT,
    STATUS_BLOCKED: FAILURE_PERMANENT,
    STATUS_CAPTCHA_FAILED: FAILURE_PERMANENT,
    STATUS_SIGNIN_FAILED: FAILURE_PERMANENT,
    STATUS_BOT_BLOCKED: FAILURE_PERMANENT,
    STATUS_CONFIRMATION_FAILED: FAILURE_PERMANENT,
}

#: Canonical display order for population accounting.
ALL_STATUSES = (
    STATUS_SUCCESS,
    STATUS_UNREACHABLE,
    STATUS_QUARANTINED,
    STATUS_NO_AUTH,
    STATUS_BLOCKED,
    STATUS_CAPTCHA_FAILED,
    STATUS_SIGNIN_FAILED,
    STATUS_BOT_BLOCKED,
    STATUS_CONFIRMATION_FAILED,
)


@dataclass
class FlowResult:
    """Outcome of one site's authentication flow."""

    site: str
    status: str
    block_reason: Optional[str] = None
    #: Attempts the failing exchange consumed (1 when nothing retried).
    attempts: int = 1
    #: Transport/HTTP fault kind behind a network failure, when known.
    failure_kind: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.status == STATUS_SUCCESS

    @property
    def failure_class(self) -> Optional[str]:
        """Transient-vs-permanent classification of this outcome."""
        return STATUS_TAXONOMY.get(self.status, FAILURE_PERMANENT)


class AuthFlowRunner:
    """Drives the full §3.2 flow for one site through a browser.

    ``automated=True`` models an OpenWPM-style bot instead of the paper's
    human operator: the client is detectable by bot-detection systems and
    has no access to the confirmation mailbox — the two §3.2 obstacles
    (43 + 68 sites) that made the paper collect its data manually.
    """

    def __init__(self, browser: Browser, persona: Persona,
                 mailbox: Mailbox, automated: bool = False) -> None:
        self.browser = browser
        self.persona = persona
        self.mailbox = mailbox
        self.automated = automated
        if automated:
            from dataclasses import replace
            self.browser.profile = replace(self.browser.profile,
                                           automation_detectable=True)

    def _network_failure(self, site: Website) -> FlowResult:
        """Classify a failed page load via the browser's failure record.

        An open circuit breaker means the origin failed repeatedly at the
        transport level — the site is quarantined (permanent); anything
        else stays in the paper's ``unreachable`` bucket (transient).
        """
        failure = getattr(self.browser, "last_failure", None)
        if failure is not None and failure.circuit_open:
            return FlowResult(site.domain, STATUS_QUARANTINED,
                              attempts=failure.attempts,
                              failure_kind=failure.kind)
        if failure is not None:
            return FlowResult(site.domain, STATUS_UNREACHABLE,
                              attempts=failure.attempts,
                              failure_kind=failure.kind)
        return FlowResult(site.domain, STATUS_UNREACHABLE)

    def run(self, site: Website) -> FlowResult:
        # Step 0: policy gates known before/while browsing.
        homepage = self.browser.visit(site, site.page_url("home"),
                                      STAGE_HOMEPAGE)
        if not homepage.ok:
            return self._network_failure(site)
        if not site.auth.has_auth:
            return FlowResult(site.domain, STATUS_NO_AUTH)
        if site.auth.signup_block is not None:
            return FlowResult(site.domain, STATUS_BLOCKED,
                              block_reason=site.auth.signup_block)

        # Step 1: sign-up.
        signup_page = self.browser.visit(site, site.page_url(PAGE_SIGNUP),
                                         STAGE_SIGNUP)
        if not signup_page.ok or signup_page.page is None:
            return self._network_failure(site)
        form = _find_form(signup_page.page, "signup-form")
        if form is None:
            return FlowResult(site.domain, STATUS_NO_AUTH)
        submitted = self.browser.submit_form(site, form,
                                             self.persona.form_fields(),
                                             STAGE_SIGNUP)
        if submitted.status == 403:
            if self.automated and site.auth.bot_detection:
                return FlowResult(site.domain, STATUS_BOT_BLOCKED)
            return FlowResult(site.domain, STATUS_CAPTCHA_FAILED)
        if not submitted.ok:
            return self._network_failure(site)

        # Step 2: e-mail confirmation ("open another browser and get the
        # email confirmation link" — the link is fetched out of the mailbox
        # and opened in the same instrumented browser).
        if site.auth.requires_email_confirmation:
            if self.automated:
                # A bot has nobody reading the inbox: the account stays
                # pending and the flow cannot complete.
                return FlowResult(site.domain, STATUS_CONFIRMATION_FAILED)
            message = self.mailbox.latest_confirmation(site.domain)
            if message is None or message.confirm_url is None:
                return FlowResult(site.domain, STATUS_UNREACHABLE)
            confirmed = self.browser.visit(site, message.confirm_url,
                                           STAGE_CONFIRM, keep_pii=True)
            if not confirmed.ok:
                return self._network_failure(site)

        # Step 3: sign-in with the created account.
        signin_page = self.browser.visit(site, site.page_url(PAGE_SIGNIN),
                                         STAGE_SIGNIN)
        if not signin_page.ok or signin_page.page is None:
            return self._network_failure(site)
        signin_form = _find_form(signin_page.page, "signin-form")
        if signin_form is None:
            return FlowResult(site.domain, STATUS_NO_AUTH)
        signed_in = self.browser.submit_form(
            site, signin_form,
            {"email": self.persona.email, "password": self.persona.password},
            STAGE_SIGNIN)
        if not signed_in.ok:
            return FlowResult(site.domain, STATUS_SIGNIN_FAILED)

        # Step 4: reload the site with the logged-in account.
        self.browser.visit(site, site.page_url("home"), STAGE_RELOAD)

        # Step 5: click a product link (subpage observation).
        self.browser.visit(site, site.page_url(PAGE_PRODUCT), STAGE_SUBPAGE)

        return FlowResult(site.domain, STATUS_SUCCESS)


def _find_form(page: ParsedPage, form_id: str) -> Optional[ParsedForm]:
    for form in page.forms:
        if form.form_id == form_id:
            return form
    return page.forms[0] if page.forms else None
