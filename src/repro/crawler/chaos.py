"""Deterministic worker-fault injection for the supervised crawl.

The fault-injection layer of :mod:`repro.netsim.faults` hardens the
*simulated network*; this module hardens the *executor* by letting tests
and CI kill, hang, or slow real worker processes at exact, seeded points
— so every supervision path (watchdog trip, retry, quarantine, drain) is
exercised reproducibly instead of waiting for a real OOM-kill to find
the bugs.

A :class:`ChaosPlan` is a picklable tuple of :class:`WorkerFault`
directives.  The supervisor ships the plan to every worker it launches
(together with the worker's attempt number for its shard); the worker
installs it around its heartbeat stream and, when a fault's trigger
``(shard, sites completed, attempt)`` matches, the fault fires:

* ``kill`` — the process exits immediately via ``os._exit`` (no Python
  cleanup, no result), exactly like a segfault or OOM kill;
* ``hang`` — the process stops making progress (sleeps forever) while
  staying alive, exactly like a deadlocked or wedged worker; only the
  supervisor's heartbeat watchdog can detect it;
* ``slow`` — every subsequent heartbeat is delayed by ``delay``
  seconds, for exercising watchdog deadlines against live-but-slow
  workers.

Faults fire *after* the triggering site's heartbeat (and its checkpoint,
when checkpointing is on) has been delivered, so "kill after site K"
leaves exactly K sites of durable progress.  ``attempts`` bounds the
attempt indexes a fault fires on (default: only the first attempt, so a
supervisor retry converges); ``attempts=None`` fires on every attempt —
the poison-shard case that must end in quarantine.

Chaos is a *worker-process* concern: plans are inert in serial
(in-process) crawls, and :class:`~repro.crawler.ParallelCrawler` refuses
to combine a chaos plan with ``workers=1`` rather than killing the
caller's own process.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

#: The supported fault kinds (also the ``--chaos`` spec verbs).
KIND_KILL = "kill"
KIND_HANG = "hang"
KIND_SLOW = "slow"
CHAOS_KINDS = (KIND_KILL, KIND_HANG, KIND_SLOW)

#: Exit code a chaos-killed worker dies with (visible in supervision
#: events; distinct from clean exit and from signal deaths).
CHAOS_KILL_EXIT_CODE = 86

#: The ``--chaos`` spec grammar, echoed by parse errors.
CHAOS_SPEC_GRAMMAR = (
    "KIND:SHARD[:AFTER_SITES[:ATTEMPTS]] where KIND is kill|hang|slow, "
    "SHARD is the target shard index, AFTER_SITES is how many sites the "
    "shard completes before the fault fires (default 1; 0 fires at "
    "startup), and ATTEMPTS is how many worker attempts the fault fires "
    "on (default 1; '*' means every attempt). Examples: 'kill:0', "
    "'hang:2:1', 'slow:1:0:*'"
)


class ChaosError(ValueError):
    """A chaos spec could not be parsed or applied."""


@dataclass(frozen=True)
class WorkerFault:
    """One seeded process-level fault directive.

    ``shard`` is the target shard index; ``after_sites`` the number of
    completed sites that triggers the fault (0 = at worker startup,
    before the first site); ``attempts`` the number of initial attempt
    indexes the fault fires on (``None`` = every attempt); ``delay``
    the per-heartbeat delay, in wall seconds, for ``slow`` faults.
    """

    kind: str
    shard: int
    after_sites: int = 1
    attempts: Optional[int] = 1
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ChaosError("unknown chaos fault kind %r (expected %s)"
                             % (self.kind, "|".join(CHAOS_KINDS)))
        if self.shard < 0:
            raise ChaosError("chaos fault shard must be >= 0")
        if self.after_sites < 0:
            raise ChaosError("chaos fault after_sites must be >= 0")
        if self.attempts is not None and self.attempts < 1:
            raise ChaosError("chaos fault attempts must be >= 1 or None")

    def fires_on_attempt(self, attempt: int) -> bool:
        return self.attempts is None or attempt < self.attempts

    def describe(self) -> str:
        scope = ("every attempt" if self.attempts is None
                 else "first %d attempt(s)" % self.attempts)
        return ("%s shard %d after %d site(s) (%s)"
                % (self.kind, self.shard, self.after_sites, scope))


@dataclass(frozen=True)
class ChaosPlan:
    """A picklable, deterministic worker-fault plan.

    Plain data end to end (PKL301–303 hold): the plan crosses the
    process boundary with each worker launch and decides every fault as
    a pure function of ``(shard, sites completed, attempt)`` — the same
    plan against the same layout misbehaves identically on every run.
    """

    faults: Tuple[WorkerFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def fault_for(self, shard: int, attempt: int) -> Optional[WorkerFault]:
        """The first fault armed for ``(shard, attempt)``, if any."""
        for fault in self.faults:
            if fault.shard == shard and fault.fires_on_attempt(attempt):
                return fault
        return None

    def describe(self) -> str:
        if not self.faults:
            return "no chaos"
        return "; ".join(fault.describe() for fault in self.faults)


def parse_chaos_spec(spec: str) -> WorkerFault:
    """Parse one ``--chaos`` spec into a :class:`WorkerFault`.

    Raises :class:`ChaosError` whose message echoes the supported
    grammar (:data:`CHAOS_SPEC_GRAMMAR`) on any malformed spec.
    """
    def fail(why: str) -> "ChaosError":
        return ChaosError("--chaos %r: %s; expected %s"
                          % (spec, why, CHAOS_SPEC_GRAMMAR))

    parts = spec.strip().split(":")
    if not 2 <= len(parts) <= 4:
        raise fail("expected 2-4 colon-separated fields")
    kind = parts[0].strip().lower()
    if kind not in CHAOS_KINDS:
        raise fail("unknown fault kind %r" % parts[0])
    try:
        shard = int(parts[1])
    except ValueError:
        raise fail("shard %r is not an integer" % parts[1]) from None
    after_sites = 1
    if len(parts) >= 3:
        try:
            after_sites = int(parts[2])
        except ValueError:
            raise fail("after-sites %r is not an integer"
                       % parts[2]) from None
    attempts: Optional[int] = 1
    if len(parts) == 4:
        if parts[3].strip() == "*":
            attempts = None
        else:
            try:
                attempts = int(parts[3])
            except ValueError:
                raise fail("attempts %r is not an integer or '*'"
                           % parts[3]) from None
    try:
        return WorkerFault(kind=kind, shard=shard, after_sites=after_sites,
                           attempts=attempts)
    except ChaosError as exc:
        raise fail(str(exc)) from None


def parse_chaos_plan(specs) -> Optional[ChaosPlan]:
    """Parse a sequence of ``--chaos`` specs (``None``/empty → ``None``)."""
    if not specs:
        return None
    return ChaosPlan(faults=tuple(parse_chaos_spec(spec) for spec in specs))


class ChaosMonkey:
    """The worker-side fault executor for one ``(shard, attempt)``.

    Built inside the worker process from the pickled plan; never crosses
    the process boundary itself.  :meth:`on_start` runs before the first
    site, :meth:`on_site` after each completed site's heartbeat.
    """

    def __init__(self, fault: Optional[WorkerFault]) -> None:
        self.fault = fault
        self.sites_completed = 0

    # Wall-clock sleeps are this module's *purpose* — chaos manipulates
    # real process liveness, which the simulated clock cannot model.
    # Faults fire after the dataset-affecting work of the triggering
    # site is already durable, so determinism of the merged fingerprint
    # is untouched (asserted in tests/test_supervisor_chaos.py).

    def on_start(self) -> None:
        if self.fault is not None and self.fault.after_sites == 0:
            self._fire()

    def on_site(self) -> None:
        self.sites_completed += 1
        if self.fault is None:
            return
        if self.fault.kind == KIND_SLOW:
            if self.sites_completed >= self.fault.after_sites:
                time.sleep(self.fault.delay)
            return
        if self.sites_completed == self.fault.after_sites:
            self._fire()

    def _fire(self) -> None:
        assert self.fault is not None
        if self.fault.kind == KIND_KILL:
            # Die the way a segfault dies: immediately, no cleanup, no
            # result, no exception crossing the queue.
            os._exit(CHAOS_KILL_EXIT_CODE)
        if self.fault.kind == KIND_HANG:
            while True:     # stay alive but wedge until the watchdog acts
                time.sleep(3600)
