"""Parallel sharded crawl engine.

Fans a population's site list out over a pool of worker *processes* and
deterministically merges the per-shard results back into one
:class:`~repro.crawler.CrawlDataset`.  The engine's contract (asserted in
``tests/test_parallel_crawl.py``) is **fingerprint invariance**: for a
fixed ``(population, seed, shard layout)``, the merged dataset's
:meth:`~repro.crawler.CrawlDataset.fingerprint` is bit-identical no
matter how many workers execute the shards — one in-process worker
(``workers=1``, the serial reference) or any pool size, with or without
fault injection, with or without checkpoint interruptions.

How the invariance is achieved
------------------------------
* **Shards, not sites, are the unit of state.**  Each shard is crawled
  by a completely independent :class:`~repro.crawler.CrawlSession` —
  its own browser (cookie jar, capture log, simulated clock), mailbox
  and circuit breakers — built from a *picklable*
  :class:`PopulationSpec`, never from live server objects.  Worker
  processes rebuild the synthetic web locally (population construction
  is seeded and cheap), so nothing mutable is shared across processes.
* **Fault plans are per-shard and order-free.**  Every shard receives a
  :meth:`~repro.netsim.faults.FaultPlan.fresh_copy` of the study plan.
  Fault decisions are a pure function of ``(seed, namespace, origin,
  per-origin counter)`` — namespaced per-origin, not per-process-order —
  so a shard draws the identical fault stream wherever and whenever it
  runs.
* **The merge is deterministic.**  Shard results are concatenated in
  shard-index order (capture log, cookie snapshots, mailbox, flow
  outcomes), which depends only on the layout.

The deliberate semantic consequence: browser state never spans shards,
so cookie-based cross-site linkage exists only *within* a shard.  The
paper's subject — PII-leakage-based tracking, where the identifier is a
hash of the persona's email — is unaffected, because that identifier is
recomputed identically on every site regardless of shard placement.

Execution is *supervised* (see :mod:`repro.crawler.supervisor`): with
``workers > 1`` each shard runs in its own watched worker process with
bounded in-flight dispatch, heartbeat-based liveness detection, bounded
retry of lost shards, poison-shard quarantine, and graceful
SIGINT/SIGTERM shutdown that leaves a resumable study manifest behind.
Supervision never moves a fingerprint: a shard's result is the same pure
function of ``(population, seed, shard)`` whichever attempt produced it.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field as dataclasses_field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.assets import CompiledStudyAssets, StudyAssetsSpec
from ..mailsim import Mailbox
from ..netsim import CaptureLog
from ..netsim.faults import FaultEvent, FaultPlan
from ..obs import Recorder, merge_recorders
from ..obs.progress import HeartbeatEvent, final_heartbeat, step_heartbeat
from ..obs.runtime import ResourceSampler
from ..reporting.redact import redact_email
from ..websim.population import Population
from .chaos import ChaosPlan
from .flows import STATUS_QUARANTINED
from .runner import CrawlDataset, CrawlSession, StudyCrawler
from .sharding import ShardInfo, ShardLayout
from .supervisor import (
    IncompleteCrawlError,
    ShardSupervisor,
    SupervisionOutcome,
    SupervisorConfig,
    load_manifest,
    validate_manifest_layout,
    write_manifest,
)

#: A parent-side heartbeat sink (e.g. a
#: :class:`~repro.obs.progress.ProgressAggregator`).
ProgressSink = Callable[[HeartbeatEvent], None]


# ---------------------------------------------------------------------------
# Population specs: picklable recipes a worker process rebuilds a web from.
# ---------------------------------------------------------------------------

class PopulationSpec:
    """A picklable recipe for (re)building a :class:`Population`.

    Workers receive a spec — never a live :class:`~repro.websim.server.
    WebServer` or resolver — and call :meth:`build` locally, so every
    process owns its synthetic web outright.  ``build`` must be
    deterministic: two calls (in any process) return populations that
    crawl identically.
    """

    def build(self) -> Population:
        """Construct the population; must be deterministic."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable identity (for logs and errors)."""
        return type(self).__name__


@dataclass(frozen=True)
class CalibratedPopulationSpec(PopulationSpec):
    """The paper-calibrated 404-site shopping population."""

    def build(self) -> Population:
        from ..websim.shopping import build_study_population
        return build_study_population().population

    def describe(self) -> str:
        return "calibrated shopping population"


@dataclass(frozen=True)
class GeneratedPopulationSpec(PopulationSpec):
    """A seeded random population (see :mod:`repro.websim.generator`).

    ``config`` is a :class:`~repro.websim.generator.GeneratorConfig`
    (frozen, hence picklable); ``None`` means the generator's defaults.
    """

    seed: int = 0
    config: Optional[object] = None

    def build(self) -> Population:
        from ..websim.generator import generate_population
        return generate_population(seed=self.seed, config=self.config)

    def describe(self) -> str:
        return "generated population (seed=%d)" % self.seed


@dataclass
class PrebuiltPopulationSpec(PopulationSpec):
    """Wraps an already-built population.

    :meth:`build` returns a deep copy so that shards can never observe
    each other's (or the caller's) mutations through a shared object —
    the same isolation a worker process gets for free from pickling.
    """

    population: Population

    def build(self) -> Population:
        return copy.deepcopy(self.population)

    def describe(self) -> str:
        return "prebuilt population (%d sites)" % len(self.population.sites)


# ---------------------------------------------------------------------------
# Shard jobs and results (the pool's picklable currency).
# ---------------------------------------------------------------------------

@dataclass
class ShardJob:
    """Everything one worker needs to crawl one shard."""

    spec: PopulationSpec
    shard: ShardInfo
    profile: Optional[object] = None          # BrowserProfile
    consent_policy: Optional[str] = None
    automated: bool = False
    fault_plan: Optional[FaultPlan] = None    # fresh per-shard copy
    retry_policy: Optional[object] = None     # RetryPolicy
    extension: Optional[object] = None        # ContentBlocker
    firewall: Optional[object] = None         # OutboundFirewall
    checkpoint_path: Optional[str] = None
    #: Record a per-shard observability trace (spans + metrics) and
    #: ship it back with the result.  Off by default: tracing must
    #: never be a tax on untraced crawls.
    trace: bool = False
    #: Emit per-site :class:`~repro.obs.progress.HeartbeatEvent`\ s
    #: while crawling.  Like tracing, off by default and — invariantly
    #: — never an influence on the dataset fingerprint.
    progress: bool = False
    #: Sample process resources (CPU/RSS/GC via
    #: :class:`~repro.obs.runtime.ResourceSampler`) at heartbeat time
    #: and attach them to each event plus the shard result.  Pure ops
    #: telemetry: requires ``progress`` to have a channel to ride, and
    #: never touches the dataset or the trace.
    resources: bool = False
    #: Compact compiled-assets recipe (see
    #: :class:`~repro.core.assets.StudyAssetsSpec`).  When present the
    #: worker resolves its population through the process-local assets
    #: memo, so every shard the process executes shares one rebuilt
    #: population instead of building its own.
    assets: Optional[StudyAssetsSpec] = None


@dataclass
class ShardResult:
    """One shard's finished crawl, as returned by a worker.

    ``dataset.population`` is stripped (``None``) before crossing the
    process boundary — the parent re-attaches its own population during
    the merge — so the synthetic web is never pickled back N times.
    ``recorder`` carries the shard's trace when the job asked for one;
    it is a plain picklable value object (PKL301-303 hold) whose
    content depends only on the shard, never on which worker ran it.
    """

    index: int
    dataset: CrawlDataset
    fault_events: Tuple[FaultEvent, ...] = ()
    recorder: Optional[Recorder] = None
    #: The shard's final resource sample (CPU/GC deltas over the whole
    #: attempt, peak RSS) when the job asked for resource telemetry.
    #: Identical to the final heartbeat's sample by construction.
    resources: Optional[Dict[str, float]] = None


def _session_for_job(job: ShardJob) -> CrawlSession:
    """Build (or resume) the crawl session a job describes."""
    if job.checkpoint_path and os.path.exists(job.checkpoint_path):
        return CrawlSession.load(job.checkpoint_path,
                                 expect_shard=job.shard)
    if job.assets is not None:
        # Shards never share state *within* the population they crawl
        # (the layout partitions sites), so every shard this process
        # executes can run against the one memoised rebuild.
        population = job.assets.compiled().population
    else:
        population = job.spec.build()
    crawler = StudyCrawler(
        population, profile=job.profile, extension=job.extension,
        firewall=job.firewall, consent_policy=job.consent_policy,
        automated=job.automated, fault_plan=job.fault_plan,
        retry_policy=job.retry_policy,
        recorder=Recorder() if job.trace else None)
    return crawler.start(shard=job.shard)


def run_shard_job(job: ShardJob,
                  emit: Optional[ProgressSink] = None) -> ShardResult:
    """Crawl one shard to completion (the worker-process entry point).

    Resumes from ``job.checkpoint_path`` when a valid checkpoint exists
    (a mismatched layout raises
    :class:`~repro.crawler.CheckpointError`), checkpoints after every
    site when a path is configured, and returns the finished
    :class:`ShardResult`.  Runs identically in-process and in a worker.

    ``emit`` receives one :class:`~repro.obs.progress.HeartbeatEvent`
    per crawled site (plus a final completion marker); under the
    supervised executor it doubles as the worker's liveness signal.
    Emission only *reads* crawl state — a crawl with progress on
    finishes with the identical dataset.
    """
    session = _session_for_job(job)
    shard_index = session.shard.index if session.shard is not None else 0
    total = session.crawled_count + len(session.remaining_sites)
    retried = 0
    quarantined = 0
    # Worker-local and built after the session: sampling reads OS
    # counters only (never crawl state), so the dataset and trace are
    # bit-identical with telemetry on or off.
    sampler = ResourceSampler() if job.resources else None
    final_sample: Optional[Dict[str, float]] = None
    while not session.done:
        entries_before = len(session.browser.log.entries)
        result = session.step()
        if job.checkpoint_path:
            session.save(job.checkpoint_path)
        if emit is not None and result is not None:
            if result.attempts > 1:
                retried += 1
            if result.status == STATUS_QUARANTINED:
                quarantined += 1
            emit(step_heartbeat(
                shard=shard_index, crawled=session.crawled_count,
                total=total, domain=result.site, status=result.status,
                attempts=result.attempts,
                requests=len(session.browser.log.entries) - entries_before,
                retried=retried, quarantined=quarantined,
                resources=sampler.sample() if sampler else None))
    if sampler is not None:
        # One sample shared by the final heartbeat and the ShardResult,
        # so progress.jsonl and the manifest reconcile exactly.
        final_sample = sampler.sample()
    if emit is not None:
        emit(final_heartbeat(shard=shard_index,
                             crawled=session.crawled_count, total=total,
                             retried=retried, quarantined=quarantined,
                             resources=final_sample))
    dataset = session.finish()
    if job.checkpoint_path:
        # Persist the finished state too: a re-run of an already-complete
        # shard resumes here and re-finishes idempotently.
        session.save(job.checkpoint_path)
    plan = session.fault_plan
    stripped = CrawlDataset(
        profile_name=dataset.profile_name, log=dataset.log,
        flows=dataset.flows, mailbox=dataset.mailbox,
        persona=dataset.persona, population=None)
    # A resumed-from-untraced-checkpoint session carries a NullRecorder
    # even when the job asks for tracing; ship a recorder only when it
    # actually recorded.
    recorder = (session.recorder
                if job.trace and session.recorder.enabled else None)
    return ShardResult(index=session.shard.index, dataset=stripped,
                       fault_events=tuple(plan.events) if plan else (),
                       recorder=recorder, resources=final_sample)


# ---------------------------------------------------------------------------
# The merge step.
# ---------------------------------------------------------------------------

def merge_shard_datasets(results: Sequence[ShardResult],
                         population: Population) -> CrawlDataset:
    """Recombine per-shard results into one :class:`CrawlDataset`.

    Results are concatenated in shard-index order: capture-log entries,
    end-of-crawl cookie snapshots, mailbox messages and flow outcomes.
    ``population`` is re-attached as the merged dataset's universe.
    Raises :class:`ValueError` on an empty result list, on two shards
    reporting the same site, or on mismatched personas/profiles (which
    would mean the shards did not come from one study).
    """
    ordered = sorted(results, key=lambda result: result.index)
    if not ordered:
        raise ValueError("no shard results to merge")
    first = ordered[0].dataset
    log = CaptureLog()
    flows: Dict[str, object] = {}
    mailbox = Mailbox(first.mailbox.address)
    for result in ordered:
        dataset = result.dataset
        if dataset.persona.email != first.persona.email or \
                dataset.profile_name != first.profile_name:
            # Redacted: this message ends up in logs/tracebacks, which
            # are exactly the unintended PII sinks the paper is about.
            raise ValueError(
                "shard %d was crawled as (%s, %s), not (%s, %s); refusing "
                "to merge shards from different studies"
                % (result.index, redact_email(dataset.persona.email),
                   dataset.profile_name, redact_email(first.persona.email),
                   first.profile_name))
        overlap = set(flows) & set(dataset.flows)
        if overlap:
            raise ValueError("sites crawled by more than one shard: %s"
                             % ", ".join(sorted(overlap)))
        log.entries.extend(dataset.log.entries)
        log.stored_cookies.extend(dataset.log.stored_cookies)
        flows.update(dataset.flows)
        mailbox.absorb(dataset.mailbox)
    return CrawlDataset(profile_name=first.profile_name, log=log,
                        flows=flows, mailbox=mailbox,
                        persona=first.persona, population=population)


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------

@dataclass
class ParallelCrawlResult:
    """Everything a parallel crawl produced, beyond the dataset itself."""

    dataset: CrawlDataset
    layout: ShardLayout
    workers: int
    #: A plan carrying the concatenated per-shard fault events (for
    #: crawl-health reporting); ``None`` when no faults were injected.
    fault_plan: Optional[FaultPlan] = None
    #: (shard index, sites crawled, capture entries) per shard.
    shard_stats: Tuple[Tuple[int, int, int], ...] = ()
    #: The merged per-shard trace (shard recorders folded together in
    #: layout order) when the engine was constructed with a recorder;
    #: its snapshot is identical at every worker count.
    recorder: Optional[Recorder] = None
    #: False when shards are missing from the merge (quarantined by the
    #: supervisor or left unfinished by a graceful shutdown).  The
    #: dataset then carries only the salvaged shards; its fingerprint is
    #: deliberately *not* part of the invariance contract — only
    #: complete merges are fingerprinted.
    complete: bool = True
    #: The shard indexes missing from an incomplete merge.
    incomplete_shards: Tuple[int, ...] = ()
    #: The supervised execution's decisions (retries, watchdog trips,
    #: quarantines, shutdown); ``None`` for the in-process serial path.
    supervision: Optional[SupervisionOutcome] = None
    #: Per-shard resource samples (``{shard index: sample}``) when the
    #: engine ran with ``resources=True``; empty otherwise.  Ops
    #: telemetry only — see :mod:`repro.obs.runtime`.
    resources: Dict[int, Dict[str, float]] = dataclasses_field(
        default_factory=dict)


class ParallelCrawler:
    """Crawls a population's shards over supervised worker processes.

    ``population`` may be a live :class:`Population` (wrapped in a
    :class:`PrebuiltPopulationSpec`) or any :class:`PopulationSpec`.
    ``workers=1`` (the default) runs every shard sequentially in-process
    — the serial reference the fingerprint contract is stated against;
    ``workers=N`` fans the same shards out over at most N supervised
    processes (see :class:`~repro.crawler.supervisor.ShardSupervisor`)
    and merges to the bit-identical dataset.  ``num_shards`` defaults to
    :func:`~repro.crawler.sharding.default_shard_count` and is
    deliberately independent of ``workers``.

    ``assets`` (a :class:`~repro.core.assets.CompiledStudyAssets`)
    threads a study's compile-once bundle through the engine: the
    bundle's population is reused for layout and merge (so the merged
    dataset's ``population`` is the study's own object), and shard jobs
    carry the bundle's compact :class:`~repro.core.assets.
    StudyAssetsSpec` so worker processes share one rebuilt population
    across all the shards they execute.

    ``supervision`` (a :class:`~repro.crawler.SupervisorConfig`) tunes
    the executor's watchdog deadline, retry budget, and shutdown drain;
    ``chaos`` (a :class:`~repro.crawler.ChaosPlan`) injects the seeded
    worker-fault plan into every launched worker.  Chaos manipulates
    real processes, so it requires ``workers >= 2`` — combining a plan
    with the in-process serial path would kill or hang the caller.

    ``checkpoint_dir`` enables per-shard checkpointing: each shard
    writes ``shard-NNN.ckpt`` after every site, and a later crawl with
    the same directory resumes every shard from wherever it stopped
    (missing checkpoints restart that shard from scratch; checkpoints
    from a different layout raise
    :class:`~repro.crawler.CheckpointError`).

    ``recorder`` (a :class:`repro.obs.Recorder`) turns on per-shard
    tracing: every worker records its shard's spans and metrics into a
    local recorder, the results travel back with the
    :class:`ShardResult`, and the engine folds them into ``recorder``
    in shard-layout order — so the merged trace, like the dataset
    fingerprint, is bit-identical at every worker count.

    ``progress`` (any callable taking a
    :class:`~repro.obs.progress.HeartbeatEvent`, typically a
    :class:`~repro.obs.progress.ProgressAggregator`) turns on live
    per-site heartbeats: workers stream events to the parent over a
    multiprocessing queue and the engine drains them into the sink
    while shards run.  Events arrive in completion order — progress is
    a *live view*, deliberately outside every determinism contract —
    but emission never mutates crawl state, so the merged dataset and
    trace stay bit-identical with progress on or off.

    ``resources=True`` makes every shard attach a CPU/RSS/GC sample
    (:class:`~repro.obs.runtime.ResourceSampler` deltas) to each
    heartbeat and to its :class:`ShardResult`; the engine collects the
    final per-shard samples into ``result.resources``.  Ops telemetry
    only: it rides the progress channel and never perturbs the dataset
    fingerprint or the merged trace (pinned in
    ``tests/test_obs_resources.py``).

    ``supervision_sink`` (any callable taking a
    :class:`~repro.crawler.supervisor.SupervisionEvent`) receives every
    supervision decision live as the supervised executor records it —
    the event-stream twin of ``result.supervision.events``, used by the
    service layer for SSE fan-out.  Inert on the serial path, which
    makes no supervision decisions.

    Raises :class:`ValueError` for ``workers < 1`` or an invalid shard
    count.
    """

    def __init__(self, population, workers: int = 1,
                 num_shards: Optional[int] = None,
                 assets: Optional[CompiledStudyAssets] = None,
                 profile: Optional[object] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[object] = None,
                 consent_policy: Optional[str] = None,
                 automated: bool = False,
                 extension: Optional[object] = None,
                 firewall: Optional[object] = None,
                 checkpoint_dir: Optional[str] = None,
                 recorder: Optional[Recorder] = None,
                 progress: Optional[ProgressSink] = None,
                 resources: bool = False,
                 supervision: Optional[SupervisorConfig] = None,
                 chaos: Optional[ChaosPlan] = None,
                 supervision_sink: Optional[Callable] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chaos is not None and chaos.faults and workers < 2:
            raise ValueError(
                "a chaos plan requires workers >= 2: faults kill or hang "
                "the executing process, and with workers=1 that process "
                "is the caller's own")
        if isinstance(population, PopulationSpec):
            self.spec: PopulationSpec = population
            self._population: Optional[Population] = None
        else:
            self.spec = PrebuiltPopulationSpec(population)
            self._population = population
        self.assets = assets
        if assets is not None and self._population is None:
            # The compiled bundle's population *is* the study's; reuse
            # it for layout + merge instead of building a duplicate.
            self._population = assets.population
        # One compact picklable recipe shared by every shard job, so
        # each executing process resolves its population through the
        # process-local assets memo exactly once.
        self._assets_spec = StudyAssetsSpec(
            population_spec=self.spec,
            token_config=assets.token_config if assets is not None else None)
        if assets is not None:
            # Warm this process's memo so in-process shards reuse the
            # study's own bundle and forked workers inherit it
            # copy-on-write instead of rebuilding the population.
            self._assets_spec.seed(assets)
        self.workers = workers
        self.num_shards = num_shards
        self.profile = profile
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.consent_policy = consent_policy
        self.automated = automated
        self.extension = extension
        self.firewall = firewall
        self.checkpoint_dir = checkpoint_dir
        self.recorder = recorder
        self.progress = progress
        self.resources = resources
        self.supervision = supervision
        self.chaos = chaos
        self.supervision_sink = supervision_sink
        self._layout: Optional[ShardLayout] = None
        self._supervisor: Optional[ShardSupervisor] = None

    # -- layout ----------------------------------------------------------

    def population(self) -> Population:
        """The parent-side population (built once, reused for the merge)."""
        if self._population is None:
            self._population = self.spec.build()
        return self._population

    @property
    def layout(self) -> ShardLayout:
        """The deterministic shard layout this crawl executes."""
        if self._layout is None:
            self._layout = ShardLayout.for_domains(
                self.population().sites, self.num_shards)
        return self._layout

    def shard_session(self, index: int) -> CrawlSession:
        """A fresh in-process session for shard ``index``.

        Builds exactly the session a worker would build (own population,
        own fresh fault plan) — useful for tests and for stepping a
        single shard by hand.  Raises :class:`IndexError` on an
        out-of-range index.
        """
        return _session_for_job(self._job(index, checkpointed=False))

    # -- execution -------------------------------------------------------

    def request_shutdown(self, reason: str = "requested") -> None:
        """Gracefully stop a supervised :meth:`run` in progress.

        Signal-safe and idempotent; a no-op before the supervisor
        exists or on the serial in-process path.
        """
        if self._supervisor is not None:
            self._supervisor.request_shutdown(reason)

    def crawl(self) -> CrawlDataset:
        """Run all shards and return the *complete* merged dataset.

        Raises :class:`~repro.crawler.IncompleteCrawlError` (carrying
        the salvaged partial result) when shards were quarantined or a
        shutdown interrupted the run — callers of this convenience API
        get a fingerprint-safe dataset or an explicit error, never a
        silently partial merge.  Use :meth:`run` to work with partial
        results.
        """
        result = self.run()
        if not result.complete:
            raise IncompleteCrawlError(
                "crawl incomplete: shards %s missing from the merge "
                "(%s); resume from the checkpoint directory or inspect "
                "result.supervision"
                % (", ".join(str(index)
                             for index in result.incomplete_shards),
                   "interrupted" if result.supervision is not None
                   and result.supervision.interrupted else "quarantined"),
                result=result,
                incomplete_shards=result.incomplete_shards)
        return result.dataset

    def run(self) -> ParallelCrawlResult:
        """Execute every shard under supervision and merge.

        Returns a :class:`ParallelCrawlResult`; for complete runs its
        ``dataset`` fingerprint depends only on ``(population, fault
        seed, layout)`` — never on ``workers``, faults, retries, or
        interruptions.  Incomplete runs (quarantined shards, graceful
        shutdown) return the salvaged shards with ``complete=False``.
        Raises :class:`~repro.crawler.CheckpointError` when resuming
        against a mismatched shard layout, and
        :class:`~repro.crawler.IncompleteCrawlError` only when *no*
        shard completed (there is nothing to merge).
        """
        jobs = [self._job(index) for index in range(self.layout.num_shards)]
        if self.checkpoint_dir:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        outcome: Optional[SupervisionOutcome] = None
        if self.workers == 1:
            results: List[ShardResult] = self._run_serial(jobs)
        else:
            outcome = self._run_supervised(jobs)
            results = list(outcome.results)
        complete = outcome.complete if outcome is not None else True
        if not results:
            raise IncompleteCrawlError(
                "no shard completed (%s); the per-shard checkpoints in "
                "%r hold whatever progress was made"
                % ("interrupted" if outcome is not None
                   and outcome.interrupted else "all shards lost",
                   self.checkpoint_dir),
                incomplete_shards=(outcome.incomplete_shards
                                   if outcome is not None else ()))
        dataset = merge_shard_datasets(results, self.population())
        ordered = sorted(results, key=lambda r: r.index)
        merged_plan = None
        if self.fault_plan is not None:
            merged_plan = self.fault_plan.fresh_copy()
            for result in ordered:
                merged_plan.events.extend(result.fault_events)
        stats = tuple(
            (result.index, len(result.dataset.flows),
             len(result.dataset.log.entries))
            for result in ordered)
        merged_recorder = None
        if self.recorder is not None:
            # Shard recorders merge in layout order, so the combined
            # trace — like the dataset fingerprint — cannot depend on
            # which worker ran which shard, or on the worker count.
            merged_recorder = merge_recorders(
                [result.recorder for result in ordered
                 if result.recorder is not None])
            self.recorder.adopt(merged_recorder)
            if outcome is not None and outcome.events:
                # Supervision decisions are abnormal by definition, so
                # they only ever reach the trace when something actually
                # went wrong — a clean run's trace stays bit-identical
                # at every worker count (the CI invariance gate).
                for kind, count in sorted(outcome.event_counts().items()):
                    self.recorder.count("supervisor.events.%s" % kind,
                                        count)
        return ParallelCrawlResult(
            dataset=dataset, layout=self.layout, workers=self.workers,
            fault_plan=merged_plan, shard_stats=stats,
            recorder=merged_recorder, complete=complete,
            incomplete_shards=(outcome.incomplete_shards
                               if outcome is not None else ()),
            supervision=outcome,
            resources={result.index: dict(result.resources)
                       for result in ordered
                       if result.resources is not None})

    # -- internals -------------------------------------------------------

    def _run_serial(self, jobs) -> List[ShardResult]:
        """The in-process reference path (``workers=1``)."""
        if self.checkpoint_dir:
            manifest = load_manifest(self.checkpoint_dir)
            if manifest is not None:
                validate_manifest_layout(manifest, self.layout,
                                         self.checkpoint_dir)
        results = [run_shard_job(job, emit=self.progress) for job in jobs]
        if self.checkpoint_dir:
            write_manifest(self.checkpoint_dir, self.layout,
                           SupervisionOutcome(results=list(results)),
                           spec_description=self.spec.describe())
        return results

    def _run_supervised(self, jobs) -> SupervisionOutcome:
        """Fan the jobs out over the supervised shard executor."""
        self._supervisor = ShardSupervisor(
            config=self.supervision, workers=self.workers,
            progress=self.progress, chaos=self.chaos,
            checkpoint_dir=self.checkpoint_dir,
            spec_description=self.spec.describe(),
            event_sink=self.supervision_sink)
        try:
            return self._supervisor.run(jobs, layout=self.layout)
        finally:
            self._supervisor = None

    def _job(self, index: int, checkpointed: bool = True) -> ShardJob:
        checkpoint_path = None
        if checkpointed and self.checkpoint_dir:
            checkpoint_path = os.path.join(self.checkpoint_dir,
                                           "shard-%03d.ckpt" % index)
        plan = self.fault_plan.fresh_copy() if self.fault_plan else None
        return ShardJob(spec=self.spec, shard=self.layout.info(index),
                        profile=self.profile,
                        consent_policy=self.consent_policy,
                        automated=self.automated, fault_plan=plan,
                        retry_policy=self.retry_policy,
                        extension=self.extension, firewall=self.firewall,
                        checkpoint_path=checkpoint_path,
                        trace=self.recorder is not None,
                        progress=self.progress is not None,
                        resources=self.resources,
                        assets=self._assets_spec)
