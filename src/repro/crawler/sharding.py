"""Deterministic site sharding for parallel crawls.

A shard layout partitions a population's site list into ``num_shards``
disjoint, *stable* shards: a site's shard is a pure function of its
domain (a hash), never of arrival order, so the same population always
produces the same layout regardless of dict ordering, insertion history
or worker count.  Within a shard, sites are visited in hash order for the
same reason — two processes that agree on ``(domains, num_shards)`` agree
on every shard's exact site sequence.

The layout is the unit the determinism contract is stated over (see
``docs/ARCHITECTURE.md`` and DESIGN.md §"Reproducibility"): a parallel
crawl's merged fingerprint is a function of ``(seed, layout)`` only, so
it is invariant to how many workers execute the shards.  The layout
digest is stamped into every per-shard checkpoint so a resume against a
*different* layout fails loudly instead of silently crawling the wrong
site list.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

#: Default upper bound on the number of shards (see
#: :func:`default_shard_count`).  Deliberately independent of the worker
#: count: more workers must never change the layout, or fingerprints
#: would stop being comparable across machines.
DEFAULT_SHARD_CAP = 16


def _domain_hash(domain: str) -> str:
    """Stable hex digest a domain is ordered and sharded by."""
    return hashlib.sha256(("shard:%s" % domain).encode("utf-8")).hexdigest()


def stable_site_order(domains: Iterable[str]) -> List[str]:
    """``domains`` sorted into the canonical (hash, domain) crawl order.

    Raises :class:`ValueError` if a domain appears twice — a duplicated
    site would be crawled twice in one layout and break the merge.
    """
    domains = list(domains)
    if len(set(domains)) != len(domains):
        raise ValueError("duplicate domains in site list")
    return sorted(domains, key=lambda domain: (_domain_hash(domain), domain))


def default_shard_count(site_count: int, cap: int = DEFAULT_SHARD_CAP) -> int:
    """The shard count used when the caller does not pick one.

    ``min(cap, site_count)`` (at least 1): small populations get one
    site-bearing shard each; large ones get ``cap`` shards.  A pure
    function of the population size — never of the worker count — so the
    default layout, and therefore the crawl fingerprint, is stable across
    machines with different parallelism.
    """
    return max(1, min(cap, site_count))


def shard_domains(domains: Iterable[str],
                  num_shards: Optional[int] = None) -> List[List[str]]:
    """Partition ``domains`` into ``num_shards`` stable shards.

    A domain lands in shard ``int(sha256(domain)) % num_shards`` and
    shards are internally ordered by :func:`stable_site_order`.  Returns
    a list of ``num_shards`` lists (some possibly empty).  Raises
    :class:`ValueError` on a non-positive shard count or duplicate
    domains.
    """
    ordered = stable_site_order(domains)
    if num_shards is None:
        num_shards = default_shard_count(len(ordered))
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    shards: List[List[str]] = [[] for _ in range(num_shards)]
    for domain in ordered:
        shards[int(_domain_hash(domain), 16) % num_shards].append(domain)
    return shards


@dataclass(frozen=True)
class ShardInfo:
    """Identity of one shard inside a concrete layout.

    Stored on every sharded :class:`~repro.crawler.CrawlSession` and
    therefore inside every per-shard checkpoint; resuming validates it
    against the running layout (see :meth:`CrawlSession.load`).
    """

    index: int                  # which shard of the layout this is
    num_shards: int             # total shards in the layout
    layout_digest: str          # ShardLayout.digest() of the whole layout
    domains: Tuple[str, ...]    # this shard's exact site sequence

    def describe(self) -> str:
        """Human-readable identity for error messages."""
        return ("shard %d/%d (layout %s, %d sites)"
                % (self.index + 1, self.num_shards,
                   self.layout_digest[:12], len(self.domains)))


@dataclass(frozen=True)
class ShardLayout:
    """A complete, deterministic partition of a site list."""

    num_shards: int
    shards: Tuple[Tuple[str, ...], ...]

    @classmethod
    def for_domains(cls, domains: Iterable[str],
                    num_shards: Optional[int] = None) -> "ShardLayout":
        """Build the canonical layout for ``domains``.

        ``num_shards`` defaults to :func:`default_shard_count`.  Raises
        :class:`ValueError` on duplicates or a non-positive count.
        """
        shards = shard_domains(domains, num_shards)
        return cls(num_shards=len(shards),
                   shards=tuple(tuple(shard) for shard in shards))

    @property
    def site_count(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def digest(self) -> str:
        """Stable digest identifying this exact layout.

        Folds the shard count and every shard's ordered domain list, so
        any change to membership, ordering or shard count changes the
        digest.
        """
        digest = hashlib.sha256()
        digest.update(("layout:%d" % self.num_shards).encode("utf-8"))
        for shard in self.shards:
            digest.update(b"\x00")
            for domain in shard:
                digest.update(domain.encode("utf-8"))
                digest.update(b"\x01")
        return digest.hexdigest()

    def info(self, index: int) -> ShardInfo:
        """The :class:`ShardInfo` identity of shard ``index``.

        Raises :class:`IndexError` for an out-of-range index.
        """
        if not 0 <= index < self.num_shards:
            raise IndexError("shard %d of a %d-shard layout"
                             % (index, self.num_shards))
        return ShardInfo(index=index, num_shards=self.num_shards,
                         layout_digest=self.digest(),
                         domains=self.shards[index])
