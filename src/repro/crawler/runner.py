"""Study-level crawl orchestration.

Runs the §3.2 authentication flow over an entire population with a single
browser session (one persona, one cookie jar — cross-site tracking only
exists because state persists across sites), collects the combined capture
log, mailbox and per-site flow outcomes, and delivers each successful
site's marketing-mail campaign afterwards (the §4.2.3 e-mail analysis).

The crawl itself runs inside a :class:`CrawlSession` — an incremental,
picklable engine that can be stepped one site at a time, checkpointed to
disk mid-crawl, and resumed to a bit-identical final dataset.  Under a
seeded :class:`~repro.netsim.faults.FaultPlan` the session's browser
retries transient failures with backoff, quarantines origins whose
circuit breaker trips, and classifies every failed flow under the
transient-vs-permanent taxonomy — no site silently disappears.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..browser import (
    Browser,
    BrowserProfile,
    ContentBlocker,
    OutboundFirewall,
    RetryPolicy,
    SimClock,
    ensure_protocol,
    vanilla_firefox,
)
from ..core.persona import Persona
from ..mailsim import ConfirmationMailHook, Mailbox
from ..netsim import CaptureLog
from ..netsim.faults import FaultPlan
from ..obs import NULL_RECORDER, Recorder
from ..websim.population import Population
from ..websim.site import Website
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .flows import STATUS_QUARANTINED, AuthFlowRunner, FlowResult
from .sharding import ShardInfo

#: Sentinel for :meth:`CrawlSession.load`'s ``expect_shard`` parameter:
#: "the caller has no expectation, skip the layout check".
ANY_SHARD = object()


@dataclass
class CrawlDataset:
    """Everything one crawl produced: the input to all analysis.

    Bundles the full HTTP capture log, the per-site :class:`FlowResult`
    outcomes, the persona's mailbox and the crawled population.  This is
    the artifact the leak detector, tracking analysis and reporting all
    consume — and the unit of the reproducibility contract:
    :meth:`fingerprint` digests every exchange, cookie, flow outcome and
    mail message, and must be bit-identical across replays, resumed
    crawls and parallel crawls at any worker count (DESIGN.md §7)."""

    profile_name: str
    log: CaptureLog
    flows: Dict[str, FlowResult]
    mailbox: Mailbox
    persona: Persona
    population: Population

    def successful_sites(self) -> List[str]:
        return [domain for domain, flow in self.flows.items()
                if flow.succeeded]

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for flow in self.flows.values():
            counts[flow.status] = counts.get(flow.status, 0) + 1
        return counts

    def quarantined_sites(self) -> List[str]:
        """Sites the circuit breaker gave up on (sorted)."""
        return sorted(domain for domain, flow in self.flows.items()
                      if flow.status == STATUS_QUARANTINED)

    def failure_class_counts(self) -> Dict[str, int]:
        """{'transient': n, 'permanent': m} over the failed flows."""
        counts: Dict[str, int] = {}
        for flow in self.flows.values():
            if flow.failure_class is not None:
                counts[flow.failure_class] = \
                    counts.get(flow.failure_class, 0) + 1
        return counts

    def retried_flow_count(self) -> int:
        """Flows whose final page load consumed more than one attempt."""
        return sum(1 for flow in self.flows.values() if flow.attempts > 1)

    def fingerprint(self) -> str:
        """Stable digest of everything observable in this dataset.

        Two crawls are *the same crawl* iff their fingerprints match:
        every capture-log exchange (URLs, headers, bodies, timestamps,
        block verdicts), the end-of-crawl cookie store, every flow
        outcome and every mailbox message is folded in.  This is the
        equality the checkpoint/resume invariant is stated over.
        """
        digest = hashlib.sha256()

        def fold(*parts: object) -> None:
            digest.update(repr(parts).encode("utf-8"))
            digest.update(b"\x00")

        fold("profile", self.profile_name)
        fold("persona", self.persona.email)
        for entry in self.log.entries:
            request = entry.request
            response = entry.response
            fold("entry", request.method, str(request.url),
                 request.headers.items(), request.body,
                 request.resource_type, round(request.timestamp, 6),
                 None if response is None else (response.status,
                                                response.headers.items(),
                                                response.body),
                 entry.site, entry.stage, entry.page_url, entry.blocked_by)
        for cookie in self.log.stored_cookies:
            fold("cookie", cookie)
        for domain in sorted(self.flows):
            flow = self.flows[domain]
            fold("flow", domain, flow.status, flow.block_reason,
                 flow.attempts, flow.failure_kind)
        fold("mail-address", self.mailbox.address)
        for message in self.mailbox.messages():
            fold("mail", message)
        return digest.hexdigest()


class CrawlSession:
    """A resumable in-flight crawl over one population.

    The session owns every piece of mutable crawl state — browser (cookie
    jar, capture log, tracker storage, circuit breakers, clock), mailbox,
    fault-plan counters and the pending site queue — and is therefore
    picklable as a unit: :meth:`save` checkpoints it, :meth:`load`
    resumes it, and a resumed session finishes with a dataset whose
    :meth:`CrawlDataset.fingerprint` equals an uninterrupted run's.
    """

    def __init__(self, crawler: "StudyCrawler",
                 sites: Optional[Iterable[Website]] = None,
                 shard: Optional[ShardInfo] = None) -> None:
        """Start a fresh session over ``crawler``'s population.

        ``sites`` restricts the crawl to an explicit site sequence
        (default: the whole population in population order).  ``shard``
        stamps the session with its :class:`~repro.crawler.sharding.ShardInfo`
        identity — when given and ``sites`` is omitted, the shard's own
        domain sequence is crawled.  Raises :class:`KeyError` if a shard
        domain is not in the population.
        """
        population = crawler.population
        self.shard = shard
        #: Observability sink for this session.  Shard sessions record
        #: everything under one "shard" root span; a serial session
        #: records site spans directly under whatever span its (shared)
        #: recorder currently has open.  Picklable, so the trace
        #: survives checkpoint/resume along with the rest of the state.
        self.recorder: Recorder = crawler.recorder or NULL_RECORDER
        if sites is None and shard is not None:
            sites = [population.sites[domain] for domain in shard.domains]
        self.population = population
        self.profile = crawler.profile
        self.persona = population.persona
        self.mailbox = Mailbox(self.persona.email)
        server = population.build_server(
            mail_hook=ConfirmationMailHook(self.mailbox),
            fault_plan=crawler.fault_plan)
        self.fault_plan = crawler.fault_plan
        self.browser = Browser(
            profile=crawler.profile, server=server,
            resolver=population.resolver(fault_plan=crawler.fault_plan),
            catalog=population.catalog, clock=crawler.clock,
            extension=crawler.extension, firewall=crawler.firewall,
            consent_policy=crawler.consent_policy,
            retry_policy=crawler.retry_policy)
        self.runner = AuthFlowRunner(self.browser, self.persona,
                                     self.mailbox,
                                     automated=crawler.automated)
        self._sites: List[Website] = (list(sites) if sites is not None
                                      else population.site_list())
        self._next_index = 0
        self.flows: Dict[str, FlowResult] = {}
        self._finished = False
        self._root_span = None
        if shard is not None and self.recorder.enabled:
            self._root_span = self.recorder.start_span(
                "shard", start=self.browser.clock.now(),
                index=shard.index, sites=len(self._sites))

    # -- progress --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._next_index >= len(self._sites)

    @property
    def crawled_count(self) -> int:
        return self._next_index

    @property
    def remaining_sites(self) -> List[str]:
        return [site.domain for site in self._sites[self._next_index:]]

    # -- execution -------------------------------------------------------

    def step(self) -> Optional[FlowResult]:
        """Crawl the next pending site; None when nothing is left.

        With an enabled recorder, each site becomes a span (stamped
        with deterministic simulated-clock times) whose children are
        one point-span per captured request, plus per-status flow
        counters and site-level histograms — the per-site/per-request
        layer of the study → stage → shard → site → request hierarchy.
        """
        if self.done:
            return None
        site = self._sites[self._next_index]
        recorder = self.recorder
        entries_before = len(self.browser.log.entries)
        sim_start = self.browser.clock.now()
        recorder.start_span("site", start=sim_start, domain=site.domain)
        result = self.runner.run(site)
        sim_end = self.browser.clock.now()
        new_entries = self.browser.log.entries[entries_before:]
        if recorder.enabled:
            for entry in new_entries:
                recorder.add_span(
                    "request", start=entry.request.timestamp,
                    end=entry.request.timestamp,
                    host=entry.request.url.host, stage=entry.stage,
                    blocked=entry.was_blocked)
        recorder.end_span(end=sim_end)
        recorder.count("crawl.sites")
        recorder.count("crawl.flows.%s" % result.status)
        recorder.count("crawl.requests", len(new_entries))
        if result.attempts > 1:
            recorder.count("crawl.retried_flows")
        recorder.observe("crawl.site_sim_seconds", sim_end - sim_start)
        recorder.observe("crawl.site_requests", len(new_entries))
        self.flows[site.domain] = result
        self._next_index += 1
        return result

    def run(self) -> CrawlDataset:
        """Crawl everything still pending and finish."""
        while not self.done:
            self.step()
        return self.finish()

    def finish(self) -> CrawlDataset:
        """Deliver post-crawl mail, snapshot cookies, build the dataset.

        Idempotent: finishing twice neither re-delivers marketing mail
        nor duplicates the cookie snapshot.
        """
        if not self._finished:
            # Marketing campaigns arrive after the crawl completes
            # (§4.2.3) — only for the sites actually crawled so far.
            for site in self._sites[:self._next_index]:
                if not self.flows[site.domain].succeeded:
                    continue
                inbox_count, spam_count = site.marketing_mail
                if inbox_count:
                    self.mailbox.deliver_marketing(site.domain, inbox_count,
                                                   spam=False)
                if spam_count:
                    self.mailbox.deliver_marketing(site.domain, spam_count,
                                                   spam=True)
            self.browser.snapshot_cookies()
            if self._root_span is not None and self._root_span.end is None:
                self.recorder.end_span(end=self.browser.clock.now())
            self._finished = True
        return CrawlDataset(profile_name=self.profile.name,
                            log=self.browser.log, flows=self.flows,
                            mailbox=self.mailbox, persona=self.persona,
                            population=self.population)

    # -- persistence -----------------------------------------------------

    def save(self, path: str) -> str:
        """Checkpoint this session (atomically) to ``path``.

        Returns the path written.  Raises :class:`OSError` if the
        destination directory is not writable.
        """
        return save_checkpoint(self, path)

    @staticmethod
    def load(path: str, expect_shard: object = ANY_SHARD) -> "CrawlSession":
        """Resume a session checkpointed by :meth:`save`.

        ``expect_shard`` declares what kind of session the caller is
        prepared to resume:

        * :data:`ANY_SHARD` (default) — no expectation, load anything;
        * ``None`` — expect an *unsharded* (whole-population) session;
        * a :class:`~repro.crawler.sharding.ShardInfo` — expect exactly
          that shard of exactly that layout.

        Raises :class:`~repro.crawler.CheckpointError` when the file is
        not a checkpoint, or when the checkpointed session's shard
        identity does not match the expectation — a checkpoint written
        under a different shard layout (different shard count, different
        site membership, or a serial-vs-sharded mismatch) must never be
        silently resumed against the wrong site list.  Raises
        :class:`OSError` if the file cannot be read.
        """
        session = load_checkpoint(path)
        if expect_shard is ANY_SHARD:
            return session
        found = getattr(session, "shard", None)
        if expect_shard is None:
            if found is not None:
                raise CheckpointError(
                    "%s holds %s of a parallel crawl, not a serial "
                    "(whole-population) session; resume it with the "
                    "worker pool that wrote it" % (path, found.describe()))
            return session
        if found is None:
            raise CheckpointError(
                "%s holds a serial (unsharded) session but %s was "
                "expected; a serial checkpoint cannot seed a parallel "
                "crawl" % (path, expect_shard.describe()))
        if found != expect_shard:
            raise CheckpointError(
                "%s was written by %s but the running layout expects %s; "
                "shard layouts must match exactly to resume (same shard "
                "count and same site partition)"
                % (path, found.describe(), expect_shard.describe()))
        return session


class StudyCrawler:
    """Crawls a population under one browser profile (the §3.2 operator).

    Owns one crawl's mutable state — the scripted browser (cookie jar,
    capture log, simulated clock), the persona's mailbox and, when a
    :class:`~repro.netsim.faults.FaultPlan` is supplied, the resilient
    network stack (retries, backoff, per-origin circuit breakers).
    :meth:`crawl` runs every site to completion and returns the
    :class:`CrawlDataset`; :meth:`start` returns a stepwise, resumable
    :class:`CrawlSession` instead (optionally scoped to one shard of a
    parallel layout).  For multi-process crawling use
    :class:`~repro.crawler.ParallelCrawler`, which builds one of these
    per shard."""

    def __init__(self, population: Population,
                 profile: Optional[BrowserProfile] = None,
                 clock: Optional[SimClock] = None,
                 extension: Optional[ContentBlocker] = None,
                 firewall: Optional[OutboundFirewall] = None,
                 consent_policy: Optional[str] = None,
                 automated: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 recorder: Optional[Recorder] = None) -> None:
        """``extension`` (a content blocker such as
        :class:`repro.blocklist.AdblockExtension`) and ``firewall`` (an
        outbound scrubber such as :class:`repro.mitigation.PiiFirewall`)
        must satisfy their respective Protocols — a wrong object raises
        ``TypeError`` here rather than mid-crawl.  ``consent_policy`` (how
        cookie banners are answered; default accept-all, like the paper's
        operator) is forwarded to the browser.  ``fault_plan`` makes the
        synthetic web flaky; supplying one enables the resilient network
        path with a default :class:`~repro.browser.RetryPolicy` unless an
        explicit ``retry_policy`` is given.  ``recorder`` (a
        :class:`repro.obs.Recorder`) turns on structured tracing for the
        sessions this crawler starts; ``None`` (the default) records
        nothing and costs nothing."""
        from ..websim.consent import CONSENT_ACCEPT_ALL
        ensure_protocol(extension, ContentBlocker, "extension")
        ensure_protocol(firewall, OutboundFirewall, "firewall")
        self.population = population
        self.profile = profile or vanilla_firefox()
        self.clock = clock or SimClock()
        self.extension = extension
        self.firewall = firewall
        self.consent_policy = consent_policy or CONSENT_ACCEPT_ALL
        self.automated = automated
        self.fault_plan = fault_plan
        if retry_policy is None and fault_plan is not None:
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        self.recorder = recorder

    def start(self, sites: Optional[Iterable[Website]] = None,
              shard: Optional[ShardInfo] = None) -> CrawlSession:
        """Begin an incremental (checkpointable) crawl session.

        ``sites`` restricts the crawl to an explicit sequence; ``shard``
        stamps the session with a shard identity (and, when ``sites`` is
        omitted, selects the shard's domains).  Returns a fresh
        :class:`CrawlSession` positioned before the first site.
        """
        return CrawlSession(self, sites, shard=shard)

    def crawl(self, sites: Optional[Iterable[Website]] = None) -> CrawlDataset:
        """Run the full study crawl serially in this process.

        ``sites`` optionally restricts/reorders the crawl.  Returns the
        finished :class:`CrawlDataset`.  For a sharded or multi-process
        crawl with the identical fingerprint contract, use
        :class:`~repro.crawler.ParallelCrawler`.
        """
        return self.start(sites).run()
