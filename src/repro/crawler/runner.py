"""Study-level crawl orchestration.

Runs the §3.2 authentication flow over an entire population with a single
browser session (one persona, one cookie jar — cross-site tracking only
exists because state persists across sites), collects the combined capture
log, mailbox and per-site flow outcomes, and delivers each successful
site's marketing-mail campaign afterwards (the §4.2.3 e-mail analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..browser import Browser, BrowserProfile, SimClock, vanilla_firefox
from ..core.persona import Persona
from ..mailsim import Mailbox
from ..netsim import CaptureLog
from ..websim.population import Population
from ..websim.site import Website
from .flows import STATUS_SUCCESS, AuthFlowRunner, FlowResult


@dataclass
class CrawlDataset:
    """Everything one crawl produced."""

    profile_name: str
    log: CaptureLog
    flows: Dict[str, FlowResult]
    mailbox: Mailbox
    persona: Persona
    population: Population

    def successful_sites(self) -> List[str]:
        return [domain for domain, flow in self.flows.items()
                if flow.succeeded]

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for flow in self.flows.values():
            counts[flow.status] = counts.get(flow.status, 0) + 1
        return counts


class StudyCrawler:
    """Crawls a population under one browser profile."""

    def __init__(self, population: Population,
                 profile: Optional[BrowserProfile] = None,
                 clock: Optional[SimClock] = None,
                 extension: Optional[object] = None,
                 firewall: Optional[object] = None,
                 consent_policy: Optional[str] = None,
                 automated: bool = False) -> None:
        """``extension`` (a content blocker such as
        :class:`repro.blocklist.AdblockExtension`), ``firewall`` (an
        outbound scrubber such as :class:`repro.mitigation.PiiFirewall`)
        and ``consent_policy`` (how cookie banners are answered; default
        accept-all, like the paper's operator) are forwarded to the
        browser."""
        from ..websim.consent import CONSENT_ACCEPT_ALL
        self.population = population
        self.profile = profile or vanilla_firefox()
        self.clock = clock or SimClock()
        self.extension = extension
        self.firewall = firewall
        self.consent_policy = consent_policy or CONSENT_ACCEPT_ALL
        self.automated = automated

    def crawl(self, sites: Optional[Iterable[Website]] = None) -> CrawlDataset:
        """Run the full study crawl; returns the combined dataset."""
        persona = self.population.persona
        mailbox = Mailbox(persona.email)
        server = self.population.build_server(
            mail_hook=lambda site, email, url:
                mailbox.deliver_confirmation(site, url))
        browser = Browser(profile=self.profile, server=server,
                          resolver=self.population.resolver(),
                          catalog=self.population.catalog, clock=self.clock,
                          extension=self.extension, firewall=self.firewall,
                          consent_policy=self.consent_policy)
        runner = AuthFlowRunner(browser, persona, mailbox,
                                automated=self.automated)

        flows: Dict[str, FlowResult] = {}
        site_list = list(sites) if sites is not None \
            else self.population.site_list()
        for site in site_list:
            flows[site.domain] = runner.run(site)

        # Marketing campaigns arrive after the crawl completes (§4.2.3).
        for site in site_list:
            if not flows[site.domain].succeeded:
                continue
            inbox_count, spam_count = site.marketing_mail
            if inbox_count:
                mailbox.deliver_marketing(site.domain, inbox_count,
                                          spam=False)
            if spam_count:
                mailbox.deliver_marketing(site.domain, spam_count, spam=True)

        browser.snapshot_cookies()
        return CrawlDataset(profile_name=self.profile.name, log=browser.log,
                            flows=flows, mailbox=mailbox, persona=persona,
                            population=self.population)
