"""Study-level crawl orchestration.

Runs the §3.2 authentication flow over an entire population with a single
browser session (one persona, one cookie jar — cross-site tracking only
exists because state persists across sites), collects the combined capture
log, mailbox and per-site flow outcomes, and delivers each successful
site's marketing-mail campaign afterwards (the §4.2.3 e-mail analysis).

The crawl itself runs inside a :class:`CrawlSession` — an incremental,
picklable engine that can be stepped one site at a time, checkpointed to
disk mid-crawl, and resumed to a bit-identical final dataset.  Under a
seeded :class:`~repro.netsim.faults.FaultPlan` the session's browser
retries transient failures with backoff, quarantines origins whose
circuit breaker trips, and classifies every failed flow under the
transient-vs-permanent taxonomy — no site silently disappears.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..browser import (
    Browser,
    BrowserProfile,
    ContentBlocker,
    OutboundFirewall,
    RetryPolicy,
    SimClock,
    ensure_protocol,
    vanilla_firefox,
)
from ..core.persona import Persona
from ..mailsim import ConfirmationMailHook, Mailbox
from ..netsim import CaptureLog
from ..netsim.faults import FaultPlan
from ..websim.population import Population
from ..websim.site import Website
from .checkpoint import load_checkpoint, save_checkpoint
from .flows import STATUS_QUARANTINED, AuthFlowRunner, FlowResult


@dataclass
class CrawlDataset:
    """Everything one crawl produced."""

    profile_name: str
    log: CaptureLog
    flows: Dict[str, FlowResult]
    mailbox: Mailbox
    persona: Persona
    population: Population

    def successful_sites(self) -> List[str]:
        return [domain for domain, flow in self.flows.items()
                if flow.succeeded]

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for flow in self.flows.values():
            counts[flow.status] = counts.get(flow.status, 0) + 1
        return counts

    def quarantined_sites(self) -> List[str]:
        """Sites the circuit breaker gave up on (sorted)."""
        return sorted(domain for domain, flow in self.flows.items()
                      if flow.status == STATUS_QUARANTINED)

    def failure_class_counts(self) -> Dict[str, int]:
        """{'transient': n, 'permanent': m} over the failed flows."""
        counts: Dict[str, int] = {}
        for flow in self.flows.values():
            if flow.failure_class is not None:
                counts[flow.failure_class] = \
                    counts.get(flow.failure_class, 0) + 1
        return counts

    def retried_flow_count(self) -> int:
        """Flows whose final page load consumed more than one attempt."""
        return sum(1 for flow in self.flows.values() if flow.attempts > 1)

    def fingerprint(self) -> str:
        """Stable digest of everything observable in this dataset.

        Two crawls are *the same crawl* iff their fingerprints match:
        every capture-log exchange (URLs, headers, bodies, timestamps,
        block verdicts), the end-of-crawl cookie store, every flow
        outcome and every mailbox message is folded in.  This is the
        equality the checkpoint/resume invariant is stated over.
        """
        digest = hashlib.sha256()

        def fold(*parts: object) -> None:
            digest.update(repr(parts).encode("utf-8"))
            digest.update(b"\x00")

        fold("profile", self.profile_name)
        fold("persona", self.persona.email)
        for entry in self.log.entries:
            request = entry.request
            response = entry.response
            fold("entry", request.method, str(request.url),
                 request.headers.items(), request.body,
                 request.resource_type, round(request.timestamp, 6),
                 None if response is None else (response.status,
                                                response.headers.items(),
                                                response.body),
                 entry.site, entry.stage, entry.page_url, entry.blocked_by)
        for cookie in self.log.stored_cookies:
            fold("cookie", cookie)
        for domain in sorted(self.flows):
            flow = self.flows[domain]
            fold("flow", domain, flow.status, flow.block_reason,
                 flow.attempts, flow.failure_kind)
        fold("mail-address", self.mailbox.address)
        for message in self.mailbox.messages():
            fold("mail", message)
        return digest.hexdigest()


class CrawlSession:
    """A resumable in-flight crawl over one population.

    The session owns every piece of mutable crawl state — browser (cookie
    jar, capture log, tracker storage, circuit breakers, clock), mailbox,
    fault-plan counters and the pending site queue — and is therefore
    picklable as a unit: :meth:`save` checkpoints it, :meth:`load`
    resumes it, and a resumed session finishes with a dataset whose
    :meth:`CrawlDataset.fingerprint` equals an uninterrupted run's.
    """

    def __init__(self, crawler: "StudyCrawler",
                 sites: Optional[Iterable[Website]] = None) -> None:
        population = crawler.population
        self.population = population
        self.profile = crawler.profile
        self.persona = population.persona
        self.mailbox = Mailbox(self.persona.email)
        server = population.build_server(
            mail_hook=ConfirmationMailHook(self.mailbox),
            fault_plan=crawler.fault_plan)
        self.fault_plan = crawler.fault_plan
        self.browser = Browser(
            profile=crawler.profile, server=server,
            resolver=population.resolver(fault_plan=crawler.fault_plan),
            catalog=population.catalog, clock=crawler.clock,
            extension=crawler.extension, firewall=crawler.firewall,
            consent_policy=crawler.consent_policy,
            retry_policy=crawler.retry_policy)
        self.runner = AuthFlowRunner(self.browser, self.persona,
                                     self.mailbox,
                                     automated=crawler.automated)
        self._sites: List[Website] = (list(sites) if sites is not None
                                      else population.site_list())
        self._next_index = 0
        self.flows: Dict[str, FlowResult] = {}
        self._finished = False

    # -- progress --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._next_index >= len(self._sites)

    @property
    def crawled_count(self) -> int:
        return self._next_index

    @property
    def remaining_sites(self) -> List[str]:
        return [site.domain for site in self._sites[self._next_index:]]

    # -- execution -------------------------------------------------------

    def step(self) -> Optional[FlowResult]:
        """Crawl the next pending site; None when nothing is left."""
        if self.done:
            return None
        site = self._sites[self._next_index]
        result = self.runner.run(site)
        self.flows[site.domain] = result
        self._next_index += 1
        return result

    def run(self) -> CrawlDataset:
        """Crawl everything still pending and finish."""
        while not self.done:
            self.step()
        return self.finish()

    def finish(self) -> CrawlDataset:
        """Deliver post-crawl mail, snapshot cookies, build the dataset.

        Idempotent: finishing twice neither re-delivers marketing mail
        nor duplicates the cookie snapshot.
        """
        if not self._finished:
            # Marketing campaigns arrive after the crawl completes
            # (§4.2.3) — only for the sites actually crawled so far.
            for site in self._sites[:self._next_index]:
                if not self.flows[site.domain].succeeded:
                    continue
                inbox_count, spam_count = site.marketing_mail
                if inbox_count:
                    self.mailbox.deliver_marketing(site.domain, inbox_count,
                                                   spam=False)
                if spam_count:
                    self.mailbox.deliver_marketing(site.domain, spam_count,
                                                   spam=True)
            self.browser.snapshot_cookies()
            self._finished = True
        return CrawlDataset(profile_name=self.profile.name,
                            log=self.browser.log, flows=self.flows,
                            mailbox=self.mailbox, persona=self.persona,
                            population=self.population)

    # -- persistence -----------------------------------------------------

    def save(self, path: str) -> str:
        """Checkpoint this session (atomically) to ``path``."""
        return save_checkpoint(self, path)

    @staticmethod
    def load(path: str) -> "CrawlSession":
        """Resume a session checkpointed by :meth:`save`."""
        return load_checkpoint(path)


class StudyCrawler:
    """Crawls a population under one browser profile."""

    def __init__(self, population: Population,
                 profile: Optional[BrowserProfile] = None,
                 clock: Optional[SimClock] = None,
                 extension: Optional[ContentBlocker] = None,
                 firewall: Optional[OutboundFirewall] = None,
                 consent_policy: Optional[str] = None,
                 automated: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        """``extension`` (a content blocker such as
        :class:`repro.blocklist.AdblockExtension`) and ``firewall`` (an
        outbound scrubber such as :class:`repro.mitigation.PiiFirewall`)
        must satisfy their respective Protocols — a wrong object raises
        ``TypeError`` here rather than mid-crawl.  ``consent_policy`` (how
        cookie banners are answered; default accept-all, like the paper's
        operator) is forwarded to the browser.  ``fault_plan`` makes the
        synthetic web flaky; supplying one enables the resilient network
        path with a default :class:`~repro.browser.RetryPolicy` unless an
        explicit ``retry_policy`` is given."""
        from ..websim.consent import CONSENT_ACCEPT_ALL
        ensure_protocol(extension, ContentBlocker, "extension")
        ensure_protocol(firewall, OutboundFirewall, "firewall")
        self.population = population
        self.profile = profile or vanilla_firefox()
        self.clock = clock or SimClock()
        self.extension = extension
        self.firewall = firewall
        self.consent_policy = consent_policy or CONSENT_ACCEPT_ALL
        self.automated = automated
        self.fault_plan = fault_plan
        if retry_policy is None and fault_plan is not None:
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy

    def start(self, sites: Optional[Iterable[Website]] = None) -> CrawlSession:
        """Begin an incremental (checkpointable) crawl session."""
        return CrawlSession(self, sites)

    def crawl(self, sites: Optional[Iterable[Website]] = None) -> CrawlDataset:
        """Run the full study crawl; returns the combined dataset."""
        return self.start(sites).run()
