"""Persona-driven authentication-flow crawler."""

from .flows import (
    STATUS_BLOCKED,
    STATUS_BOT_BLOCKED,
    STATUS_CAPTCHA_FAILED,
    STATUS_CONFIRMATION_FAILED,
    STATUS_NO_AUTH,
    STATUS_SIGNIN_FAILED,
    STATUS_SUCCESS,
    STATUS_UNREACHABLE,
    AuthFlowRunner,
    FlowResult,
)
from .runner import CrawlDataset, StudyCrawler

__all__ = [
    "AuthFlowRunner",
    "CrawlDataset",
    "FlowResult",
    "STATUS_BLOCKED",
    "STATUS_BOT_BLOCKED",
    "STATUS_CAPTCHA_FAILED",
    "STATUS_CONFIRMATION_FAILED",
    "STATUS_NO_AUTH",
    "STATUS_SIGNIN_FAILED",
    "STATUS_SUCCESS",
    "STATUS_UNREACHABLE",
    "StudyCrawler",
]
