"""Persona-driven authentication-flow crawler."""

from ..browser.resilience import (
    CircuitBreakerRegistry,
    RequestFailure,
    RetryPolicy,
)
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .flows import (
    ALL_STATUSES,
    FAILURE_PERMANENT,
    FAILURE_TRANSIENT,
    STATUS_BLOCKED,
    STATUS_BOT_BLOCKED,
    STATUS_CAPTCHA_FAILED,
    STATUS_CONFIRMATION_FAILED,
    STATUS_NO_AUTH,
    STATUS_QUARANTINED,
    STATUS_SIGNIN_FAILED,
    STATUS_SUCCESS,
    STATUS_TAXONOMY,
    STATUS_UNREACHABLE,
    AuthFlowRunner,
    FlowResult,
)
from .runner import CrawlDataset, CrawlSession, StudyCrawler

__all__ = [
    "ALL_STATUSES",
    "AuthFlowRunner",
    "CheckpointError",
    "CircuitBreakerRegistry",
    "CrawlDataset",
    "CrawlSession",
    "FAILURE_PERMANENT",
    "FAILURE_TRANSIENT",
    "FlowResult",
    "RequestFailure",
    "RetryPolicy",
    "STATUS_BLOCKED",
    "STATUS_BOT_BLOCKED",
    "STATUS_CAPTCHA_FAILED",
    "STATUS_CONFIRMATION_FAILED",
    "STATUS_NO_AUTH",
    "STATUS_QUARANTINED",
    "STATUS_SIGNIN_FAILED",
    "STATUS_SUCCESS",
    "STATUS_TAXONOMY",
    "STATUS_UNREACHABLE",
    "StudyCrawler",
    "load_checkpoint",
    "save_checkpoint",
]
