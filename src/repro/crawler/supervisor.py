"""Supervised crash-safe shard execution.

:class:`ShardSupervisor` replaces the old batch ``Pool.map_async``
fan-out of :class:`~repro.crawler.ParallelCrawler`: it dispatches shards
one process each with a bounded number in flight, watches worker
liveness, and survives every process-level failure the pool could not —
a worker that segfaults, OOMs, hangs, or is killed no longer deadlocks
the study or silently loses its whole batch.

Supervision model
-----------------
* **Per-shard dispatch, bounded in-flight.**  Each attempt of each shard
  runs in a fresh ``multiprocessing.Process``; at most ``max_in_flight``
  run concurrently.  Every worker owns a private pair of
  ``SimpleQueue``\\ s (beats, result) so one torn/killed worker can never
  corrupt another worker's channel — there are no cross-process locks or
  feeder threads shared between workers.
* **Liveness watchdog.**  Workers emit a start sentinel and then reuse
  the :mod:`repro.obs.progress` heartbeat stream (one
  :class:`~repro.obs.progress.HeartbeatEvent` per crawled site) as their
  liveness signal.  A dead process without a delivered result is
  *crashed*; a live process silent for longer than
  ``heartbeat_deadline`` wall seconds is *hung* and gets killed.  Both
  are declared lost and retried.
* **Bounded retry, then quarantine.**  Lost shards are requeued on a
  fresh process with an incremented attempt number.  Failures are
  classified under the same transient-vs-permanent taxonomy the crawl
  flows use (:data:`~repro.crawler.flows.FAILURE_TRANSIENT` /
  :data:`~repro.crawler.flows.FAILURE_PERMANENT`): crashes and hangs are
  transient and worth retrying; deterministic Python errors are
  permanent and quarantine the shard immediately.  A shard that stays
  transiently lost after ``max_retries`` retries is a *poison shard* and
  is quarantined too — never re-dispatched forever, never silently
  dropped.
* **Graceful shutdown.**  SIGINT/SIGTERM (or a programmatic
  :meth:`~ShardSupervisor.request_shutdown`) stops new dispatch, drains
  in-flight shards for ``drain_timeout`` seconds, kills whatever is
  still running (their per-site checkpoints are already durable), and
  writes a resumable study manifest — so ``Study.crawl(resume=True)``
  against the same checkpoint directory picks up exactly where the kill
  landed.
* **Partial-result salvage.**  Completed shards are always returned,
  explicitly marked incomplete when shards are missing; dataset
  fingerprints are only computed on complete merges (the
  bit-identical-at-any-worker-count invariant is stated over complete
  datasets only — :meth:`~repro.crawler.ParallelCrawler.crawl` raises
  :class:`IncompleteCrawlError` rather than fingerprinting a partial
  merge).

Determinism note: the supervisor reads the host's monotonic clock — a
*liveness* watchdog is meaningless against a simulated clock — but
nothing it observes ever feeds a dataset: shard results are pure
functions of ``(population spec, seed, shard)`` regardless of which
attempt produced them, so retries, kills, and resumes cannot move a
fingerprint.  The explicit justified DET101 suppressions below scope
the exception to exactly those liveness reads.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.progress import HeartbeatEvent
from .chaos import ChaosMonkey, ChaosPlan
from .checkpoint import CheckpointError, atomic_write_text
from .flows import FAILURE_PERMANENT, FAILURE_TRANSIENT
from .sharding import ShardLayout

#: File name of the resumable study manifest inside a checkpoint dir.
MANIFEST_NAME = "study-manifest.json"

#: Schema version of the study manifest; bump on incompatible changes.
MANIFEST_SCHEMA_VERSION = 1

#: Supervision event kinds (also the ``supervisor.events.*`` counters).
EVENT_WORKER_CRASHED = "worker_crashed"   # process died without a result
EVENT_WATCHDOG_TRIP = "watchdog_trip"     # no heartbeat within deadline
EVENT_WORKER_ERROR = "worker_error"       # worker raised a Python error
EVENT_RETRY = "retry"                     # shard requeued on a fresh worker
EVENT_QUARANTINE = "quarantine"           # shard given up on
EVENT_SHUTDOWN = "shutdown"               # graceful shutdown requested
EVENT_DRAIN_KILL = "drain_kill"           # in-flight worker killed at drain

#: Python exception types a worker can die of that are worth retrying:
#: environmental, not deterministic.  Everything else is permanent.
_TRANSIENT_ERROR_TYPES = frozenset({
    "OSError", "IOError", "TimeoutError", "ConnectionError",
    "ConnectionResetError", "BrokenPipeError", "EOFError", "MemoryError",
})


class SupervisorError(RuntimeError):
    """The supervisor itself failed (not a worker)."""


class IncompleteCrawlError(SupervisorError):
    """A merged dataset is missing shards; its fingerprint is undefined.

    ``result`` (when set) carries the partial
    :class:`~repro.crawler.ParallelCrawlResult` — completed shards are
    salvaged, never discarded — and ``incomplete_shards`` names what is
    missing.
    """

    def __init__(self, message: str, result: Optional[object] = None,
                 incomplete_shards: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.result = result
        self.incomplete_shards = tuple(incomplete_shards)


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervised executor (all picklable plain data).

    ``heartbeat_deadline`` is the wall-clock silence, in seconds, after
    which a live worker is declared hung; it must comfortably exceed
    the slowest single site crawl *plus* the worker's population-build
    time.  ``max_retries`` bounds the *transient* retries per shard
    before quarantine (``0`` = no retries).  ``max_in_flight`` caps
    concurrent worker processes (``None`` = the engine's worker count).
    ``drain_timeout`` is the graceful-shutdown budget for in-flight
    shards; ``kill_grace`` the SIGTERM→SIGKILL escalation delay;
    ``poll_interval`` the supervision sweep period (also the watchdog's
    resolution).  ``install_signal_handlers`` opts the supervisor into
    handling SIGINT/SIGTERM during :meth:`ShardSupervisor.run` (only
    ever attempted from the main thread).
    """

    max_retries: int = 2
    heartbeat_deadline: float = 60.0
    poll_interval: float = 0.02
    drain_timeout: float = 10.0
    kill_grace: float = 5.0
    max_in_flight: Optional[int] = None
    install_signal_handlers: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.heartbeat_deadline <= 0:
            raise ValueError("heartbeat_deadline must be > 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")


@dataclass(frozen=True)
class SupervisionEvent:
    """One supervision decision, for reporting and obs counters."""

    kind: str
    shard: int = -1
    attempt: int = 0
    failure_class: str = ""     # transient | permanent | ""
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "shard": self.shard,
                "attempt": self.attempt,
                "failure_class": self.failure_class, "detail": self.detail}


@dataclass
class SupervisionOutcome:
    """Everything one supervised execution decided and salvaged.

    ``results`` holds every completed shard (complete or not);
    ``quarantined`` maps shard index → the terminal
    :class:`SupervisionEvent`; ``unfinished`` lists shards neither
    completed nor quarantined (shutdown landed first); ``interrupted``
    is True when a graceful shutdown cut the run short.
    """

    results: List[object] = field(default_factory=list)
    quarantined: Dict[int, SupervisionEvent] = field(default_factory=dict)
    unfinished: List[int] = field(default_factory=list)
    events: List[SupervisionEvent] = field(default_factory=list)
    interrupted: bool = False

    @property
    def complete(self) -> bool:
        return not self.quarantined and not self.unfinished

    @property
    def incomplete_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.quarantined) | set(self.unfinished)))

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


# ---------------------------------------------------------------------------
# The worker side.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Beat:
    """Worker → parent liveness message (picklable plain data).

    ``event`` is the crawl heartbeat riding along (``None`` for the
    start sentinel emitted before the population build).
    """

    shard: int
    attempt: int
    event: Optional[HeartbeatEvent] = None


@dataclass(frozen=True)
class _WorkerOutcome:
    """Worker → parent terminal message: a result or an error."""

    shard: int
    attempt: int
    result: Optional[object] = None     # ShardResult
    error_type: str = ""
    error: str = ""


def _supervised_worker_main(job, attempt: int, chaos: Optional[ChaosPlan],
                            beat_queue, result_queue) -> None:
    """Entry point of one supervised worker process.

    Runs exactly one shard attempt: emits the start sentinel, streams
    per-site heartbeats, and puts exactly one terminal
    :class:`_WorkerOutcome` — unless a (real or chaos-injected) crash or
    hang prevents it, which is precisely what the parent's watchdog is
    for.
    """
    # The parent owns shutdown policy: workers ignore the terminal's
    # SIGINT broadcast (the parent drains them instead) and die promptly
    # on the parent's targeted SIGTERM.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):        # non-main thread / exotic platform
        pass
    from .parallel import run_shard_job
    shard_index = job.shard.index
    monkey = ChaosMonkey(chaos.fault_for(shard_index, attempt)
                         if chaos is not None else None)
    beat_queue.put(_Beat(shard=shard_index, attempt=attempt))
    monkey.on_start()

    def emit(event: HeartbeatEvent) -> None:
        beat_queue.put(_Beat(shard=shard_index, attempt=attempt,
                             event=event))
        if not event.final:
            monkey.on_site()

    try:
        result = run_shard_job(job, emit=emit)
    except BaseException as exc:    # noqa: BLE001 — forwarded, not dropped
        result_queue.put(_WorkerOutcome(
            shard=shard_index, attempt=attempt,
            error_type=type(exc).__name__, error=str(exc)))
    else:
        result_queue.put(_WorkerOutcome(shard=shard_index, attempt=attempt,
                                        result=result))


def classify_worker_failure(kind: str, error_type: str = "") -> str:
    """Transient-vs-permanent taxonomy for worker-level failures.

    Mirrors the crawl-level taxonomy of :mod:`repro.crawler.flows`:
    process deaths and hangs (``crashed``/``hung``) are *transient* —
    the environment failed, a fresh worker may succeed; a Python
    exception (``error``) is *permanent* unless its type is an
    environmental one (OS/IO/timeout/memory), because a deterministic
    error will recur on every retry.
    """
    if kind in (EVENT_WORKER_CRASHED, EVENT_WATCHDOG_TRIP):
        return FAILURE_TRANSIENT
    if error_type in _TRANSIENT_ERROR_TYPES:
        return FAILURE_TRANSIENT
    return FAILURE_PERMANENT


# ---------------------------------------------------------------------------
# The study manifest.
# ---------------------------------------------------------------------------

def write_manifest(checkpoint_dir: str, layout: ShardLayout,
                   outcome: SupervisionOutcome,
                   spec_description: str = "") -> str:
    """Atomically write the resumable study manifest; returns its path.

    The manifest is bookkeeping *about* the per-shard checkpoints: it
    names the layout (so a resume against a different layout fails
    loudly before any crawling), what completed, what was quarantined,
    and what the shutdown left unfinished.  Resume correctness never
    depends on it — the per-shard checkpoints are the durable state —
    but it makes interrupted studies self-describing.
    """
    completed = sorted(getattr(result, "index", -1)
                       for result in outcome.results)
    document = {
        "type": "study-manifest",
        "schema": MANIFEST_SCHEMA_VERSION,
        "status": "interrupted" if outcome.interrupted else (
            "complete" if outcome.complete else "partial"),
        "population": spec_description,
        "layout": {
            "digest": layout.digest(),
            "num_shards": layout.num_shards,
            "site_count": layout.site_count,
        },
        "completed_shards": completed,
        "quarantined_shards": sorted(outcome.quarantined),
        "unfinished_shards": sorted(outcome.unfinished),
        "event_counts": outcome.event_counts(),
        "events": [event.as_dict() for event in outcome.events[:200]],
    }
    samples = {getattr(result, "index", -1): sample
               for result in outcome.results
               for sample in [getattr(result, "resources", None)]
               if sample is not None}
    if samples:
        from ..obs.runtime import aggregate_resources
        document["resources"] = {
            "shards": {str(index): dict(samples[index])
                       for index in sorted(samples)},
            "totals": aggregate_resources(samples.values()),
        }
    path = os.path.join(checkpoint_dir, MANIFEST_NAME)
    return atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_manifest(checkpoint_dir: str) -> Optional[Dict[str, object]]:
    """Read the study manifest in ``checkpoint_dir``, if one exists.

    Returns ``None`` when no manifest is present (a fresh or pre-manifest
    checkpoint dir).  Raises :class:`~repro.crawler.CheckpointError` on
    a file that exists but is not a readable manifest (truncated JSON,
    wrong type, wrong schema) — never silently resumes against garbage.
    """
    path = os.path.join(checkpoint_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            "%s is not a readable study manifest (%s); delete it to "
            "restart the study from its per-shard checkpoints"
            % (path, exc)) from exc
    if not isinstance(document, dict) or \
            document.get("type") != "study-manifest":
        raise CheckpointError(
            "%s is not a study manifest (missing type marker)" % path)
    if document.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise CheckpointError(
            "%s has manifest schema %r but this version reads %d"
            % (path, document.get("schema"), MANIFEST_SCHEMA_VERSION))
    return document


def validate_manifest_layout(manifest: Dict[str, object],
                             layout: ShardLayout,
                             checkpoint_dir: str) -> None:
    """Refuse to resume a manifest written under a different layout."""
    described = manifest.get("layout")
    if not isinstance(described, dict):
        return
    digest = described.get("digest")
    if digest is not None and digest != layout.digest():
        raise CheckpointError(
            "%s/%s was written under shard layout %s but the running "
            "layout is %s (%d shards); shard layouts must match exactly "
            "to resume" % (checkpoint_dir, MANIFEST_NAME, digest,
                           layout.digest(), layout.num_shards))


# ---------------------------------------------------------------------------
# The parent side.
# ---------------------------------------------------------------------------

class _WorkerHandle:
    """Parent-side bookkeeping for one in-flight worker attempt.

    Holds live process/queue handles on purpose — this object never
    crosses a process boundary (the picklable currency is
    :class:`_Beat` / :class:`_WorkerOutcome`).
    """

    def __init__(self, job, attempt: int, process, beat_queue,
                 result_queue, launched_at: float) -> None:
        self.job = job
        self.attempt = attempt
        self.process = process           # statan: ignore[PKL303] -- parent-side handle; object never pickled
        self.beat_queue = beat_queue     # statan: ignore[PKL303] -- parent-side handle; object never pickled
        self.result_queue = result_queue  # statan: ignore[PKL303] -- parent-side handle; object never pickled
        self.last_beat = launched_at
        self.first_seen_dead: Optional[float] = None
        self.retired = False

    @property
    def shard(self) -> int:
        return self.job.shard.index

    def close(self) -> None:
        """Release the queue pipes (idempotent)."""
        if self.retired:
            return
        self.retired = True
        for queue in (self.beat_queue, self.result_queue):
            close = getattr(queue, "close", None)
            if close is not None:
                try:
                    close()
                except OSError:
                    pass


class ShardSupervisor:
    """Drives shard jobs to completion under supervision.

    ``progress`` (optional) receives every worker
    :class:`~repro.obs.progress.HeartbeatEvent` that carries crawl
    progress — the same sink contract as the engine's, so live progress
    keeps streaming across retries and kills.  ``event_sink``
    (optional) receives every :class:`SupervisionEvent` the moment it
    is recorded — the live twin of ``outcome.events``, used by the
    service layer to fan supervision decisions out over SSE; like the
    progress sink it runs on the supervision thread and must not raise.
    ``chaos`` injects the deterministic worker-fault plan (tests/CI
    only).  ``checkpoint_dir`` is where the study manifest is written
    (and validated on resume); per-shard checkpoint paths ride on the
    jobs themselves.
    """

    def __init__(self, config: Optional[SupervisorConfig] = None,
                 workers: int = 2,
                 progress: Optional[Callable[[HeartbeatEvent], None]] = None,
                 chaos: Optional[ChaosPlan] = None,
                 checkpoint_dir: Optional[str] = None,
                 spec_description: str = "",
                 context: Optional[object] = None,
                 event_sink: Optional[
                     Callable[[SupervisionEvent], None]] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config or SupervisorConfig()
        self.workers = workers
        self.progress = progress
        self.event_sink = event_sink
        self.chaos = chaos
        self.checkpoint_dir = checkpoint_dir
        self.spec_description = spec_description
        self._context = context or multiprocessing.get_context()
        self._shutdown_reason: Optional[str] = None
        self._shutdown_at: Optional[float] = None

    # -- shutdown --------------------------------------------------------

    def request_shutdown(self, reason: str = "requested") -> None:
        """Begin a graceful shutdown (idempotent, signal-safe).

        In-flight shards get ``drain_timeout`` seconds to finish; new
        dispatch stops immediately; the run returns a partial outcome
        with ``interrupted=True``.
        """
        if self._shutdown_reason is None:
            self._shutdown_reason = reason

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown_reason is not None

    def _on_signal(self, signum, frame) -> None:
        self.request_shutdown("signal %d" % signum)

    # -- execution -------------------------------------------------------

    def run(self, jobs: Sequence[object],
            layout: Optional[ShardLayout] = None) -> SupervisionOutcome:
        """Execute ``jobs`` (ShardJobs) to a :class:`SupervisionOutcome`.

        Raises :class:`~repro.crawler.CheckpointError` immediately when
        a worker reports one (resume-layout mismatches must abort the
        study, not burn retries) or when an existing study manifest
        describes a different layout.
        """
        if self.checkpoint_dir and layout is not None:
            manifest = load_manifest(self.checkpoint_dir)
            if manifest is not None:
                validate_manifest_layout(manifest, layout,
                                         self.checkpoint_dir)
        outcome = SupervisionOutcome()
        pending: List[Tuple[object, int]] = [(job, 0) for job in jobs]
        inflight: Dict[int, _WorkerHandle] = {}
        max_in_flight = self.config.max_in_flight or self.workers
        restore: List[Tuple[int, object]] = []
        if self.config.install_signal_handlers and \
                threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    restore.append(
                        (signum, signal.signal(signum, self._on_signal)))
                except (ValueError, OSError):
                    pass
        try:
            self._loop(outcome, pending, inflight, max_in_flight)
        finally:
            for signum, previous in restore:
                try:
                    signal.signal(signum, previous)
                except (ValueError, OSError, TypeError):
                    pass
            for handle in inflight.values():
                self._kill(handle)
                handle.close()
        if self.checkpoint_dir and layout is not None:
            write_manifest(self.checkpoint_dir, layout, outcome,
                           spec_description=self.spec_description)
        return outcome

    # -- internals -------------------------------------------------------

    def _now(self) -> float:
        # Liveness is a wall-clock property; see the module docstring.
        return time.monotonic()     # statan: ignore[DET101] -- liveness watchdog; see module docstring

    def _record(self, outcome: SupervisionOutcome,
                event: SupervisionEvent) -> None:
        """Append one supervision decision and fan it out live."""
        outcome.events.append(event)
        if self.event_sink is not None:
            self.event_sink(event)

    def _loop(self, outcome: SupervisionOutcome,
              pending: List[Tuple[object, int]],
              inflight: Dict[int, _WorkerHandle],
              max_in_flight: int) -> None:
        while pending or inflight:
            if not self.shutdown_requested:
                while pending and len(inflight) < max_in_flight:
                    job, attempt = pending.pop(0)
                    handle = self._launch(job, attempt)
                    inflight[handle.shard] = handle
            progressed = self._sweep(outcome, pending, inflight)
            if self.shutdown_requested:
                # Shutdown path: pending shards will not run; in-flight
                # shards drain until the timeout, then die (their
                # checkpoints survive).  The request may land at any
                # moment — a signal, or a progress sink called inside
                # the sweep above — so the bookkeeping happens here.
                if self._shutdown_at is None:
                    self._shutdown_at = self._now()
                    outcome.interrupted = True
                    self._record(outcome, SupervisionEvent(
                        kind=EVENT_SHUTDOWN,
                        detail=self._shutdown_reason or ""))
                if pending:
                    for job, _ in pending:
                        outcome.unfinished.append(job.shard.index)
                    del pending[:]
                if inflight and \
                        self._now() - self._shutdown_at > \
                        self.config.drain_timeout:
                    for handle in list(inflight.values()):
                        self._record(outcome, SupervisionEvent(
                            kind=EVENT_DRAIN_KILL, shard=handle.shard,
                            attempt=handle.attempt,
                            detail="drain timeout after %.1fs"
                                   % self.config.drain_timeout))
                        self._kill(handle)
                        handle.close()
                        del inflight[handle.shard]
                        outcome.unfinished.append(handle.shard)
            if not progressed and (pending or inflight):
                time.sleep(self.config.poll_interval)

    def _launch(self, job, attempt: int) -> _WorkerHandle:
        beat_queue = self._context.SimpleQueue()
        result_queue = self._context.SimpleQueue()
        process = self._context.Process(
            target=_supervised_worker_main,
            args=(job, attempt, self.chaos, beat_queue, result_queue),
            daemon=True,
            name="repro-shard-%03d-attempt-%d" % (job.shard.index, attempt))
        process.start()
        return _WorkerHandle(job=job, attempt=attempt, process=process,
                             beat_queue=beat_queue,
                             result_queue=result_queue,
                             launched_at=self._now())

    def _sweep(self, outcome: SupervisionOutcome,
               pending: List[Tuple[object, int]],
               inflight: Dict[int, _WorkerHandle]) -> bool:
        """One supervision pass; returns True when anything happened."""
        progressed = False
        now = self._now()
        for handle in list(inflight.values()):
            # 1. Liveness: drain this worker's beats.
            while not handle.beat_queue.empty():
                beat = handle.beat_queue.get()
                handle.last_beat = self._now()
                progressed = True
                if self.progress is not None and beat.event is not None:
                    self.progress(beat.event)
            exitcode = handle.process.exitcode
            # 2. Results: only read from a live or cleanly-exited
            #    worker — a killed worker's result pipe may be torn
            #    mid-message and must never block the supervisor.
            if (exitcode is None or exitcode == 0) and \
                    not handle.result_queue.empty():
                message = handle.result_queue.get()
                progressed = True
                self._retire(handle, inflight)
                if message.result is not None:
                    outcome.results.append(message.result)
                else:
                    self._handle_failure(
                        outcome, pending, handle, EVENT_WORKER_ERROR,
                        error_type=message.error_type,
                        detail="%s: %s" % (message.error_type,
                                           message.error))
                continue
            # 3. Death: the process is gone and no result arrived.  A
            #    short grace window lets a result racing the exit land.
            if exitcode is not None:
                if handle.first_seen_dead is None:
                    handle.first_seen_dead = now
                    continue
                if now - handle.first_seen_dead < 0.2 and exitcode == 0:
                    continue
                progressed = True
                self._retire(handle, inflight)
                died_of = ("exit code %d" % exitcode if exitcode >= 0
                           else "signal %d" % -exitcode)
                self._handle_failure(outcome, pending, handle,
                                     EVENT_WORKER_CRASHED,
                                     detail="worker died (%s) without "
                                            "delivering a result" % died_of)
                continue
            # 4. Watchdog: alive but silent past the deadline -> hung.
            if now - handle.last_beat > self.config.heartbeat_deadline:
                progressed = True
                self._kill(handle)
                self._retire(handle, inflight)
                self._handle_failure(
                    outcome, pending, handle, EVENT_WATCHDOG_TRIP,
                    detail="no heartbeat for %.1fs (deadline %.1fs); "
                           "worker killed"
                           % (now - handle.last_beat,
                              self.config.heartbeat_deadline))
        return progressed

    def _retire(self, handle: _WorkerHandle,
                inflight: Dict[int, _WorkerHandle]) -> None:
        inflight.pop(handle.shard, None)
        if handle.process.exitcode is None:
            # Still exiting after a clean result: give it a moment.
            handle.process.join(timeout=self.config.kill_grace)
            if handle.process.exitcode is None:
                self._kill(handle)
        else:
            handle.process.join()
        handle.close()

    def _kill(self, handle: _WorkerHandle) -> None:
        """Terminate a worker, escalating SIGTERM → SIGKILL."""
        process = handle.process
        if process.exitcode is not None:
            process.join()
            return
        process.terminate()
        process.join(timeout=self.config.kill_grace)
        if process.exitcode is None:
            kill = getattr(process, "kill", process.terminate)
            kill()
            process.join()

    def _handle_failure(self, outcome: SupervisionOutcome,
                        pending: List[Tuple[object, int]],
                        handle: _WorkerHandle, kind: str,
                        error_type: str = "", detail: str = "") -> None:
        """Classify a lost attempt: abort, retry, or quarantine."""
        if error_type == "CheckpointError":
            # Resume-layout mismatches poison every retry identically;
            # surface them as the library-level error they are.
            raise CheckpointError(detail.split(": ", 1)[-1] or detail)
        failure_class = classify_worker_failure(kind, error_type)
        self._record(outcome, SupervisionEvent(
            kind=kind, shard=handle.shard, attempt=handle.attempt,
            failure_class=failure_class, detail=detail))
        retryable = (failure_class == FAILURE_TRANSIENT
                     and handle.attempt < self.config.max_retries
                     and not self.shutdown_requested)
        if retryable:
            self._record(outcome, SupervisionEvent(
                kind=EVENT_RETRY, shard=handle.shard,
                attempt=handle.attempt + 1, failure_class=failure_class,
                detail="retrying after %s" % kind))
            pending.append((handle.job, handle.attempt + 1))
            return
        if self.shutdown_requested and failure_class == FAILURE_TRANSIENT:
            # Do not quarantine a shard we merely refused to retry
            # because shutdown landed: it is unfinished, not poison.
            outcome.unfinished.append(handle.shard)
            return
        terminal = SupervisionEvent(
            kind=EVENT_QUARANTINE, shard=handle.shard,
            attempt=handle.attempt, failure_class=failure_class,
            detail="quarantined after %d attempt(s): %s"
                   % (handle.attempt + 1, detail))
        self._record(outcome, terminal)
        outcome.quarantined[handle.shard] = terminal
