"""Crawl checkpoint serialization.

A :class:`~repro.crawler.runner.CrawlSession` is a closed world of plain
Python data (browser state, cookie jar, capture log, mailbox, fault-plan
counters, circuit breakers, pending site queue), so a checkpoint is simply
a versioned pickle of the session.  The format carries a magic header so a
stale or foreign file fails loudly instead of resuming garbage.

Only load checkpoints you wrote yourself: like every pickle, the payload
can execute code when deserialized.
"""

from __future__ import annotations

import os
import pickle
import tempfile

#: Format magic + version.  Bump the version on incompatible state changes.
CHECKPOINT_MAGIC = b"repro-crawl-checkpoint:1\n"


class CheckpointError(ValueError):
    """The file is not a checkpoint this version can resume."""


def save_checkpoint(session, path: str) -> str:
    """Atomically write ``session`` to ``path``; returns the path.

    The write goes through a temp file + rename so a crash mid-write
    never leaves a truncated checkpoint behind — the previous complete
    checkpoint (if any) survives.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(CHECKPOINT_MAGIC)
            pickle.dump(session, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return path


def load_checkpoint(path: str):
    """Load a session previously written by :func:`save_checkpoint`."""
    with open(path, "rb") as handle:
        header = handle.read(len(CHECKPOINT_MAGIC))
        if header != CHECKPOINT_MAGIC:
            raise CheckpointError(
                "%s is not a version-%s crawl checkpoint"
                % (path, CHECKPOINT_MAGIC.decode("ascii").strip()
                   .rsplit(":", 1)[-1]))
        return pickle.load(handle)
