"""Crawl checkpoint serialization.

A :class:`~repro.crawler.runner.CrawlSession` is a closed world of plain
Python data (browser state, cookie jar, capture log, mailbox, fault-plan
counters, circuit breakers, pending site queue), so a checkpoint is simply
a versioned pickle of the session.  The format carries a magic header, an
explicit payload length and a SHA-256 trailer so a stale, foreign, or
*truncated* file fails loudly instead of resuming garbage — a worker
killed mid-write can never be mistaken for a valid checkpoint (writes are
atomic anyway, but the trailer also catches torn copies, half-synced
network filesystems and manual tampering).

Only load checkpoints you wrote yourself: like every pickle, the payload
can execute code when deserialized.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile

#: Format magic + version.  Bump the version on incompatible state changes.
#: Version 2 added the payload-length field and SHA-256 integrity trailer.
CHECKPOINT_MAGIC = b"repro-crawl-checkpoint:2\n"

#: Payload length prefix: one big-endian u64 between magic and pickle.
_LENGTH_STRUCT = struct.Struct(">Q")


class CheckpointError(ValueError):
    """The file is not a checkpoint this version can resume."""


def atomic_write_bytes(path: str, payload: bytes) -> str:
    """Write ``payload`` to ``path`` via temp-file + ``os.replace``.

    The rename is atomic on POSIX, so a crash (or a SIGKILL'd worker)
    mid-write leaves either the previous complete file or nothing —
    never a truncated one.  Returns ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return path


def atomic_write_text(path: str, text: str) -> str:
    """Atomically write UTF-8 ``text`` to ``path`` (see
    :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def save_checkpoint(session, path: str) -> str:
    """Atomically write ``session`` to ``path``; returns the path.

    The write goes through a temp file + rename so a crash mid-write
    never leaves a truncated checkpoint behind — the previous complete
    checkpoint (if any) survives.  The on-disk layout is::

        magic  |  u64 payload length  |  pickle payload  |  sha256(payload)
    """
    payload = pickle.dumps(session, protocol=pickle.HIGHEST_PROTOCOL)
    record = b"".join([CHECKPOINT_MAGIC, _LENGTH_STRUCT.pack(len(payload)),
                       payload, hashlib.sha256(payload).digest()])
    return atomic_write_bytes(path, record)


def load_checkpoint(path: str):
    """Load a session previously written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` (with a message naming the failure:
    wrong magic/version, truncated payload, digest mismatch, or a
    payload pickle that cannot be deserialized) rather than ever
    surfacing unpickled garbage to the resume path.
    """
    with open(path, "rb") as handle:
        header = handle.read(len(CHECKPOINT_MAGIC))
        if header != CHECKPOINT_MAGIC:
            raise CheckpointError(
                "%s is not a version-%s crawl checkpoint (bad or "
                "outdated header; re-crawl rather than resuming it)"
                % (path, CHECKPOINT_MAGIC.decode("ascii").strip()
                   .rsplit(":", 1)[-1]))
        length_bytes = handle.read(_LENGTH_STRUCT.size)
        if len(length_bytes) != _LENGTH_STRUCT.size:
            raise CheckpointError(
                "%s is truncated (incomplete length field); the writer "
                "died mid-write — delete it and re-crawl the shard"
                % path)
        (length,) = _LENGTH_STRUCT.unpack(length_bytes)
        payload = handle.read(length)
        digest = handle.read(hashlib.sha256().digest_size)
        if len(payload) != length or \
                len(digest) != hashlib.sha256().digest_size:
            raise CheckpointError(
                "%s is truncated (%d of %d payload bytes present); the "
                "writer died mid-write — delete it and re-crawl the "
                "shard" % (path, len(payload), length))
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointError(
                "%s fails its integrity check (payload digest mismatch); "
                "refusing to unpickle a corrupt checkpoint" % path)
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(
                "%s carries an undeserializable payload (%s: %s); it was "
                "probably written by an incompatible code version"
                % (path, type(exc).__name__, exc)) from exc
