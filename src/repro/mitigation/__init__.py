"""Publisher-side mitigation (the paper's concluding recommendation)."""

from .firewall import REDACTION, FirewallReport, PiiFirewall

__all__ = ["FirewallReport", "PiiFirewall", "REDACTION"]
