"""PII firewall: first-party-side leak termination.

The paper's conclusion argues "the site's publishers should take a more
proactive approach to terminating this type of data transfer".  This
module prototypes that approach: a request-rewriting firewall a publisher
(or privacy proxy) can put on the outgoing path.  For every third-party
request it scans the same surfaces the detector scans — URL parameters,
Referer, Cookie header, payload body — and *redacts* any candidate PII
token before the request leaves, instead of blocking the request outright
(so site functionality that relies on the tracker's non-PII features
survives).

The firewall is built from the same candidate-token machinery as the
detector, which makes the guarantee precise: whatever the §4.1 detector
would have flagged, the firewall removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.tokens import CandidateTokenSet
from ..dnssim import CnameCloakingDetector, Resolver
from ..netsim import (
    HttpRequest,
    decode_urlencoded,
    encode_urlencoded,
    percent_decode,
)
from ..psl import PublicSuffixList, default_list

#: Replacement for redacted token occurrences.
REDACTION = "__pii_redacted__"


@dataclass
class FirewallReport:
    """What the firewall did to one request."""

    redacted_locations: List[str] = field(default_factory=list)

    @property
    def modified(self) -> bool:
        return bool(self.redacted_locations)


class PiiFirewall:
    """Scrubs candidate PII tokens out of outgoing third-party requests."""

    def __init__(self, tokens: CandidateTokenSet,
                 psl: Optional[PublicSuffixList] = None,
                 resolver: Optional[Resolver] = None) -> None:
        """Pass ``resolver`` to make the firewall CNAME-cloaking aware:
        without it, cloaked collection subdomains look first-party and
        their cookie-channel leaks pass through — the same blind spot the
        paper found in origin-based protections."""
        self.tokens = tokens
        self.psl = psl or default_list()
        self._cloaking = (CnameCloakingDetector(resolver, psl=self.psl)
                          if resolver is not None else None)
        self._scrubbed_requests = 0
        self._redactions = 0

    # -- statistics --------------------------------------------------------

    @property
    def scrubbed_requests(self) -> int:
        return self._scrubbed_requests

    @property
    def redactions(self) -> int:
        return self._redactions

    # -- scrubbing -----------------------------------------------------------

    def _scrub_text(self, text: str) -> Tuple[str, int]:
        """Replace every candidate-token occurrence in ``text``."""
        matches = self.tokens.scan(text)
        if not matches:
            return text, 0
        # Merge overlapping spans, replace right-to-left.
        spans = sorted({(m.start, m.end) for m in matches})
        merged: List[List[int]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        result = text
        for start, end in reversed(merged):
            result = result[:start] + REDACTION + result[end:]
        return result, len(merged)

    def _scrub_pairs(self, pairs):
        count = 0
        scrubbed = []
        for name, value in pairs:
            # Decode once so percent-encoded plaintext cannot slip through.
            new_value, hits = self._scrub_text(percent_decode(value))
            if hits == 0:
                new_value = value
            count += hits
            scrubbed.append((name, new_value))
        return scrubbed, count

    def scrub_request(self, request: HttpRequest,
                      site_host: str) -> Tuple[HttpRequest, FirewallReport]:
        """Return a scrubbed copy of a third-party request.

        First-party requests pass through untouched — the site needs the
        data; the firewall polices what leaves the party boundary.
        """
        report = FirewallReport()
        if not self._crosses_party_boundary(request.url.host, site_host):
            return request, report

        url = request.url
        query, query_hits = self._scrub_pairs(url.query)
        if query_hits:
            url = url.with_query(query)
            report.redacted_locations.append("query")
        path, path_hits = self._scrub_text(percent_decode(url.path))
        if path_hits:
            url = url.with_path(path)
            report.redacted_locations.append("path")

        headers = request.headers.copy()
        referer = headers.get("Referer")
        if referer:
            new_referer, hits = self._scrub_text(percent_decode(referer))
            if hits:
                headers.set("Referer", new_referer)
                report.redacted_locations.append("referer")
        cookie_header = headers.get("Cookie")
        if cookie_header:
            new_cookie, hits = self._scrub_text(cookie_header)
            if hits:
                headers.set("Cookie", new_cookie)
                report.redacted_locations.append("cookie")

        body = request.body
        if body:
            body, body_hits = self._scrub_body(request)
            if body_hits:
                report.redacted_locations.append("body")

        total = len(report.redacted_locations)
        if total:
            self._scrubbed_requests += 1
            self._redactions += total
            request = HttpRequest(
                method=request.method, url=url, headers=headers, body=body,
                resource_type=request.resource_type,
                initiator_chain=request.initiator_chain,
                timestamp=request.timestamp)
        return request, report

    def _crosses_party_boundary(self, host: str, site_host: str) -> bool:
        if self.psl.is_third_party(host, site_host):
            return True
        if self._cloaking is not None:
            return self._cloaking.classify(host, site_host).cloaked
        return False

    def _scrub_body(self, request: HttpRequest) -> Tuple[bytes, int]:
        content_type = (request.headers.get("Content-Type") or "").lower()
        if "urlencoded" in content_type:
            pairs, hits = self._scrub_pairs(
                decode_urlencoded(request.body))
            if hits:
                return encode_urlencoded(pairs), hits
            return request.body, 0
        text = request.body_text()
        scrubbed, hits = self._scrub_text(text)
        if hits:
            return scrubbed.encode("utf-8"), hits
        return request.body, 0
