"""Rule registry: every statan rule, grouped by family."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engine import Rule
from .concurrency import (
    BlockingUnderLockRule,
    ConditionWaitRule,
    LockOrderInversionRule,
    SharedMutableStateRule,
    ThreadLeakRule,
)
from .determinism import (
    BuiltinHashRule,
    OsEntropyRule,
    UnseededRandomRule,
    WallClockRule,
)
from .meta import UnjustifiedSuppressionRule
from .pickle_safety import (
    LocalClassRule,
    StoredLambdaRule,
    UnpicklableHandleRule,
)
from .pii_taint import PiiSinkRule

__all__ = [
    "BlockingUnderLockRule",
    "BuiltinHashRule",
    "ConditionWaitRule",
    "LocalClassRule",
    "LockOrderInversionRule",
    "OsEntropyRule",
    "PiiSinkRule",
    "SharedMutableStateRule",
    "StoredLambdaRule",
    "ThreadLeakRule",
    "UnjustifiedSuppressionRule",
    "UnpicklableHandleRule",
    "UnseededRandomRule",
    "WallClockRule",
    "default_rules",
    "rules_by_family",
    "rules_by_id",
]


def default_rules() -> List[Rule]:
    """One instance of every rule, in a stable order."""
    return [
        WallClockRule(),
        UnseededRandomRule(),
        OsEntropyRule(),
        BuiltinHashRule(),
        PiiSinkRule(),
        StoredLambdaRule(),
        LocalClassRule(),
        UnpicklableHandleRule(),
        SharedMutableStateRule(),
        LockOrderInversionRule(),
        BlockingUnderLockRule(),
        ConditionWaitRule(),
        ThreadLeakRule(),
        UnjustifiedSuppressionRule(),
    ]


def rules_by_id(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """The default rules, optionally filtered by ``select``.

    Each selector matches a rule id (``DET101``), a family name
    (``determinism``), or — for an all-uppercase alphabetic selector —
    an id prefix (``CON`` selects CON401..CON405).  Raises
    :class:`ValueError` for a selector that matches nothing.
    """
    rules = default_rules()
    if not select:
        return rules
    chosen: List[Rule] = []
    for selector in select:
        matched = [rule for rule in rules
                   if rule.id == selector or rule.family == selector
                   or (selector.isalpha() and selector.isupper()
                       and rule.id.startswith(selector))]
        if not matched:
            known = ", ".join(sorted({r.id for r in rules}
                                     | {r.family for r in rules}))
            raise ValueError("unknown rule or family %r (known: %s)"
                             % (selector, known))
        for rule in matched:
            if rule not in chosen:
                chosen.append(rule)
    return chosen


def rules_by_family() -> Dict[str, List[Rule]]:
    """{family: [rules]} over the default rule set."""
    table: Dict[str, List[Rule]] = {}
    for rule in default_rules():
        table.setdefault(rule.family, []).append(rule)
    return table
