"""Determinism rules (DET1xx).

The fingerprint contract — seed → population → fault plan →
bit-identical :meth:`~repro.crawler.CrawlDataset.fingerprint` at any
worker count — only holds if nothing on the crawl path reads
nondeterministic inputs.  These rules forbid the four ways
nondeterminism usually sneaks in, inside the fingerprint-affecting
module scope:

* **DET101** wall-clock reads (``time.time``, naive ``datetime.now``)
  — the simulated clock (:class:`repro.browser.SimClock`) is the only
  time source a crawl may observe.
* **DET102** unseeded ``random`` *module* calls — every draw must come
  from an explicitly seeded ``random.Random(seed)`` instance (the
  :mod:`repro.websim.generator` / :mod:`repro.netsim.faults` idiom).
* **DET103** OS entropy (``os.urandom``, ``uuid.uuid4``, ``secrets``,
  ``random.SystemRandom``) — unreproducible by construction.
* **DET104** builtin ``hash()`` — salted per-process by
  ``PYTHONHASHSEED`` for ``str``/``bytes``, so any fingerprint,
  shard-layout or ordering decision built on it differs across
  processes.  Use ``hashlib`` digests (the :mod:`repro.crawler.sharding`
  idiom) instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set, Tuple

from ..engine import FAMILY_DETERMINISM, Finding, ModuleContext, Rule

#: Modules the determinism contract is stated over: everything that
#: feeds a crawl, a shard layout or a dataset fingerprint.  The
#: service layer is in scope on purpose — job ids, result documents
#: and replay logs must be reproducible — with its wall-clock/socket
#: edge (drain deadlines) marked by explicit inline suppressions.
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "repro.blocklist",
    "repro.browser",
    "repro.core",
    "repro.crawler",
    "repro.dnssim",
    "repro.hashes",
    "repro.mailsim",
    "repro.netsim",
    "repro.obs",
    "repro.psl",
    "repro.service",
    "repro.websim",
)

#: ``time``-module calls that read the host clock.
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.localtime",
    "time.gmtime",
}

#: ``datetime`` constructors that read the host clock.  ``now`` is only
#: nondeterministic when called on the datetime classes — ``clock.now()``
#: on the simulated clock is fine, hence the qualified-name match.
DATETIME_CALLS = {
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Stateful module-level functions on the shared, unseeded global RNG.
UNSEEDED_RANDOM_CALLS = {
    "random." + name for name in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "betavariate", "expovariate", "gauss",
        "normalvariate", "lognormvariate", "triangular", "vonmisesvariate",
        "paretovariate", "weibullvariate", "getrandbits", "randbytes",
        "seed",
    )
}

#: OS-entropy reads: different on every call, on purpose.
OS_ENTROPY_CALLS = {
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
}
OS_ENTROPY_PREFIXES = ("secrets.",)


class _ScopedRule(Rule):
    """Shared behaviour: rules that apply only inside a module scope."""

    family = FAMILY_DETERMINISM

    def __init__(self, scope: Sequence[str] = DETERMINISM_SCOPE) -> None:
        self.scope = tuple(scope)

    def in_scope(self, ctx: ModuleContext) -> bool:
        return ctx.module_matches(self.scope)

    def calls(self, ctx: ModuleContext) -> Iterator[ast.Call]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield node


class WallClockRule(_ScopedRule):
    id = "DET101"
    name = "wall-clock-read"
    description = ("no wall-clock reads (time.time, naive datetime.now) "
                   "in fingerprint-affecting modules; use the simulated "
                   "clock (SimClock)")
    rationale = ("Any host-clock read on the crawl path makes two runs "
                 "of the same seed diverge, breaking the bit-identical "
                 "fingerprint contract the whole reproduction rests "
                 "on.")
    example_bad = "started = time.time()"
    example_good = "started = session.clock.now()"
    fix_hint = ("Thread the session's SimClock to the call site. "
                "Wall-clock is acceptable only for liveness deadlines "
                "that never feed a fingerprint — suppress with a "
                "reason saying exactly that.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for call in self.calls(ctx):
            qual = ctx.qualname(call.func)
            if qual is None:
                continue
            if qual in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, call,
                    "wall-clock read %s() breaks crawl determinism; "
                    "use the session's SimClock" % qual)
            elif qual in DATETIME_CALLS:
                if qual.endswith(".now") and _has_tz_argument(call):
                    # tz-aware now() is explicit about being wall-clock;
                    # the contract (ISSUE wording) bans the *naive* form.
                    continue
                yield self.finding(
                    ctx, call,
                    "%s() reads the host clock; crawl time must come "
                    "from the simulated clock" % qual)


def _has_tz_argument(call: ast.Call) -> bool:
    return bool(call.args) or any(kw.arg == "tz" for kw in call.keywords)


class UnseededRandomRule(_ScopedRule):
    id = "DET102"
    name = "unseeded-random"
    description = ("no module-level random.* calls (the shared global "
                   "RNG); draw from an explicit random.Random(seed)")
    rationale = ("The module-global RNG is shared, unseeded process "
                 "state: draw order depends on every other caller, so "
                 "replays differ run to run and worker count changes "
                 "the stream.")
    example_bad = "jitter = random.uniform(0, 1)"
    example_good = ("rng = random.Random(seed)\n"
                    "jitter = rng.uniform(0, 1)")
    fix_hint = ("Construct random.Random(seed) from the run seed and "
                "pass the instance down (the websim.generator idiom).")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for call in self.calls(ctx):
            qual = ctx.qualname(call.func)
            if qual in UNSEEDED_RANDOM_CALLS:
                yield self.finding(
                    ctx, call,
                    "%s() draws from the process-global RNG; use a "
                    "seeded random.Random(seed) instance so replays "
                    "are bit-identical" % qual)


class OsEntropyRule(_ScopedRule):
    id = "DET103"
    name = "os-entropy"
    description = ("no OS entropy (os.urandom, uuid.uuid4, secrets, "
                   "SystemRandom) in fingerprint-affecting modules")
    rationale = ("OS entropy differs on every call by design; an id or "
                 "token minted from it can never be reproduced from "
                 "the seed, so every downstream artifact diverges.")
    example_bad = "job_id = uuid.uuid4().hex"
    example_good = ("job_id = hashlib.sha256(\n"
                    "    ('%d:%s' % (seed, name)).encode()).hexdigest()")
    fix_hint = ("Derive identifiers deterministically: hashlib over "
                "seeded inputs (see crawler.sharding).")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for call in self.calls(ctx):
            qual = ctx.qualname(call.func)
            if qual is None:
                continue
            if qual in OS_ENTROPY_CALLS or \
                    qual.startswith(OS_ENTROPY_PREFIXES):
                yield self.finding(
                    ctx, call,
                    "%s() is unreproducible OS entropy; derive "
                    "identifiers from the seed (hashlib over seeded "
                    "inputs)" % qual)


class BuiltinHashRule(_ScopedRule):
    id = "DET104"
    name = "builtin-hash"
    description = ("builtin hash() is PYTHONHASHSEED-salted for "
                   "str/bytes; use hashlib digests for any value that "
                   "feeds a fingerprint, shard layout or ordering")
    rationale = ("hash(str) is salted per process by PYTHONHASHSEED, "
                 "so a shard layout or ordering built on it differs "
                 "across workers — the exact cross-process "
                 "nondeterminism the sharding layer exists to avoid.")
    example_bad = "shard = hash(url) % n_shards"
    example_good = ("digest = hashlib.sha256(url.encode()).digest()\n"
                    "shard = int.from_bytes(digest[:8], 'big') % n_shards")
    fix_hint = "Use a hashlib digest (the crawler.sharding idiom)."

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        if "hash" in ctx.imports and ctx.imports["hash"] != "hash":
            return  # a different 'hash' was imported over the builtin
        shadowed = _module_level_definitions(ctx.tree)
        if "hash" in shadowed:
            return
        for call in self.calls(ctx):
            func = call.func
            if isinstance(func, ast.Name) and func.id == "hash":
                yield self.finding(
                    ctx, call,
                    "builtin hash() differs across processes "
                    "(PYTHONHASHSEED); use a hashlib digest for "
                    "stable hashing (see crawler.sharding)")


def _module_level_definitions(tree: ast.Module) -> Set[str]:
    """Names defined at module level (functions, classes, assignments)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names
