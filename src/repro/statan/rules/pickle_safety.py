"""Pickle-safety rules (PKL3xx).

Everything that crosses the :mod:`repro.crawler.parallel`
multiprocessing boundary — shard jobs, crawl sessions, checkpoint
payloads, shard results — travels by pickle.  Three things break that
silently at fan-out time rather than at definition time, so we catch
them statically:

* **PKL301** lambdas stored in object state (``self.f = lambda ...``,
  class attributes, dataclass defaults) — lambdas don't pickle.
* **PKL302** classes defined inside functions — instances of local
  classes don't pickle (the class can't be re-imported by name).
* **PKL303** live handles stored in object state (``open()`` files,
  sockets, locks, pools, generators) — either unpicklable or, worse,
  picklable-but-dead in the child process.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple, Union

from ..engine import FAMILY_PICKLE, Finding, ModuleContext, Rule

#: Modules whose classes cross the multiprocessing boundary.  The
#: service layer is in scope because job specs (and the heartbeat
#: events they cause) cross the runner/worker process boundary; its
#: parent-side-only handles (conditions, locks, server state) carry
#: explicit inline suppressions.
PICKLE_SCOPE: Tuple[str, ...] = (
    "repro.core.assets",
    "repro.crawler",
    "repro.obs",
    "repro.service",
)

#: Constructors whose results must never be stored on picklable state.
HANDLE_CALLS = {
    "open": "an open file handle",
    "socket.socket": "a live socket",
    "threading.Lock": "a thread lock",
    "threading.RLock": "a thread lock",
    "threading.Condition": "a thread primitive",
    "threading.Event": "a thread primitive",
    "threading.Thread": "a thread object",
    "multiprocessing.Lock": "a process lock",
    "multiprocessing.Pool": "a process pool",
    "multiprocessing.Queue": "a process queue",
    "sqlite3.connect": "a database connection",
}


class _PickleScopedRule(Rule):
    family = FAMILY_PICKLE

    def __init__(self, scope: Sequence[str] = PICKLE_SCOPE) -> None:
        self.scope = tuple(scope)

    def in_scope(self, ctx: ModuleContext) -> bool:
        return ctx.module_matches(self.scope)


class StoredLambdaRule(_PickleScopedRule):
    id = "PKL301"
    name = "lambda-in-state"
    description = ("no lambdas in picklable state (self.x = lambda, "
                   "class attributes, dataclass defaults) in modules "
                   "crossing the multiprocessing boundary")
    rationale = ("Lambdas pickle by reference to a name they do not "
                 "have; the failure surfaces at fan-out time on a "
                 "worker, far from the definition that caused it.")
    example_bad = "self.key_fn = lambda row: row.url"
    example_good = ("def _row_key(row): return row.url\n"
                    "...\n"
                    "self.key_fn = _row_key")
    fix_hint = "Hoist the lambda to a module-level function."

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for klass in _classes(ctx.tree):
            # Class-level assignments (incl. dataclass field defaults).
            for stmt in klass.body:
                value = _assigned_value(stmt)
                if value is not None and _contains_lambda(value):
                    yield self.finding(
                        ctx, value,
                        "class %s stores a lambda in its state; "
                        "lambdas do not pickle across the "
                        "crawler.parallel worker boundary — use a "
                        "module-level function" % klass.name)
            # self.<attr> = lambda inside methods.
            for method in _methods(klass):
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    if not _assigns_to_self(stmt):
                        continue
                    if _contains_lambda(stmt.value):
                        yield self.finding(
                            ctx, stmt,
                            "%s.%s stores a lambda on self; it will "
                            "not survive pickling to a worker process"
                            % (klass.name, method.name))


class LocalClassRule(_PickleScopedRule):
    id = "PKL302"
    name = "local-class"
    description = ("no class definitions inside functions in modules "
                   "crossing the multiprocessing boundary; local "
                   "classes cannot be re-imported by pickle")
    rationale = ("pickle stores instances as (module, qualname) plus "
                 "state; a class defined inside a function cannot be "
                 "re-imported by name in the worker process, so every "
                 "instance fails to unpickle.")
    example_bad = ("def make_job():\n"
                   "    class Job: ...\n"
                   "    return Job()")
    example_good = ("class Job: ...\n"
                    "\n"
                    "def make_job():\n"
                    "    return Job()")
    fix_hint = "Move the class to module level."

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.ClassDef):
                    yield self.finding(
                        ctx, inner,
                        "class %s is defined inside %s(); instances "
                        "of local classes cannot cross the "
                        "multiprocessing boundary — define it at "
                        "module level" % (inner.name, node.name))


class UnpicklableHandleRule(_PickleScopedRule):
    id = "PKL303"
    name = "handle-in-state"
    description = ("no live handles (open files, sockets, locks, "
                   "pools, generators) in picklable state in modules "
                   "crossing the multiprocessing boundary")
    rationale = ("A file handle or lock stored on self either refuses "
                 "to pickle or — worse — pickles and arrives dead in "
                 "the child, failing only when first used.")
    example_bad = "self.log = open(path, 'a')"
    example_good = ("self.log_path = path\n"
                    "# open(self.log_path) lazily, in the process "
                    "that writes")
    fix_hint = ("Store the path/config instead of the handle and open "
                "lazily in the worker; for parent-side-only handles, "
                "suppress with a reason saying the object never "
                "crosses the boundary.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for klass in _classes(ctx.tree):
            for method in _methods(klass):
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    if not _assigns_to_self(stmt):
                        continue
                    label = self._handle_label(ctx, stmt.value)
                    if label is not None:
                        yield self.finding(
                            ctx, stmt,
                            "%s.%s stores %s on self; it cannot "
                            "cross the crawler.parallel pickle "
                            "boundary — open it lazily in the worker"
                            % (klass.name, method.name, label))

    def _handle_label(self, ctx: ModuleContext,
                      value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if not isinstance(value, ast.Call):
            return None
        qual = ctx.qualname(value.func)
        if qual is None:
            return None
        return HANDLE_CALLS.get(qual)


# ---------------------------------------------------------------------------
# Shared AST helpers.
# ---------------------------------------------------------------------------

def _classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def _methods(klass: ast.ClassDef,
             ) -> Iterator[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    for stmt in klass.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _assigned_value(stmt: ast.stmt) -> Optional[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return stmt.value
    if isinstance(stmt, ast.AnnAssign):
        return stmt.value
    return None


def _assigns_to_self(stmt: ast.Assign) -> bool:
    for target in stmt.targets:
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            return True
    return False


def _contains_lambda(value: ast.expr) -> bool:
    """Is there a lambda anywhere in ``value`` (incl. field defaults)?

    ``field(default_factory=lambda: [])`` is *allowed* — the factory
    runs at construction time and is not part of instance state — so
    lambdas inside a ``field(default_factory=...)`` keyword are skipped.
    """
    if isinstance(value, ast.Call):
        qual_tail = value.func.attr if isinstance(value.func, ast.Attribute) \
            else (value.func.id if isinstance(value.func, ast.Name) else "")
        if qual_tail == "field":
            positional = value.args
        else:
            positional = list(value.args) + \
                [kw.value for kw in value.keywords]
        for arg in positional:
            if _contains_lambda(arg):
                return True
        return False
    for node in ast.walk(value):
        if isinstance(node, ast.Lambda):
            return True
    return False
