"""PII-taint rules (PII2xx).

The paper's subject — PII escaping to unintended sinks — has a
meta-instance in any reproduction: the operator's persona is real-shaped
PII, and the leaked-token payloads the detector recovers *are* that PII.
Neither may reach an output sink (``print``, ``logging``, file writes,
exception messages) as raw text; they must pass through
:mod:`repro.reporting.redact` first (or the call site must opt out with
a justified suppression — ``statan: ignore`` of PII201 with a
``-- reason``, e.g. behind a ``--show-pii`` flag).

The analysis is the dataflow in :mod:`repro.statan.taint`: sources are
configured attribute reads (``persona.email``, ``origin.surface_form``,
...), taint propagates through assignments and every common
string-building shape, and the ``redact*`` helpers sanitize.  Since the
project call graph landed, the rule is interprocedural one call deep:
each project-local function gets a cached
:class:`~repro.statan.taint.FunctionSummary`, so ``log_email(
persona.email)`` fires even when the ``print`` lives inside
``log_email``, and ``print(fetch_email(persona))`` fires when the
callee returns a source.  Summaries are memoized per qualname, keeping
the gate O(files).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..callgraph import FunctionInfo, ProjectIndex
from ..engine import FAMILY_PII_TAINT, Finding, ModuleContext, Rule
from ..taint import (FunctionSummary, Resolver, SinkTable, TaintAnalysis,
                     TaintConfig, summarize_function)

#: Modules exempt from the PII rules: the redaction helpers themselves
#: (they must touch raw PII to mask it) and statan's own fixtures.
PII_EXEMPT_MODULES: Tuple[str, ...] = (
    "repro.reporting.redact",
    "repro.statan",
)


class PiiSinkRule(Rule):
    id = "PII201"
    name = "pii-reaches-sink"
    family = FAMILY_PII_TAINT
    description = ("persona PII / leak payloads must not reach print, "
                   "logging, file writes or exception messages except "
                   "through repro.reporting.redact")
    rationale = ("The reproduction's own logs and error output are a "
                 "leak surface: a persona email in a traceback or a "
                 "progress line is exactly the PII exposure the paper "
                 "studies, happening in our tooling. The rule follows "
                 "taint one project-local call deep, so wrapping the "
                 "print in a helper does not hide it.")
    example_bad = (
        "def log_email(addr):\n"
        "    print(addr)\n"
        "\n"
        "log_email(persona.email)")
    example_good = (
        "from repro.reporting.redact import redact_email\n"
        "\n"
        "def log_email(addr):\n"
        "    print(addr)\n"
        "\n"
        "log_email(redact_email(persona.email))")
    fix_hint = ("Route the value through a repro.reporting.redact helper "
                "before the sink; if raw output is the point (an "
                "explicit --show-pii path), suppress with a reason "
                "saying so.")

    def __init__(self, config: Optional[TaintConfig] = None,
                 exempt: Sequence[str] = PII_EXEMPT_MODULES,
                 raise_is_sink: bool = True) -> None:
        self.analysis = TaintAnalysis(config)
        self.config = config
        self.exempt = tuple(exempt)
        self.sinks = SinkTable(raise_is_sink=raise_is_sink)
        self._project: Optional[ProjectIndex] = None
        self._summaries: Dict[str, Optional[FunctionSummary]] = {}

    def prepare(self, project: object) -> None:
        self._project = project if isinstance(project, ProjectIndex) \
            else None
        self._summaries = {}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module_matches(self.exempt):
            return
        for scope_name, class_name, body in self.analysis.scopes(ctx.tree):
            resolver = self._make_resolver(ctx, class_name)
            for hit in self.analysis.sink_hits(body, self.sinks,
                                               resolver=resolver):
                yield self.finding(
                    ctx, hit.node,
                    "PII from %s reaches %s in %s without redaction; "
                    "route it through repro.reporting.redact"
                    % (hit.source, hit.sink,
                       "module scope" if scope_name == "<module>"
                       else "%s()" % scope_name))

    # -- interprocedural plumbing ---------------------------------------

    def _make_resolver(self, ctx: ModuleContext,
                       class_name: Optional[str]) -> Optional[Resolver]:
        """Call -> callee summary, via the project index (confident
        resolution only — never the fuzzy unique-name fallback; a wrong
        taint edge is a hard-to-triage false positive)."""
        project = self._project
        if project is None:
            return None

        def resolve(call: ast.Call) -> Optional[FunctionSummary]:
            info = project.resolve_call(ctx, call, class_name)
            if info is None:
                return None
            return self._summary(info)

        return resolve

    def _summary(self, info: FunctionInfo) -> Optional[FunctionSummary]:
        if info.qualname in self._summaries:
            return self._summaries[info.qualname]
        summary: Optional[FunctionSummary] = None
        # Exempt modules (the redact helpers) must not contribute
        # summaries — their whole point is to touch raw PII.
        if not info.ctx.module_matches(self.exempt) and \
                isinstance(info.node, ast.FunctionDef):
            summary = summarize_function(info.node, self.sinks,
                                         self.config)
        self._summaries[info.qualname] = summary
        return summary
