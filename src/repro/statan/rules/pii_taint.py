"""PII-taint rules (PII2xx).

The paper's subject — PII escaping to unintended sinks — has a
meta-instance in any reproduction: the operator's persona is real-shaped
PII, and the leaked-token payloads the detector recovers *are* that PII.
Neither may reach an output sink (``print``, ``logging``, file writes,
exception messages) as raw text; they must pass through
:mod:`repro.reporting.redact` first (or the call site must opt out with
an explicit ``# statan: ignore[PII201]`` — e.g. behind a ``--show-pii``
flag).

The analysis is the intraprocedural dataflow in
:mod:`repro.statan.taint`: sources are configured attribute reads
(``persona.email``, ``origin.surface_form``, ...), taint propagates
through assignments and every common string-building shape, and the
``redact*`` helpers sanitize.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from ..engine import FAMILY_PII_TAINT, Finding, ModuleContext, Rule
from ..taint import SinkTable, TaintAnalysis, TaintConfig

#: Modules exempt from the PII rules: the redaction helpers themselves
#: (they must touch raw PII to mask it) and statan's own fixtures.
PII_EXEMPT_MODULES: Tuple[str, ...] = (
    "repro.reporting.redact",
    "repro.statan",
)


class PiiSinkRule(Rule):
    id = "PII201"
    name = "pii-reaches-sink"
    family = FAMILY_PII_TAINT
    description = ("persona PII / leak payloads must not reach print, "
                   "logging, file writes or exception messages except "
                   "through repro.reporting.redact")

    def __init__(self, config: Optional[TaintConfig] = None,
                 exempt: Sequence[str] = PII_EXEMPT_MODULES,
                 raise_is_sink: bool = True) -> None:
        self.analysis = TaintAnalysis(config)
        self.exempt = tuple(exempt)
        self.sinks = SinkTable(raise_is_sink=raise_is_sink)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module_matches(self.exempt):
            return
        for scope_name, body in self.analysis.function_bodies(ctx.tree):
            for hit in self.analysis.sink_hits(body, self.sinks):
                yield self.finding(
                    ctx, hit.node,
                    "PII from %s reaches %s in %s without redaction; "
                    "route it through repro.reporting.redact"
                    % (hit.source, hit.sink,
                       "module scope" if scope_name == "<module>"
                       else "%s()" % scope_name))
