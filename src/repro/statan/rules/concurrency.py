"""Concurrency-safety rules (CON4xx).

PRs 6–7 made the reproduction genuinely concurrent — the threaded
study service (:mod:`repro.service`: runner pool, SSE condition
variables, store locks) and the process supervisor
(:mod:`repro.crawler.supervisor`: watchdog threads, per-worker
queues).  The bug classes that break a served fingerprint are exactly
the ones a test suite is worst at catching (they need the race to
happen), so the gate catches them statically:

* **CON401** shared-mutable-state — an attribute that is accessed
  under a lock in one method but *written* without it in another.
* **CON402** lock-order inversion — a per-class lock-acquisition
  graph built from ``with self._lock:`` nests across methods (one
  level of ``self.method()`` calls included); any cycle is a
  potential deadlock.
* **CON403** blocking-under-lock — a call made while holding a lock
  that directly or transitively (through the project call graph)
  reaches a blocking sink: ``Study.crawl``, ``subprocess``,
  ``queue.get()`` with no timeout, ``socket``, ``time.sleep``.
* **CON404** condition-wait-without-predicate-loop —
  ``Condition.wait`` outside a ``while`` re-check (spurious wakeups
  are allowed by the spec; ``wait_for`` is the safe form).
* **CON405** thread leak — a ``threading.Thread`` that is neither
  ``daemon=True`` nor ever joined outlives shutdown and can write to
  torn-down state.

The lock model is deliberately syntactic: a lock is an instance
attribute assigned ``threading.Lock()``/``RLock()``/``Condition()``/
``Semaphore()`` in the class (or whose name says lock/mutex/cond),
and acquisition is the ``with self._lock:`` statement — the only
idiom this repo uses.  ``acquire()``/``release()`` pairs are out of
scope on purpose; they should not pass review anyway.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..callgraph import FunctionInfo, ProjectIndex
from ..engine import FAMILY_CONCURRENCY, Finding, ModuleContext, Rule

#: Modules the concurrency contract is stated over: every package that
#: creates threads or locks (the service layer, the crawl supervisor,
#: the observability writers they share).
CONCURRENCY_SCOPE: Tuple[str, ...] = (
    "repro.service",
    "repro.crawler",
    "repro.obs",
)

#: threading constructors whose instance attributes count as locks.
_LOCK_CONSTRUCTORS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
}
_CONDITION_CONSTRUCTORS = {"threading.Condition"}

#: Attribute-name substrings that mark a lock even without seeing the
#: constructor (the attribute may be assigned in a helper).
_LOCKISH_MARKERS = ("lock", "mutex", "cond")

#: Methods whose writes are construction, not racing: the object is
#: not yet shared.
_INIT_METHODS = {"__init__", "__post_init__", "__new__"}

#: Dotted-callee prefixes that block the calling thread.
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.",
                      "urllib.request.")
#: Exact dotted callees that block.
_BLOCKING_CALLS = {"time.sleep", "socket.create_connection"}
#: Method names that block regardless of receiver (the repo's own
#: long-running entry points plus the stdlib's usual suspects).
_BLOCKING_ATTRS = {"crawl", "run_shard_job", "serve_forever",
                   "communicate", "check_output", "accept", "recv",
                   "urlopen"}
#: Receiver-name substrings for which ``.join()`` means "wait for a
#: thread/process", not ``str.join``.
_JOINABLE_MARKERS = ("thread", "proc", "worker")

#: Transitive reachability depth for CON403 (call-graph hops).
_MAX_CALL_DEPTH = 4


def _lockish_name(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _LOCKISH_MARKERS)


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted rendering of a receiver chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# Per-class lock model.
# ---------------------------------------------------------------------------

@dataclass
class _AttrAccess:
    method: str
    node: ast.Attribute
    attr: str
    held: Tuple[str, ...]
    is_write: bool


@dataclass
class _HeldCall:
    method: str
    node: ast.Call
    held: Tuple[str, ...]


@dataclass
class _WaitCall:
    method: str
    node: ast.Call
    lock: str
    in_while: bool


@dataclass
class _ClassModel:
    """Everything the CON rules need to know about one class."""

    name: str
    node: ast.ClassDef
    lock_attrs: Set[str] = field(default_factory=set)
    cond_attrs: Set[str] = field(default_factory=set)
    accesses: List[_AttrAccess] = field(default_factory=list)
    #: (held lock, acquired lock) -> first AST node creating the edge.
    edges: Dict[Tuple[str, str], ast.AST] = field(default_factory=dict)
    held_calls: List[_HeldCall] = field(default_factory=list)
    waits: List[_WaitCall] = field(default_factory=list)
    #: method name -> locks it acquires anywhere in its body.
    method_acquires: Dict[str, Set[str]] = field(default_factory=dict)

    def guards_of(self, attr: str) -> Set[str]:
        """Locks under which ``attr`` is accessed somewhere."""
        return {lock for access in self.accesses
                if access.attr == attr for lock in access.held}


def _class_models(ctx: ModuleContext) -> List[_ClassModel]:
    """Build the lock model for every top-level class in ``ctx``."""
    models: List[_ClassModel] = []
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.ClassDef):
            models.append(_build_model(ctx, stmt))
    return models


def _build_model(ctx: ModuleContext, node: ast.ClassDef) -> _ClassModel:
    model = _ClassModel(name=node.name, node=node)
    methods = [member for member in node.body
               if isinstance(member, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]
    # Pass 1: which attributes are locks / conditions, and which locks
    # each method acquires (needed for one-level call edges).
    for method in methods:
        for child in ast.walk(method):
            if isinstance(child, ast.Assign) and \
                    isinstance(child.value, ast.Call):
                qual = ctx.qualname(child.value.func)
                if qual in _LOCK_CONSTRUCTORS:
                    for target in child.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            model.lock_attrs.add(attr)
                            if qual in _CONDITION_CONSTRUCTORS:
                                model.cond_attrs.add(attr)
    for method in methods:
        acquires: Set[str] = set()
        for child in ast.walk(method):
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    lock = _acquired_lock(model, item.context_expr)
                    if lock is not None:
                        acquires.add(lock)
        model.method_acquires[method.name] = acquires
    # Pass 2: the held-lock walk.
    for method in methods:
        walker = _MethodWalker(ctx, model, method.name)
        walker.walk_body(method.body, (), 0)
    return model


def _acquired_lock(model: _ClassModel, expr: ast.expr) -> Optional[str]:
    """The lock attr a ``with`` item acquires, or None."""
    attr = _self_attr(expr)
    if attr is None:
        return None
    if attr in model.lock_attrs or _lockish_name(attr):
        return attr
    return None


class _MethodWalker:
    """Recursive walk of one method body tracking held locks and
    ``while`` nesting; records accesses, lock-order edges, held calls
    and condition waits into the class model."""

    def __init__(self, ctx: ModuleContext, model: _ClassModel,
                 method: str) -> None:
        self.ctx = ctx
        self.model = model
        self.method = method

    def walk_body(self, body: Sequence[ast.stmt], held: Tuple[str, ...],
                  while_depth: int) -> None:
        for stmt in body:
            self.walk(stmt, held, while_depth)

    def walk(self, node: ast.AST, held: Tuple[str, ...],
             while_depth: int) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested scopes run on their own thread's schedule
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                self.walk(item.context_expr, held, while_depth)
                lock = _acquired_lock(self.model, item.context_expr)
                if lock is not None:
                    for outer in held + tuple(acquired):
                        if outer != lock:
                            self.model.edges.setdefault((outer, lock),
                                                        node)
                    acquired.append(lock)
            self.walk_body(node.body, held + tuple(acquired), while_depth)
            return
        if isinstance(node, ast.While):
            self.walk(node.test, held, while_depth + 1)
            self.walk_body(node.body, held, while_depth + 1)
            self.walk_body(node.orelse, held, while_depth)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, held, while_depth)
            for child in ast.iter_child_nodes(node):
                self.walk(child, held, while_depth)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                self.model.accesses.append(_AttrAccess(
                    method=self.method, node=node, attr=attr, held=held,
                    is_write=isinstance(node.ctx, (ast.Store, ast.Del))))
            self.walk(node.value, held, while_depth)
            return
        for child in ast.iter_child_nodes(node):
            self.walk(child, held, while_depth)

    def _record_call(self, call: ast.Call, held: Tuple[str, ...],
                     while_depth: int) -> None:
        func = call.func
        receiver_attr = None
        if isinstance(func, ast.Attribute):
            receiver_attr = _self_attr(func.value)
        # Condition waits (CON404), wherever they happen.
        if isinstance(func, ast.Attribute) and func.attr == "wait" and \
                receiver_attr is not None and \
                (receiver_attr in self.model.cond_attrs
                 or "cond" in receiver_attr.lower()):
            self.model.waits.append(_WaitCall(
                method=self.method, node=call, lock=receiver_attr,
                in_while=while_depth > 0))
        if not held:
            return
        # Calls *on* a held lock (wait/notify/release) are the point of
        # holding it, not blocking-under-lock.
        if receiver_attr is not None and receiver_attr in held:
            return
        # One-level lock-order edges through self.method() calls.
        if isinstance(func, ast.Attribute) and receiver_attr is None and \
                isinstance(func.value, ast.Name) and \
                func.value.id == "self":
            inner = self.model.method_acquires.get(func.attr, set())
            for lock in inner:
                for outer in held:
                    if outer != lock:
                        self.model.edges.setdefault((outer, lock), call)
        self.model.held_calls.append(_HeldCall(
            method=self.method, node=call, held=held))


# ---------------------------------------------------------------------------
# The rules.
# ---------------------------------------------------------------------------

class _ConcurrencyRule(Rule):
    """Shared behaviour for the CON rules."""

    family = FAMILY_CONCURRENCY

    def __init__(self, scope: Sequence[str] = CONCURRENCY_SCOPE) -> None:
        self.scope = tuple(scope)

    def in_scope(self, ctx: ModuleContext) -> bool:
        return ctx.module_matches(self.scope)


class SharedMutableStateRule(_ConcurrencyRule):
    id = "CON401"
    name = "unlocked-shared-write"
    description = ("an attribute accessed under a lock in one method "
                   "must not be written without that lock in another "
                   "(constructor writes exempt)")
    rationale = ("If submit() reads self._accepting under _submit_lock, "
                 "a bare write from another thread races it: the read "
                 "can see a torn/reordered view and the lock protects "
                 "nothing. One unlocked writer invalidates every "
                 "locked reader.")
    example_bad = (
        "def submit(self):\n"
        "    with self._lock:\n"
        "        if self._accepting: ...\n"
        "\n"
        "def shutdown(self):\n"
        "    self._accepting = False   # no lock")
    example_good = (
        "def shutdown(self):\n"
        "    with self._lock:\n"
        "        self._accepting = False")
    fix_hint = ("Take the same lock around the write. If the write is "
                "deliberately lock-free (e.g. a signal handler that "
                "must not block), suppress with a reason explaining "
                "the happens-before argument.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for model in _class_models(ctx):
            for access in model.accesses:
                if not access.is_write or access.held:
                    continue
                if access.method in _INIT_METHODS:
                    continue
                if access.attr in model.lock_attrs:
                    continue
                guards = model.guards_of(access.attr)
                if not guards:
                    continue
                yield self.finding(
                    ctx, access.node,
                    "%s.%s is accessed under self.%s elsewhere but "
                    "written in %s() without it; take the lock (or "
                    "justify the lock-free write)"
                    % (model.name, access.attr, sorted(guards)[0],
                       access.method))


class LockOrderInversionRule(_ConcurrencyRule):
    id = "CON402"
    name = "lock-order-inversion"
    description = ("per-class lock acquisition order must be acyclic "
                   "across methods (one level of self.method() calls "
                   "included)")
    rationale = ("Thread A holding lock1 waiting for lock2 while "
                 "thread B holds lock2 waiting for lock1 deadlocks "
                 "both forever; the service then hangs its HTTP "
                 "workers with no traceback. Cycles in the static "
                 "acquisition graph are the precondition.")
    example_bad = (
        "def transfer(self):\n"
        "    with self._a:\n"
        "        with self._b: ...\n"
        "\n"
        "def audit(self):\n"
        "    with self._b:\n"
        "        with self._a: ...")
    example_good = (
        "def audit(self):\n"
        "    with self._a:          # canonical order: _a before _b\n"
        "        with self._b: ...")
    fix_hint = ("Pick one canonical acquisition order per class, "
                "document it (docs/SERVICE.md does for the service), "
                "and restructure the out-of-order method.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for model in _class_models(ctx):
            adjacency: Dict[str, Set[str]] = {}
            for (outer, inner) in model.edges:
                adjacency.setdefault(outer, set()).add(inner)
            seen_pairs: Set[frozenset] = set()
            ordered = sorted(model.edges.items(),
                             key=lambda kv: (kv[1].lineno,
                                             kv[1].col_offset))
            for (outer, inner), node in ordered:
                if not _reachable(adjacency, inner, outer):
                    continue
                pair = frozenset((outer, inner))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                yield self.finding(
                    ctx, node,
                    "lock-order inversion in %s: self.%s is acquired "
                    "while holding self.%s here, but the reverse "
                    "order exists elsewhere in the class — a "
                    "deadlock window" % (model.name, inner, outer))


def _reachable(adjacency: Dict[str, Set[str]], start: str,
               goal: str) -> bool:
    stack, visited = [start], set()
    while stack:
        current = stack.pop()
        if current == goal:
            return True
        if current in visited:
            continue
        visited.add(current)
        stack.extend(adjacency.get(current, ()))
    return False


class BlockingUnderLockRule(_ConcurrencyRule):
    id = "CON403"
    name = "blocking-under-lock"
    description = ("no call that (transitively) reaches a blocking "
                   "sink — Study.crawl, subprocess, socket, "
                   "queue.get() without timeout, time.sleep — while a "
                   "lock is held")
    rationale = ("A crawl under the submit lock serializes every "
                 "other request behind minutes of work and starves "
                 "the SSE heartbeat; the block is invisible at the "
                 "call site because it hides one or two calls down. "
                 "The rule follows the project call graph to find it.")
    example_bad = (
        "def submit(self, spec):\n"
        "    with self._submit_lock:\n"
        "        return self._run(spec)    # _run -> study.crawl()")
    example_good = (
        "def submit(self, spec):\n"
        "    with self._submit_lock:\n"
        "        job = self._enqueue(spec)  # bookkeeping only\n"
        "    return self._run(job)          # heavy work outside")
    fix_hint = ("Move the blocking work outside the with-block: take "
                "the lock only to mutate bookkeeping, then do the "
                "slow call lock-free (snapshot what it needs first).")

    def __init__(self, scope: Sequence[str] = CONCURRENCY_SCOPE) -> None:
        super().__init__(scope)
        self._project: Optional[ProjectIndex] = None
        self._cache: Dict[str, Optional[str]] = {}

    def prepare(self, project: object) -> None:
        self._project = project if isinstance(project, ProjectIndex) \
            else None
        self._cache = {}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for model in _class_models(ctx):
            for held in model.held_calls:
                reason = self._blocking_reason(held.node, ctx,
                                               model.name, 0, set())
                if reason is None:
                    continue
                yield self.finding(
                    ctx, held.node,
                    "%s() calls %s while holding self.%s — move the "
                    "blocking work outside the lock"
                    % (held.method, reason, held.held[-1]))

    # -- reachability -----------------------------------------------------

    def _blocking_reason(self, call: ast.Call, ctx: ModuleContext,
                         class_name: Optional[str], depth: int,
                         visited: Set[str]) -> Optional[str]:
        direct = _direct_blocking(call, ctx)
        if direct is not None:
            return direct
        if self._project is None or depth >= _MAX_CALL_DEPTH:
            return None
        info = self._project.resolve_call(ctx, call, class_name) \
            or self._project.resolve_fuzzy(call)
        if info is None:
            return None
        return self._callee_blocking(info, depth, visited)

    def _callee_blocking(self, info: FunctionInfo, depth: int,
                         visited: Set[str]) -> Optional[str]:
        if info.qualname in self._cache:
            return self._cache[info.qualname]
        if info.qualname in visited:
            return None
        visited.add(info.qualname)
        result: Optional[str] = None
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            inner = self._blocking_reason(node, info.ctx,
                                          info.class_name, depth + 1,
                                          visited)
            if inner is not None:
                result = "%s (via %s)" % (inner.split(" (via ")[0],
                                          info.qualname)
                break
        self._cache[info.qualname] = result
        return result


def _direct_blocking(call: ast.Call, ctx: ModuleContext,
                     ) -> Optional[str]:
    """Why ``call`` blocks the calling thread directly, or None."""
    qual = ctx.qualname(call.func)
    if qual is not None:
        if qual in _BLOCKING_CALLS:
            return "%s()" % qual
        for prefix in _BLOCKING_PREFIXES:
            if qual.startswith(prefix):
                return "%s()" % qual
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _dotted(func.value)
    lowered = receiver.lower()
    if func.attr in _BLOCKING_ATTRS:
        return "%s.%s()" % (receiver, func.attr)
    if func.attr == "get" and "queue" in lowered and \
            _get_blocks_forever(call):
        return "%s.get() with no timeout" % receiver
    if func.attr == "join" and \
            any(marker in lowered for marker in _JOINABLE_MARKERS):
        return "%s.join()" % receiver
    return None


def _get_blocks_forever(call: ast.Call) -> bool:
    """``q.get()`` bare, or with ``timeout=None`` — blocks forever."""
    if call.args:
        return False
    for keyword in call.keywords:
        if keyword.arg == "timeout":
            return isinstance(keyword.value, ast.Constant) and \
                keyword.value.value is None
        if keyword.arg == "block":
            return False
    return True


class ConditionWaitRule(_ConcurrencyRule):
    id = "CON404"
    name = "wait-without-predicate-loop"
    description = ("Condition.wait must sit in a while loop re-checking "
                   "its predicate (or use Condition.wait_for); spurious "
                   "wakeups and timeouts return without the predicate "
                   "holding")
    rationale = ("threading.Condition.wait may return spuriously and "
                 "returns on timeout whether or not the predicate "
                 "holds; a bare if-then-wait then acts on state that "
                 "is not there — the SSE stream's 'event ready' is "
                 "the live example.")
    example_bad = (
        "with self._cond:\n"
        "    if not self._events:\n"
        "        self._cond.wait(timeout)\n"
        "    return self._events[-1]")
    example_good = (
        "with self._cond:\n"
        "    self._cond.wait_for(lambda: self._events, timeout)\n"
        "    ...")
    fix_hint = ("Prefer Condition.wait_for(predicate, timeout); "
                "otherwise wrap the wait in `while not predicate:`.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for model in _class_models(ctx):
            for wait in model.waits:
                if wait.in_while:
                    continue
                yield self.finding(
                    ctx, wait.node,
                    "self.%s.wait() in %s() is not inside a "
                    "predicate-re-checking while loop; use "
                    "wait_for(predicate, timeout) or loop"
                    % (wait.lock, wait.method))


class ThreadLeakRule(_ConcurrencyRule):
    id = "CON405"
    name = "thread-leak"
    description = ("every threading.Thread must be daemon=True or "
                   "joined somewhere in its owning scope; anything "
                   "else outlives shutdown")
    rationale = ("A non-daemon, never-joined thread keeps the process "
                 "alive after main() returns and keeps writing to "
                 "stores that shutdown already closed — the chaos "
                 "harness flags exactly this as a hung crawl.")
    example_bad = (
        "t = threading.Thread(target=worker)\n"
        "t.start()")
    example_good = (
        "t = threading.Thread(target=worker, daemon=True)\n"
        "t.start()\n"
        "# or keep it non-daemon and t.join() on the shutdown path")
    fix_hint = ("Pass daemon=True for fire-and-forget helpers; for "
                "threads whose completion matters, keep a handle and "
                "join it on the shutdown path.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        parents = _parent_map(ctx.tree)
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            if ctx.qualname(call.func) != "threading.Thread":
                continue
            if _has_daemon_true(call):
                continue
            target = _assignment_target(call, parents)
            if target is None:
                yield self.finding(
                    ctx, call,
                    "threading.Thread is neither daemon=True nor "
                    "bound to a name that could be joined; it leaks "
                    "past shutdown")
                continue
            scope = _join_search_scope(call, target, parents)
            if scope is not None and _is_joined_or_daemonized(scope,
                                                             target):
                continue
            yield self.finding(
                ctx, call,
                "thread %r is neither daemon=True nor joined in its "
                "owning scope; join it on the shutdown path or make "
                "it a daemon" % target)


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _has_daemon_true(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "daemon":
            return isinstance(keyword.value, ast.Constant) and \
                bool(keyword.value.value)
    return False


def _assignment_target(call: ast.Call, parents: Dict[ast.AST, ast.AST],
                       ) -> Optional[str]:
    """``t`` for ``t = Thread(...)``, ``self._t`` for the attr form;
    None when the Thread object is never bound to a joinable name."""
    parent = parents.get(call)
    targets: List[ast.expr] = []
    if isinstance(parent, ast.Assign):
        targets = list(parent.targets)
    elif isinstance(parent, ast.AnnAssign) and parent.value is call:
        targets = [parent.target]
    for target in targets:
        if isinstance(target, ast.Name):
            return target.id
        attr = _self_attr(target)
        if attr is not None:
            return "self." + attr
    return None


def _join_search_scope(call: ast.Call, target: str,
                       parents: Dict[ast.AST, ast.AST],
                       ) -> Optional[ast.AST]:
    """Where a join of ``target`` would live: the enclosing class for
    ``self.X`` handles, else the enclosing function, else the module."""
    want_class = target.startswith("self.")
    node: Optional[ast.AST] = call
    enclosing_function: Optional[ast.AST] = None
    while node is not None:
        if isinstance(node, ast.ClassDef) and want_class:
            return node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and enclosing_function is None:
            enclosing_function = node
        if isinstance(node, ast.Module):
            if want_class:
                return node
            return enclosing_function or node
        node = parents.get(node)
    return enclosing_function


def _is_joined_or_daemonized(scope: ast.AST, target: str) -> bool:
    """Does ``scope`` contain ``target.join(...)`` or
    ``target.daemon = True``?"""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "join" and \
                _dotted(node.func.value) == target:
            return True
        if isinstance(node, ast.Assign):
            for assigned in node.targets:
                if isinstance(assigned, ast.Attribute) and \
                        assigned.attr == "daemon" and \
                        _dotted(assigned) == target + ".daemon" and \
                        isinstance(node.value, ast.Constant) and \
                        bool(node.value.value):
                    return True
    return False
