"""Suppression-hygiene rules (STA0xx) — statan policing itself.

A suppression comment is a claim that a rule is wrong *here*; the
claim is only auditable if it says why.  STA001 makes the
justification mandatory: every ``statan: ignore`` must carry a
``-- reason`` tail, and the reason is what a reviewer (or the next
session) reads instead of re-deriving the argument.  The rule is
deliberately not suppressible — an unjustified suppression of the
unjustified-suppression rule would be the obvious dodge.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..engine import FAMILY_HYGIENE, Finding, ModuleContext, Rule

#: statan itself is exempt: its docstrings and rule definitions must be
#: able to spell the suppression syntax out (the line-based scanner
#: cannot tell prose from a live comment).
STA_EXEMPT_MODULES: Tuple[str, ...] = ("repro.statan",)


class UnjustifiedSuppressionRule(Rule):
    id = "STA001"
    name = "unjustified-suppression"
    family = FAMILY_HYGIENE
    description = ("every `statan: ignore` comment must justify itself "
                   "with `-- reason`; a bare suppression is a finding")
    rationale = ("A bare suppression silences a rule forever with no "
                 "record of the argument; six months later nobody can "
                 "tell a considered exception from a drive-by mute. "
                 "The reason line is the audit trail.")
    example_bad = "t = time.time()  # statan: ignore[DET101]"
    example_good = ("t = time.time()  # statan: ignore[DET101] -- "
                    "liveness deadline only, never fingerprinted")
    fix_hint = ("Append `-- <why this rule is wrong here>` to the "
                "comment, or delete the suppression and fix the "
                "underlying finding.")
    suppressible = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module_matches(STA_EXEMPT_MODULES):
            return
        for entry in ctx.suppressions():
            if entry.justified:
                continue
            rules = "all rules" if entry.rules is None \
                else ", ".join(sorted(entry.rules))
            location = ast.Constant(value=None)
            location.lineno = entry.line
            location.col_offset = entry.col
            yield self.finding(
                ctx, location,
                "suppression of %s has no justification; write "
                "`# statan: ignore[...] -- reason`" % rules)
