"""The rule engine: parse once, run every rule, honour suppressions.

A :class:`ModuleContext` is one parsed Python file — source, AST, a
best-effort dotted module name, the import alias table and the inline
suppression table.  A :class:`Rule` inspects a context and yields
:class:`Finding` records; :func:`analyze_paths` drives the whole thing
over a file tree and returns an :class:`AnalysisReport`.

Analysis is two-phase: every file is parsed first, a project-wide
:class:`~repro.statan.callgraph.ProjectIndex` is built over the parsed
contexts, each rule gets it via :meth:`Rule.prepare`, and only then do
the per-file checks run — so interprocedural rules (the CON4xx family,
interprocedural PII taint) see the whole tree while staying O(files).

Suppression syntax (scoped to the physical line of the finding; the
``-- reason`` justification is mandatory — a bare suppression is
itself a finding, STA001)::

    t = time.time()   # statan: ignore[DET101] -- liveness deadline only
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Rule families (every rule declares one).
FAMILY_DETERMINISM = "determinism"
FAMILY_PII_TAINT = "pii-taint"
FAMILY_PICKLE = "pickle-safety"
FAMILY_CONCURRENCY = "concurrency"
FAMILY_HYGIENE = "suppression-hygiene"

FAMILIES = (FAMILY_DETERMINISM, FAMILY_PII_TAINT, FAMILY_PICKLE,
            FAMILY_CONCURRENCY, FAMILY_HYGIENE)

_SUPPRESS_RE = re.compile(
    r"#\s*statan:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
    r"(?:\s*--\s*(?P<reason>.*\S))?")


@dataclass(frozen=True)
class Suppression:
    """One inline ``# statan: ignore`` comment.

    ``rules`` is ``None`` for the bare (any-rule) form; ``reason`` is
    the text after ``--`` ("" when the author gave none — which STA001
    reports as a finding of its own).
    """

    line: int                    # 1-based physical line
    col: int                     # 0-based offset of the comment
    rules: Optional[Set[str]]    # None = every rule
    reason: str

    @property
    def justified(self) -> bool:
        return bool(self.reason)

    def covers(self, rule_id: str) -> bool:
        return self.rules is None or rule_id in self.rules


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str       # rule id, e.g. "DET101"
    family: str     # rule family, e.g. "determinism"
    path: str       # file path as analyzed (posix separators)
    line: int       # 1-based
    col: int        # 0-based, as reported by ast
    message: str
    snippet: str = ""   # the stripped physical source line

    @property
    def baseline_key(self) -> str:
        """Line-number-independent identity used for baseline matching.

        Deliberately excludes ``line``/``col`` so that unrelated edits
        moving a baselined finding up or down the file do not resurface
        it as "new".
        """
        return "%s::%s::%s" % (self.rule, self.path, self.snippet)

    def format(self) -> str:
        """``path:line:col: RULE message`` (the human output line)."""
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col,
                                    self.rule, self.message)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


class ModuleContext:
    """One parsed source file, shared by every rule.

    Parsing, import resolution and suppression-comment scanning happen
    once per file here, not once per rule.
    """

    def __init__(self, path: str, source: str,
                 module: Optional[str] = None) -> None:
        """Parse ``source``.  Raises :class:`SyntaxError` on bad input."""
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.module = module if module is not None \
            else module_name_for_path(path)
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.imports: Dict[str, str] = _import_table(self.tree)
        self._suppressions: Dict[int, Suppression] = \
            _suppression_table(self.lines)

    # -- queries ---------------------------------------------------------

    def line_text(self, line: int) -> str:
        """The stripped physical source line (1-based; "" if absent)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True if ``# statan: ignore[...]`` on ``line`` covers ``rule_id``."""
        entry = self._suppressions.get(line)
        return entry is not None and entry.covers(rule_id)

    def suppressions(self) -> List[Suppression]:
        """Every inline suppression comment in this file, line order."""
        return [self._suppressions[line]
                for line in sorted(self._suppressions)]

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted name, if possible.

        Import aliases are expanded: with ``from datetime import
        datetime as dt``, the call ``dt.now()`` resolves to
        ``datetime.datetime.now``.  Returns ``None`` for expressions
        that are not plain dotted chains (calls, subscripts, ...).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def module_matches(self, prefixes: Sequence[str]) -> bool:
        """Is this module under any of the dotted ``prefixes``?"""
        for prefix in prefixes:
            if self.module == prefix or \
                    self.module.startswith(prefix + "."):
                return True
        return False


class Rule:
    """Base class every statan rule derives from.

    Subclasses set the class attributes and implement :meth:`check`.
    Use :meth:`finding` to build findings — it fills in the location,
    snippet and family uniformly.  Rules that need the whole-tree view
    override :meth:`prepare`, which runs once per analysis with the
    :class:`~repro.statan.callgraph.ProjectIndex` before any
    :meth:`check` call.  The documentation attributes feed
    ``repro-lint --explain RULE``; every registered rule must fill
    them in.
    """

    id: str = ""
    name: str = ""
    family: str = ""
    description: str = ""
    #: Why the rule exists (what breaks without it).
    rationale: str = ""
    #: A minimal violating snippet.
    example_bad: str = ""
    #: The corrected form of the bad example.
    example_good: str = ""
    #: How to fix a finding (or when a justified suppression is right).
    fix_hint: str = ""
    #: Rules that police the suppression mechanism itself must not be
    #: silenceable by it.
    suppressible: bool = True

    def prepare(self, project: object) -> None:
        """Receive the :class:`ProjectIndex` before per-file checks.

        Default: ignore it (purely syntactic rules).  Called exactly
        once per analysis run; rules must reset any per-run caches
        here.
        """

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=self.id, family=self.family, path=ctx.path,
                       line=line, col=col, message=message,
                       snippet=ctx.line_text(line))

    def explain(self) -> str:
        """The full rule document ``repro-lint --explain`` prints."""
        lines = ["%s (%s) — family: %s" % (self.id, self.name,
                                           self.family),
                 "", self.description]
        if self.rationale:
            lines += ["", "Why:", "  " + self.rationale]
        if self.example_bad:
            lines += ["", "Bad:"]
            lines += ["    " + text
                      for text in self.example_bad.strip("\n").splitlines()]
        if self.example_good:
            lines += ["", "Good:"]
            lines += ["    " + text
                      for text in self.example_good.strip("\n").splitlines()]
        if self.fix_hint:
            lines += ["", "How to fix:", "  " + self.fix_hint]
        return "\n".join(lines)


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: Files that could not be parsed: (path, error message).
    errors: List[Tuple[str, str]] = field(default_factory=list)
    files_analyzed: int = 0
    suppressed_count: int = 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def counts_by_family(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.family] = counts.get(finding.family, 0) + 1
        return dict(sorted(counts.items()))


# ---------------------------------------------------------------------------
# Driving the rules.
# ---------------------------------------------------------------------------

def module_name_for_path(path: str) -> str:
    """Best-effort dotted module name for a file path.

    Recognizes ``src``-layout roots (everything after the last ``src``
    component) and bare package paths (from the first ``repro``
    component); otherwise falls back to the file stem.  ``__init__.py``
    maps to its package.
    """
    parts = path.replace(os.sep, "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(part for part in parts if part) or "<unknown>"


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  Raises :class:`FileNotFoundError` for
    a path that does not exist.
    """
    out: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".")
                                 and d != "__pycache__")
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return sorted(out)


def analyze_source(source: str, rules: Iterable[Rule],
                   path: str = "<string>",
                   module: Optional[str] = None) -> List[Finding]:
    """Run ``rules`` over one source string (the fixture-test entry point).

    Returns the surviving findings, sorted; inline suppressions are
    honoured.  The single file is its own project, so interprocedural
    rules resolve calls within it.  Raises :class:`SyntaxError` on
    unparseable source.
    """
    from .callgraph import ProjectIndex
    ctx = ModuleContext(path, source, module=module)
    rule_list = list(rules)
    project = ProjectIndex([ctx])
    for rule in rule_list:
        rule.prepare(project)
    findings, _ = _run_rules(ctx, rule_list)
    return findings


def analyze_paths(paths: Sequence[str], rules: Iterable[Rule],
                  ) -> AnalysisReport:
    """Analyze every Python file under ``paths`` with ``rules``.

    Phase 1 parses every file; phase 2 builds the
    :class:`~repro.statan.callgraph.ProjectIndex` over the parsed
    contexts and hands it to each rule's :meth:`Rule.prepare`; phase 3
    runs the per-file checks.  Unparseable files are reported in
    :attr:`AnalysisReport.errors` rather than raised — a syntax error
    in one file must not hide findings in the rest of the tree.
    """
    from .callgraph import ProjectIndex
    rule_list = list(rules)
    report = AnalysisReport()
    contexts: List[ModuleContext] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            contexts.append(ModuleContext(filename, source))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.errors.append((filename.replace(os.sep, "/"), str(exc)))
    project = ProjectIndex(contexts)
    for rule in rule_list:
        rule.prepare(project)
    for ctx in contexts:
        report.files_analyzed += 1
        findings, suppressed = _run_rules(ctx, rule_list)
        report.findings.extend(findings)
        report.suppressed_count += suppressed
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def _run_rules(ctx: ModuleContext,
               rules: List[Rule]) -> Tuple[List[Finding], int]:
    """All non-suppressed findings for one context + suppressed count."""
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if rule.suppressible and \
                    ctx.is_suppressed(finding.line, finding.rule):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept, suppressed


# ---------------------------------------------------------------------------
# Per-file tables.
# ---------------------------------------------------------------------------

def _import_table(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> imported dotted name, over the whole file.

    ``import os.path`` binds ``os``; ``import numpy as np`` binds
    ``np -> numpy``; ``from datetime import datetime as dt`` binds
    ``dt -> datetime.datetime``.  Relative imports keep their bare
    module path (level dots dropped) — good enough for matching
    project-local names.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.split(".")[0]] = \
                        alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = ("%s.%s" % (base, alias.name)
                                if base else alias.name)
    return table


def _suppression_table(lines: List[str]) -> Dict[int, Suppression]:
    """Map 1-based line -> the :class:`Suppression` parsed from it."""
    table: Dict[int, Suppression] = {}
    for number, text in enumerate(lines, start=1):
        if "statan" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        spec = match.group("rules")
        rules: Optional[Set[str]]
        if spec is None:
            rules = None
        else:
            rules = {part.strip() for part in spec.split(",")
                     if part.strip()} or None
        reason = (match.group("reason") or "").strip()
        table[number] = Suppression(line=number, col=match.start(),
                                    rules=rules, reason=reason)
    return table
