"""Accepted-findings baseline (the "ratchet" file).

A baseline records findings that existed when the gate was introduced
(or were explicitly accepted later) so the CI job fails only on *new*
findings.  Matching is by :attr:`Finding.baseline_key` — rule id, file
path and source snippet, deliberately *not* the line number — counted
as a multiset, so:

* moving a baselined line around its file does not resurface it;
* adding a *second* identical violation in the same file does fail
  (the count exceeds the baselined count).

The file is plain sorted JSON so diffs review like code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .engine import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass
class Baseline:
    """A multiset of accepted finding keys."""

    entries: Dict[str, int] = field(default_factory=dict)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: Dict[str, int] = {}
        for finding in findings:
            key = finding.baseline_key
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file.

        Raises :class:`OSError` if unreadable and :class:`ValueError`
        if the JSON is malformed or the wrong version.
        """
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError("%s: not a baseline file (%s)"
                                 % (path, exc))
        if not isinstance(payload, dict) or \
                payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                "%s: unsupported baseline version %r (expected %d)"
                % (path, payload.get("version")
                   if isinstance(payload, dict) else None,
                   BASELINE_VERSION))
        entries: Dict[str, int] = {}
        for entry in payload.get("entries", []):
            key = "%s::%s::%s" % (entry["rule"], entry["path"],
                                  entry["snippet"])
            entries[key] = int(entry.get("count", 1))
        return cls(entries)

    # -- persistence -----------------------------------------------------

    def save(self, path: str) -> None:
        """Write the baseline as stable, sorted JSON."""
        entries: List[Dict[str, object]] = []
        for key in sorted(self.entries):
            rule, file_path, snippet = key.split("::", 2)
            entries.append({"rule": rule, "path": file_path,
                            "snippet": snippet,
                            "count": self.entries[key]})
        payload = {"version": BASELINE_VERSION, "tool": "repro-lint",
                   "entries": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- filtering -------------------------------------------------------

    def split(self, findings: Iterable[Finding],
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, baselined).

        Each baseline entry absorbs at most ``count`` occurrences of
        its key; everything beyond that is new.
        """
        budget = dict(self.entries)
        new: List[Finding] = []
        accepted: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted

    def __len__(self) -> int:
        return sum(self.entries.values())
