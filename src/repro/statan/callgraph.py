"""Project-wide call graph for interprocedural rules.

The per-file :class:`~repro.statan.engine.ModuleContext` is enough for
syntactic rules, but the bug classes PR 6/7 introduced — blocking work
reached *through* a call while a lock is held, PII leaking through a
helper one call away — need to know what a call *resolves to* across
the whole scanned tree.  :class:`ProjectIndex` is that layer: it is
built once per analyzer run from every parsed file, indexes every
module-level function and class method by dotted qualname, and
resolves call expressions back to their definitions with the same
best-effort philosophy as the rest of statan (confident matches only;
a wrong edge is worse than a missing one, except where a rule opts
into fuzzy unique-name matching for recall).

Resolution strategies, in order:

* ``name(...)`` where ``name`` is imported — the import table's dotted
  target, matched exactly, then as a unique dotted suffix (relative
  imports drop their leading dots, so ``from ..crawler.checkpoint
  import atomic_write_text`` matches the one function whose qualname
  ends in ``crawler.checkpoint.atomic_write_text``).
* ``name(...)`` otherwise — a function in the calling module.
* ``self.method(...)`` — a method of the enclosing class.
* ``pkg.mod.func(...)`` dotted chains — exact, then unique suffix.
* ``anything.method(...)`` — only via :meth:`ProjectIndex.resolve_fuzzy`
  (a *unique* project-wide method name), used by reachability rules
  that prefer recall over precision.

Everything is plain dictionaries built in one O(files) pass; rules
layer their own memoized summaries (taint, blocking reachability) on
top, keyed by qualname, so the whole gate stays linear in tree size.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from .engine import ModuleContext

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class FunctionInfo:
    """One indexed function or method definition."""

    qualname: str               # "repro.service.store.JobStore.create"
    name: str                   # "create"
    module: str                 # "repro.service.store"
    class_name: Optional[str]   # "JobStore" (None for plain functions)
    node: FunctionNode
    ctx: ModuleContext

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


class ProjectIndex:
    """Every function definition in the scanned tree, resolvable by call.

    Built once per analyzer run (``analyze_paths``/``analyze_source``)
    and handed to each rule via :meth:`~repro.statan.engine.Rule.prepare`
    before per-file checks run.
    """

    def __init__(self, contexts: Iterable[ModuleContext]) -> None:
        self._by_qualname: Dict[str, FunctionInfo] = {}
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        self._by_suffix: Dict[str, List[FunctionInfo]] = {}
        for ctx in contexts:
            for info in _iter_definitions(ctx):
                self._by_qualname.setdefault(info.qualname, info)
                self._by_name.setdefault(info.name, []).append(info)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_qualname)

    def get(self, qualname: str) -> Optional[FunctionInfo]:
        return self._by_qualname.get(qualname)

    def functions(self) -> List[FunctionInfo]:
        """Every indexed definition, qualname order."""
        return [self._by_qualname[key]
                for key in sorted(self._by_qualname)]

    def resolve_call(self, ctx: ModuleContext, call: ast.Call,
                     class_name: Optional[str] = None,
                     ) -> Optional[FunctionInfo]:
        """The definition ``call`` confidently resolves to, or ``None``.

        ``class_name`` is the enclosing class when the call site sits
        inside a method (enables ``self.method()`` resolution).
        """
        func = call.func
        if isinstance(func, ast.Name):
            imported = ctx.imports.get(func.id)
            if imported is not None and imported != func.id:
                return self._dotted(imported)
            return self._by_qualname.get("%s.%s" % (ctx.module, func.id))
        if isinstance(func, ast.Attribute):
            if class_name is not None and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == "self":
                found = self._by_qualname.get(
                    "%s.%s.%s" % (ctx.module, class_name, func.attr))
                if found is not None:
                    return found
            qual = ctx.qualname(func)
            if qual is not None:
                return self._dotted(qual)
        return None

    def resolve_fuzzy(self, call: ast.Call) -> Optional[FunctionInfo]:
        """Unique-name fallback: ``x.method()`` when exactly one project
        function is named ``method``.

        Deliberately opt-in — reachability rules (CON403) use it for
        recall; the taint rules never do (a wrong interprocedural taint
        edge would be a hard-to-triage false positive).
        """
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        candidates = self._by_name.get(func.attr, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- internals -------------------------------------------------------

    def _dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """Exact qualname match, then unique-dotted-suffix match."""
        found = self._by_qualname.get(dotted)
        if found is not None:
            return found
        tail = dotted.rsplit(".", 1)[-1]
        suffix = "." + dotted
        matches = [info for info in self._by_name.get(tail, [])
                   if info.qualname.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        return None


def _iter_definitions(ctx: ModuleContext) -> Iterator[FunctionInfo]:
    """Module-level functions and class methods (nested defs skipped —
    they are not callable by name across scopes)."""
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield FunctionInfo(
                qualname="%s.%s" % (ctx.module, stmt.name),
                name=stmt.name, module=ctx.module, class_name=None,
                node=stmt, ctx=ctx)
        elif isinstance(stmt, ast.ClassDef):
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    yield FunctionInfo(
                        qualname="%s.%s.%s" % (ctx.module, stmt.name,
                                               member.name),
                        name=member.name, module=ctx.module,
                        class_name=stmt.name, node=member, ctx=ctx)


def function_params(node: FunctionNode) -> List[str]:
    """Positional + keyword-only parameter names, ``self``/``cls``
    excluded — the argument-mapping order interprocedural summaries
    are keyed by."""
    args = node.args
    names = [arg.arg for arg in
             list(getattr(args, "posonlyargs", [])) + list(args.args)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(arg.arg for arg in args.kwonlyargs)
    return names


def map_call_arguments(call: ast.Call, params: Sequence[str],
                       ) -> List[tuple]:
    """Pair each call argument expression with the parameter it binds.

    Returns ``[(param_name, arg_expr), ...]`` for confidently mapped
    arguments; ``*args``/``**kwargs`` and overflow positionals are
    skipped (the summary user must stay sound without them).
    """
    pairs: List[tuple] = []
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            pairs.append((params[index], arg))
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in params:
            pairs.append((keyword.arg, keyword.value))
    return pairs


__all__ = ["FunctionInfo", "ProjectIndex", "function_params",
           "map_call_arguments"]
