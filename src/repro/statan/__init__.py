"""Static analysis gate (``repro-lint``).

The repo's two load-bearing contracts are enforced here *by analysis*,
not just by observation:

* **Determinism** — seed → population → fault plan → bit-identical
  :meth:`~repro.crawler.CrawlDataset.fingerprint` at any worker count
  (DESIGN.md §"Reproducibility").  Wall-clock reads, unseeded ``random``
  module calls, OS entropy and ``PYTHONHASHSEED``-sensitive builtin
  ``hash()`` are forbidden in the fingerprint-affecting modules.
* **PII containment** — the paper's own subject has a meta-instance in
  our code: persona PII and leaked-token payloads must not reach output
  sinks (``print``, ``logging``, file writes, exception messages) except
  through :mod:`repro.reporting.redact`.

Plus **pickle safety**: classes crossing the ``crawler.parallel``
multiprocessing boundary must stay picklable (no lambdas, local classes
or open handles in their state).  And — since the service/supervisor
layers went concurrent — **concurrency safety** (the CON4xx family):
unlocked writes to lock-guarded state, lock-order inversions, blocking
work under a lock, predicate-less condition waits and leaked threads.

Architecture: :mod:`~repro.statan.engine` parses each file once, builds
the project-wide :class:`~repro.statan.callgraph.ProjectIndex`, and
runs every :class:`~repro.statan.engine.Rule` over the shared
:class:`~repro.statan.engine.ModuleContext`; rules live in
:mod:`repro.statan.rules`; :mod:`~repro.statan.taint` is the dataflow
engine (intraprocedural core + one-call-deep function summaries) the
PII rules are built on; :mod:`~repro.statan.baseline` implements the
accepted-findings file and :mod:`~repro.statan.cli` the ``repro-lint``
command (human + JSON output, inline suppression via a justified
``statan: ignore`` comment — the ``-- reason`` tail is enforced by
STA001).
"""

from .baseline import Baseline
from .engine import (
    AnalysisReport,
    Finding,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    iter_python_files,
    module_name_for_path,
)
from .rules import default_rules, rules_by_family, rules_by_id

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "ModuleContext",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "iter_python_files",
    "module_name_for_path",
    "rules_by_family",
    "rules_by_id",
]
