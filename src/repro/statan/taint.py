"""Intraprocedural PII taint dataflow.

The model, deliberately simple enough to reason about:

* **Sources** are expressions that *are* PII: attribute reads like
  ``persona.email`` (a PII field on a persona-shaped object) and leak
  payload fields like ``origin.surface_form``.  What counts is
  configured by a :class:`TaintConfig`.
* **Propagation** is forward, in statement order, per function body
  (module top-level counts as a body).  Assigning a tainted expression
  taints the target name; reassigning it clean clears it.  String
  building in every common shape (``%``, ``+``, ``.format``,
  f-strings, ``str.join``, containers) propagates taint, as do calls
  with tainted arguments (a conservative over-approximation).
  Branches (``if``/``try``/loops) are analyzed against the same
  environment and their taints merge — a name tainted on *any* path
  stays tainted afterwards.
* **Sanitizers** stop taint: any call whose callee matches the
  configured redaction helpers (``repro.reporting.redact``) returns a
  clean value.
* **Sinks** are where tainted data must not arrive; the caller (the
  PII rules) asks :class:`TaintAnalysis` for sink hits.

This is a linter, not a verifier: it over-taints (any call argument)
and under-taints (no interprocedural flow, no aliasing through
containers read back later).  Both trade-offs are the conventional ones
for a CI gate — findings must be cheap to confirm, and escapes are
caught by the next rule pass over the callee.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TaintConfig:
    """What counts as a source and what stops taint."""

    #: Attribute names that hold raw PII when read off a PII-shaped base.
    pii_attrs: Tuple[str, ...] = (
        "email", "username", "full_name", "first_name", "last_name",
        "phone", "dob", "gender", "job", "address",
    )
    #: Base-expression substrings marking a persona-shaped object
    #: (matched case-insensitively against the dotted base name).
    pii_bases: Tuple[str, ...] = ("persona",)
    #: Attribute names that hold leaked-token payloads wherever they
    #: appear (TokenOrigin.surface_form is the leaked value itself).
    payload_attrs: Tuple[str, ...] = (
        "surface_form", "leaked_value", "pii_value",
    )
    #: Callee name suffixes that sanitize their arguments.
    sanitizers: Tuple[str, ...] = (
        "redact", "redact_email", "redact_value", "redact_text",
        "redact_spans",
    )


@dataclass(frozen=True)
class SinkHit:
    """One tainted expression arriving at a sink."""

    node: ast.AST          # the sink call / raise statement
    sink: str              # human label, e.g. "print()"
    source: str            # where the taint came from, e.g. "persona.email"


@dataclass
class _Env:
    """Mutable taint environment: tainted name -> source description."""

    tainted: Dict[str, str] = field(default_factory=dict)

    def copy(self) -> "_Env":
        return _Env(dict(self.tainted))

    def merge(self, *others: "_Env") -> None:
        for other in others:
            self.tainted.update(other.tainted)


class TaintAnalysis:
    """Run the dataflow over one function body (or the module body)."""

    def __init__(self, config: Optional[TaintConfig] = None) -> None:
        self.config = config or TaintConfig()

    # -- public ----------------------------------------------------------

    def function_bodies(self, tree: ast.Module,
                        ) -> List[Tuple[str, List[ast.stmt]]]:
        """Every analysis scope in ``tree``: (scope name, body).

        The module top-level is one scope; every (async) function —
        nested ones included — is another.  Class bodies are *not*
        scopes of their own (their statements run at module scope), but
        methods inside them are.
        """
        scopes: List[Tuple[str, List[ast.stmt]]] = [
            ("<module>", list(tree.body))]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node.name, list(node.body)))
        return scopes

    def sink_hits(self, body: List[ast.stmt],
                  sinks: "SinkTable") -> List[SinkHit]:
        """All tainted-value-reaches-sink events in one scope."""
        hits: List[SinkHit] = []
        self._run_body(body, _Env(), sinks, hits, top=True)
        return hits

    # -- statement walk --------------------------------------------------

    def _run_body(self, body: List[ast.stmt], env: _Env,
                  sinks: "SinkTable", hits: List[SinkHit],
                  top: bool = False) -> None:
        for stmt in body:
            self._run_stmt(stmt, env, sinks, hits, top=top)

    def _run_stmt(self, stmt: ast.stmt, env: _Env, sinks: "SinkTable",
                  hits: List[SinkHit], top: bool = False) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested scopes are analyzed separately
        if isinstance(stmt, ast.ClassDef):
            if top:
                self._run_body(list(stmt.body), env, sinks, hits)
            return
        if isinstance(stmt, ast.Assign):
            source = self.taint_of(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, source, env)
            self._check_expr(stmt.value, env, sinks, hits)
            return
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                source = self.taint_of(value, env)
                if isinstance(stmt, ast.AugAssign):
                    # x += tainted leaves x tainted; += clean keeps the
                    # existing verdict.
                    if source is not None:
                        self._assign(stmt.target, source, env)
                else:
                    self._assign(stmt.target, source, env)
                self._check_expr(value, env, sinks, hits)
            return
        if isinstance(stmt, ast.Expr):
            self._check_expr(stmt.value, env, sinks, hits)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, env, sinks, hits)
            return
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            if exc is not None:
                source = self.taint_of(exc, env)
                if source is not None and sinks.raise_is_sink:
                    hits.append(SinkHit(node=stmt,
                                        sink="raise",
                                        source=source))
                self._check_expr(exc, env, sinks, hits,
                                 skip_top_call=sinks.raise_is_sink)
            return
        if isinstance(stmt, (ast.If,)):
            self._check_expr(stmt.test, env, sinks, hits)
            self._run_branches(env, sinks, hits,
                               [stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            source = self.taint_of(stmt.iter, env)
            self._assign(stmt.target, source, env)
            self._check_expr(stmt.iter, env, sinks, hits)
            self._run_branches(env, sinks, hits,
                               [stmt.body, stmt.orelse])
            return
        if isinstance(stmt, ast.While):
            self._check_expr(stmt.test, env, sinks, hits)
            self._run_branches(env, sinks, hits,
                               [stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                source = self.taint_of(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, source, env)
                self._check_expr(item.context_expr, env, sinks, hits)
            self._run_body(list(stmt.body), env, sinks, hits)
            return
        if isinstance(stmt, ast.Try):
            branches = [list(stmt.body)]
            for handler in stmt.handlers:
                branches.append(list(handler.body))
            branches.append(list(stmt.orelse))
            self._run_branches(env, sinks, hits, branches)
            self._run_body(list(stmt.finalbody), env, sinks, hits)
            return
        # Fallback: scan any remaining expressions for sink calls.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._check_expr(child, env, sinks, hits)

    def _run_branches(self, env: _Env, sinks: "SinkTable",
                      hits: List[SinkHit],
                      branch_bodies: List[List[ast.stmt]]) -> None:
        """Run each branch on a copy of ``env``; merge taints (union)."""
        outcomes: List[_Env] = []
        for body in branch_bodies:
            branch_env = env.copy()
            self._run_body(list(body), branch_env, sinks, hits)
            outcomes.append(branch_env)
        env.merge(*outcomes)

    def _assign(self, target: ast.expr, source: Optional[str],
                env: _Env) -> None:
        if isinstance(target, ast.Name):
            if source is None:
                env.tainted.pop(target.id, None)
            else:
                env.tainted[target.id] = source
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, source, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, source, env)
        # Attribute/subscript targets: no alias tracking; skip.

    # -- expression taint ------------------------------------------------

    def taint_of(self, node: Optional[ast.expr],
                 env: _Env) -> Optional[str]:
        """Why ``node`` is tainted (a source description), or None."""
        if node is None:
            return None
        config = self.config
        if isinstance(node, ast.Name):
            return env.tainted.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in config.payload_attrs:
                return "leak payload .%s" % node.attr
            if node.attr in config.pii_attrs:
                base = _dotted_text(node.value)
                lowered = base.lower()
                if any(marker in lowered for marker in config.pii_bases):
                    return "%s.%s" % (base, node.attr)
            return self.taint_of(node.value, env)
        if isinstance(node, ast.Call):
            if self._is_sanitizer(node.func):
                return None
            for arg in node.args:
                found = self.taint_of(arg, env)
                if found:
                    return found
            for keyword in node.keywords:
                found = self.taint_of(keyword.value, env)
                if found:
                    return found
            # A call on a tainted receiver (email.upper(), etc.).
            if isinstance(node.func, ast.Attribute):
                return self.taint_of(node.func.value, env)
            return None
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left, env) \
                or self.taint_of(node.right, env)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                found = self.taint_of(value, env)
                if found:
                    return found
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    found = self.taint_of(value.value, env)
                    if found:
                        return found
            return None
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                found = self.taint_of(element, env)
                if found:
                    return found
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                found = self.taint_of(value, env)
                if found:
                    return found
            return None
        if isinstance(node, (ast.Subscript, ast.Starred, ast.Await,
                             ast.UnaryOp)):
            return self.taint_of(getattr(node, "value",
                                         getattr(node, "operand", None)),
                                 env)
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body, env) \
                or self.taint_of(node.orelse, env)
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value, env)
        return None

    def _is_sanitizer(self, func: ast.expr) -> bool:
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name is not None and name in self.config.sanitizers

    # -- sink scanning ---------------------------------------------------

    def _check_expr(self, node: ast.expr, env: _Env, sinks: "SinkTable",
                    hits: List[SinkHit],
                    skip_top_call: bool = False) -> None:
        """Find sink calls anywhere inside ``node`` with tainted args."""
        for call in _walk_calls(node):
            if skip_top_call and call is node:
                continue
            label = sinks.match(call)
            if label is None:
                continue
            for arg in list(call.args) + [kw.value
                                          for kw in call.keywords]:
                source = self.taint_of(arg, env)
                if source is not None:
                    hits.append(SinkHit(node=call, sink=label,
                                        source=source))
                    break


class SinkTable:
    """Which calls count as output sinks.

    * ``print(...)``
    * ``logging.<level>(...)`` and ``<log|logger>.<level>(...)``
    * ``<anything>.write(...)`` / ``.writelines(...)``
    * optionally ``raise`` statements (PII in exception messages
      escapes through tracebacks, logs and user-facing error output).
    """

    _LOG_METHODS = {"debug", "info", "warning", "warn", "error",
                    "exception", "critical", "log"}
    _WRITE_METHODS = {"write", "writelines"}

    def __init__(self, raise_is_sink: bool = True) -> None:
        self.raise_is_sink = raise_is_sink

    def match(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                return "print()"
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in self._WRITE_METHODS:
                return ".%s()" % func.attr
            if func.attr in self._LOG_METHODS:
                base = _dotted_text(func.value).lower()
                if base == "logging" or "log" in base.rsplit(".", 1)[-1]:
                    return "logging"
            return None
        return None


def _walk_calls(node: ast.expr) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _dotted_text(node: ast.expr) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif isinstance(current, ast.Call):
        parts.append(_dotted_text(current.func) + "()")
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts))
