"""PII taint dataflow: intraprocedural core + one-call-deep summaries.

The model, deliberately simple enough to reason about:

* **Sources** are expressions that *are* PII: attribute reads like
  ``persona.email`` (a PII field on a persona-shaped object) and leak
  payload fields like ``origin.surface_form``.  What counts is
  configured by a :class:`TaintConfig`.
* **Propagation** is forward, in statement order, per function body
  (module top-level counts as a body).  Assigning a tainted expression
  taints the target name; reassigning it clean clears it.  String
  building in every common shape (``%``, ``+``, ``.format``,
  f-strings, ``str.join``, containers) propagates taint, as do calls
  with tainted arguments (a conservative over-approximation).
  Branches (``if``/``try``/loops) are analyzed against the same
  environment and their taints merge — a name tainted on *any* path
  stays tainted afterwards.
* **Sanitizers** stop taint: any call whose callee matches the
  configured redaction helpers (``repro.reporting.redact``) returns a
  clean value.
* **Sinks** are where tainted data must not arrive; the caller (the
  PII rules) asks :class:`TaintAnalysis` for sink hits.

This is a linter, not a verifier: it over-taints (any call argument)
and under-taints (aliasing through containers read back later is not
tracked).  Both trade-offs are the conventional ones for a CI gate —
findings must be cheap to confirm.

Interprocedural flow is handled by **function summaries** one level
deep.  :func:`summarize_function` runs the same dataflow over a callee
with each parameter pre-tainted by a ``param:`` marker and records (a)
which parameters reach a sink inside the callee, (b) which parameters
flow to its return value, and (c) whether the return value is tainted
regardless of arguments (the callee reads a source itself).  A
caller-side resolver (built by the PII rule from the project call
graph) maps call expressions to summaries; :class:`TaintAnalysis`
consults it *additively* — a summary can only add taint and sink hits
on top of the conservative intraprocedural verdicts, never remove
them, so upgrading to interprocedural analysis is monotone: every old
finding survives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

#: Source-description prefix marking "this taint came from parameter X"
#: during a summarization run (never appears in real findings).
PARAM_MARKER = "param:"


@dataclass(frozen=True)
class TaintConfig:
    """What counts as a source and what stops taint."""

    #: Attribute names that hold raw PII when read off a PII-shaped base.
    pii_attrs: Tuple[str, ...] = (
        "email", "username", "full_name", "first_name", "last_name",
        "phone", "dob", "gender", "job", "address",
    )
    #: Base-expression substrings marking a persona-shaped object
    #: (matched case-insensitively against the dotted base name).
    pii_bases: Tuple[str, ...] = ("persona",)
    #: Attribute names that hold leaked-token payloads wherever they
    #: appear (TokenOrigin.surface_form is the leaked value itself).
    payload_attrs: Tuple[str, ...] = (
        "surface_form", "leaked_value", "pii_value",
    )
    #: Callee name suffixes that sanitize their arguments.
    sanitizers: Tuple[str, ...] = (
        "redact", "redact_email", "redact_value", "redact_text",
        "redact_spans",
    )


@dataclass(frozen=True)
class SinkHit:
    """One tainted expression arriving at a sink."""

    node: ast.AST          # the sink call / raise statement
    sink: str              # human label, e.g. "print()"
    source: str            # where the taint came from, e.g. "persona.email"


@dataclass(frozen=True)
class FunctionSummary:
    """What one callee does with taint, from its caller's point of view.

    Computed once per function per analyzer run (the PII rule caches
    by qualname) by :func:`summarize_function`; summaries themselves
    are computed *without* a resolver, which is what bounds the
    interprocedural depth at one call level.
    """

    name: str                            # display name, e.g. "fetch_email"
    params: Tuple[str, ...]              # mapping order for call args
    #: param -> sink labels it reaches inside the callee.
    param_sinks: Dict[str, Tuple[str, ...]]
    #: Params whose taint flows into the callee's return value.
    returns_param: Set[str]
    #: Return value tainted regardless of args (callee reads a source).
    returns_source: Optional[str]

    @property
    def interesting(self) -> bool:
        return bool(self.param_sinks or self.returns_param
                    or self.returns_source)


#: Caller-side hook: call expression -> summary of its callee (or None
#: when the call does not confidently resolve to a project function).
Resolver = Callable[[ast.Call], Optional[FunctionSummary]]


@dataclass
class _Env:
    """Mutable taint environment: tainted name -> source description."""

    tainted: Dict[str, str] = field(default_factory=dict)

    def copy(self) -> "_Env":
        return _Env(dict(self.tainted))

    def merge(self, *others: "_Env") -> None:
        for other in others:
            self.tainted.update(other.tainted)


class TaintAnalysis:
    """Run the dataflow over one function body (or the module body)."""

    def __init__(self, config: Optional[TaintConfig] = None) -> None:
        self.config = config or TaintConfig()
        self._resolver: Optional[Resolver] = None
        #: Source descriptions of tainted ``return`` values seen during
        #: the most recent :meth:`sink_hits` run (read by the
        #: summarizer).
        self.return_taints: List[str] = []

    # -- public ----------------------------------------------------------

    def function_bodies(self, tree: ast.Module,
                        ) -> List[Tuple[str, List[ast.stmt]]]:
        """Every analysis scope in ``tree``: (scope name, body).

        The module top-level is one scope; every (async) function —
        nested ones included — is another.  Class bodies are *not*
        scopes of their own (their statements run at module scope), but
        methods inside them are.
        """
        return [(name, body) for name, _, body in self.scopes(tree)]

    def scopes(self, tree: ast.Module,
               ) -> List[Tuple[str, Optional[str], List[ast.stmt]]]:
        """Every analysis scope with its enclosing class:
        ``(scope name, class name or None, body)``.

        The class name is what lets a caller-side resolver follow
        ``self.method(...)`` calls; nested defs inside a method drop it
        (their ``self`` is a closure cell, not a resolvable receiver).
        """
        out: List[Tuple[str, Optional[str], List[ast.stmt]]] = [
            ("<module>", None, list(tree.body))]

        def visit(node: ast.AST, class_name: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    out.append((child.name, class_name, list(child.body)))
                    visit(child, None)
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    visit(child, class_name)

        visit(tree, None)
        return out

    def sink_hits(self, body: List[ast.stmt], sinks: "SinkTable",
                  env: Optional[_Env] = None,
                  resolver: Optional[Resolver] = None) -> List[SinkHit]:
        """All tainted-value-reaches-sink events in one scope.

        ``env`` seeds the taint environment (the summarizer passes
        param markers); ``resolver`` enables one-call-deep
        interprocedural lookups for the duration of this run.
        """
        hits: List[SinkHit] = []
        self._resolver = resolver
        self.return_taints = []
        try:
            self._run_body(body, env.copy() if env is not None else _Env(),
                           sinks, hits, top=True)
        finally:
            self._resolver = None
        return hits

    # -- statement walk --------------------------------------------------

    def _run_body(self, body: List[ast.stmt], env: _Env,
                  sinks: "SinkTable", hits: List[SinkHit],
                  top: bool = False) -> None:
        for stmt in body:
            self._run_stmt(stmt, env, sinks, hits, top=top)

    def _run_stmt(self, stmt: ast.stmt, env: _Env, sinks: "SinkTable",
                  hits: List[SinkHit], top: bool = False) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested scopes are analyzed separately
        if isinstance(stmt, ast.ClassDef):
            if top:
                self._run_body(list(stmt.body), env, sinks, hits)
            return
        if isinstance(stmt, ast.Assign):
            source = self.taint_of(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, source, env)
            self._check_expr(stmt.value, env, sinks, hits)
            return
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                source = self.taint_of(value, env)
                if isinstance(stmt, ast.AugAssign):
                    # x += tainted leaves x tainted; += clean keeps the
                    # existing verdict.
                    if source is not None:
                        self._assign(stmt.target, source, env)
                else:
                    self._assign(stmt.target, source, env)
                self._check_expr(value, env, sinks, hits)
            return
        if isinstance(stmt, ast.Expr):
            self._check_expr(stmt.value, env, sinks, hits)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                source = self.taint_of(stmt.value, env)
                if source is not None:
                    self.return_taints.append(source)
                self._check_expr(stmt.value, env, sinks, hits)
            return
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            if exc is not None:
                source = self.taint_of(exc, env)
                if source is not None and sinks.raise_is_sink:
                    hits.append(SinkHit(node=stmt,
                                        sink="raise",
                                        source=source))
                self._check_expr(exc, env, sinks, hits,
                                 skip_top_call=sinks.raise_is_sink)
            return
        if isinstance(stmt, (ast.If,)):
            self._check_expr(stmt.test, env, sinks, hits)
            self._run_branches(env, sinks, hits,
                               [stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            source = self.taint_of(stmt.iter, env)
            self._assign(stmt.target, source, env)
            self._check_expr(stmt.iter, env, sinks, hits)
            self._run_branches(env, sinks, hits,
                               [stmt.body, stmt.orelse])
            return
        if isinstance(stmt, ast.While):
            self._check_expr(stmt.test, env, sinks, hits)
            self._run_branches(env, sinks, hits,
                               [stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                source = self.taint_of(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, source, env)
                self._check_expr(item.context_expr, env, sinks, hits)
            self._run_body(list(stmt.body), env, sinks, hits)
            return
        if isinstance(stmt, ast.Try):
            branches = [list(stmt.body)]
            for handler in stmt.handlers:
                branches.append(list(handler.body))
            branches.append(list(stmt.orelse))
            self._run_branches(env, sinks, hits, branches)
            self._run_body(list(stmt.finalbody), env, sinks, hits)
            return
        # Fallback: scan any remaining expressions for sink calls.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._check_expr(child, env, sinks, hits)

    def _run_branches(self, env: _Env, sinks: "SinkTable",
                      hits: List[SinkHit],
                      branch_bodies: List[List[ast.stmt]]) -> None:
        """Run each branch on a copy of ``env``; merge taints (union)."""
        outcomes: List[_Env] = []
        for body in branch_bodies:
            branch_env = env.copy()
            self._run_body(list(body), branch_env, sinks, hits)
            outcomes.append(branch_env)
        env.merge(*outcomes)

    def _assign(self, target: ast.expr, source: Optional[str],
                env: _Env) -> None:
        if isinstance(target, ast.Name):
            if source is None:
                env.tainted.pop(target.id, None)
            else:
                env.tainted[target.id] = source
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, source, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, source, env)
        # Attribute/subscript targets: no alias tracking; skip.

    # -- expression taint ------------------------------------------------

    def taint_of(self, node: Optional[ast.expr],
                 env: _Env) -> Optional[str]:
        """Why ``node`` is tainted (a source description), or None."""
        if node is None:
            return None
        config = self.config
        if isinstance(node, ast.Name):
            return env.tainted.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in config.payload_attrs:
                return "leak payload .%s" % node.attr
            if node.attr in config.pii_attrs:
                base = _dotted_text(node.value)
                lowered = base.lower()
                if any(marker in lowered for marker in config.pii_bases):
                    return "%s.%s" % (base, node.attr)
            return self.taint_of(node.value, env)
        if isinstance(node, ast.Call):
            if self._is_sanitizer(node.func):
                return None
            summary = self._summary_for(node)
            if summary is not None:
                found = self._summary_return_taint(node, summary, env)
                if found is not None:
                    return found
            for arg in node.args:
                found = self.taint_of(arg, env)
                if found:
                    return found
            for keyword in node.keywords:
                found = self.taint_of(keyword.value, env)
                if found:
                    return found
            # A call on a tainted receiver (email.upper(), etc.).
            if isinstance(node.func, ast.Attribute):
                return self.taint_of(node.func.value, env)
            return None
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left, env) \
                or self.taint_of(node.right, env)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                found = self.taint_of(value, env)
                if found:
                    return found
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    found = self.taint_of(value.value, env)
                    if found:
                        return found
            return None
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                found = self.taint_of(element, env)
                if found:
                    return found
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                found = self.taint_of(value, env)
                if found:
                    return found
            return None
        if isinstance(node, (ast.Subscript, ast.Starred, ast.Await,
                             ast.UnaryOp)):
            return self.taint_of(getattr(node, "value",
                                         getattr(node, "operand", None)),
                                 env)
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body, env) \
                or self.taint_of(node.orelse, env)
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value, env)
        return None

    def _is_sanitizer(self, func: ast.expr) -> bool:
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name is not None and name in self.config.sanitizers

    # -- interprocedural (summary consultation) --------------------------

    def _summary_for(self, call: ast.Call) -> Optional[FunctionSummary]:
        if self._resolver is None:
            return None
        summary = self._resolver(call)
        if summary is not None and summary.interesting:
            return summary
        return None

    def _summary_return_taint(self, call: ast.Call,
                              summary: FunctionSummary,
                              env: _Env) -> Optional[str]:
        """Taint of ``call``'s return value according to the summary."""
        if summary.returns_source is not None:
            return "%s (returned by %s())" % (summary.returns_source,
                                              summary.name)
        from .callgraph import map_call_arguments
        for param, arg in map_call_arguments(call, summary.params):
            if param in summary.returns_param:
                found = self.taint_of(arg, env)
                if found is not None:
                    return found
        return None

    # -- sink scanning ---------------------------------------------------

    def _check_expr(self, node: ast.expr, env: _Env, sinks: "SinkTable",
                    hits: List[SinkHit],
                    skip_top_call: bool = False) -> None:
        """Find sink calls anywhere inside ``node`` with tainted args —
        direct sinks first, then calls whose *callee* sinks a parameter
        (via the resolver's one-call-deep summaries)."""
        for call in _walk_calls(node):
            if skip_top_call and call is node:
                continue
            label = sinks.match(call)
            if label is not None:
                for arg in list(call.args) + [kw.value
                                              for kw in call.keywords]:
                    source = self.taint_of(arg, env)
                    if source is not None:
                        hits.append(SinkHit(node=call, sink=label,
                                            source=source))
                        break
                continue
            summary = self._summary_for(call)
            if summary is None or not summary.param_sinks:
                continue
            from .callgraph import map_call_arguments
            for param, arg in map_call_arguments(call, summary.params):
                inner_sinks = summary.param_sinks.get(param)
                if not inner_sinks:
                    continue
                source = self.taint_of(arg, env)
                if source is not None and \
                        not source.startswith(PARAM_MARKER):
                    hits.append(SinkHit(
                        node=call,
                        sink="%s inside %s()" % (inner_sinks[0],
                                                 summary.name),
                        source=source))
                    break


class SinkTable:
    """Which calls count as output sinks.

    * ``print(...)``
    * ``logging.<level>(...)`` and ``<log|logger>.<level>(...)``
    * ``<anything>.write(...)`` / ``.writelines(...)``
    * optionally ``raise`` statements (PII in exception messages
      escapes through tracebacks, logs and user-facing error output).
    """

    _LOG_METHODS = {"debug", "info", "warning", "warn", "error",
                    "exception", "critical", "log"}
    _WRITE_METHODS = {"write", "writelines"}

    def __init__(self, raise_is_sink: bool = True) -> None:
        self.raise_is_sink = raise_is_sink

    def match(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                return "print()"
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in self._WRITE_METHODS:
                return ".%s()" % func.attr
            if func.attr in self._LOG_METHODS:
                base = _dotted_text(func.value).lower()
                if base == "logging" or "log" in base.rsplit(".", 1)[-1]:
                    return "logging"
            return None
        return None


def _walk_calls(node: ast.expr) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _dotted_text(node: ast.expr) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif isinstance(current, ast.Call):
        parts.append(_dotted_text(current.func) + "()")
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# Function summaries (the interprocedural half).
# ---------------------------------------------------------------------------

def summarize_function(node: "ast.FunctionDef",
                       sinks: "SinkTable",
                       config: Optional[TaintConfig] = None,
                       ) -> FunctionSummary:
    """One-call-deep summary of what ``node`` does with taint.

    Runs the intraprocedural dataflow over the callee's body with every
    parameter pre-tainted by a ``param:`` marker, *without* a resolver
    (which is what bounds the depth — summaries never consult other
    summaries).  Sink hits whose source is a param marker become
    ``param_sinks``; tainted return values split into parameter flows
    and unconditional sources.
    """
    from .callgraph import function_params
    analysis = TaintAnalysis(config)
    params = function_params(node)
    env = _Env({name: PARAM_MARKER + name for name in params})
    hits = analysis.sink_hits(list(node.body), sinks, env=env)

    param_sinks: Dict[str, Tuple[str, ...]] = {}
    for hit in hits:
        if hit.source.startswith(PARAM_MARKER):
            name = hit.source[len(PARAM_MARKER):]
            param_sinks[name] = param_sinks.get(name, ()) + (hit.sink,)

    returns_param: Set[str] = set()
    returns_source: Optional[str] = None
    for source in analysis.return_taints:
        if source.startswith(PARAM_MARKER):
            returns_param.add(source[len(PARAM_MARKER):])
        elif returns_source is None:
            returns_source = source

    return FunctionSummary(name=node.name, params=tuple(params),
                           param_sinks=param_sinks,
                           returns_param=returns_param,
                           returns_source=returns_source)
