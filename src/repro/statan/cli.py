"""The ``repro-lint`` command.

Usage::

    repro-lint src/                         # human output, exit 1 on
                                            # new (non-baselined) findings
    repro-lint src/ --format json           # machine-readable report
    repro-lint src/ --write-baseline        # accept current findings
    repro-lint src/ --select determinism    # one family (or rule id)
    repro-lint src/ --select CON            # an id prefix (a family's ids)
    repro-lint --list-rules
    repro-lint --explain CON402             # the full rule document

Exit codes: 0 clean (every finding baselined or none), 1 new findings,
2 usage / parse errors.  The default baseline is
``.repro-lint-baseline.json`` in the current directory when it exists,
otherwise the nearest one walking up from the scanned paths (so
``repro-lint src/`` finds the committed baseline from any
subdirectory); ``--no-baseline`` ignores it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import AnalysisReport, Finding
from .engine import analyze_paths as _analyze_paths
from .rules import default_rules, rules_by_id

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: JSON report schema version (bump on incompatible change).
JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism / PII-taint / pickle-safety "
                    "gate for the repro codebase.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file of accepted findings "
                             "(default: %s when present)"
                             % DEFAULT_BASELINE_NAME)
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the "
                             "baseline file and exit 0")
    parser.add_argument("--select", action="append", metavar="RULE",
                        help="restrict to a rule id (DET101) or family "
                             "(determinism); repeatable")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print the full rule document (rationale, "
                             "bad/good example, fix) and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_listing())
        return EXIT_CLEAN
    if args.explain is not None:
        for rule in default_rules():
            if rule.id == args.explain:
                print(rule.explain())
                return EXIT_CLEAN
        parser.error("unknown rule %r (try --list-rules)" % args.explain)

    try:
        rules = rules_by_id(args.select)
    except ValueError as exc:
        parser.error(str(exc))

    report = _analyze_paths(args.paths, rules)

    baseline_path = _baseline_path(args)
    baseline = Baseline()
    if args.write_baseline:
        path = baseline_path or DEFAULT_BASELINE_NAME
        Baseline.from_findings(report.findings).save(path)
        print("repro-lint: wrote %d finding(s) to %s"
              % (len(report.findings), path))
        return EXIT_CLEAN
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print("repro-lint: error: %s" % exc, file=sys.stderr)
            return EXIT_ERROR

    new, accepted = baseline.split(report.findings)

    if args.format == "json":
        print(_json_report(report, new, accepted, baseline_path))
    else:
        _print_human(report, new, accepted, baseline_path)

    if report.errors:
        return EXIT_ERROR
    return EXIT_FINDINGS if new else EXIT_CLEAN


def _baseline_path(args: argparse.Namespace) -> Optional[str]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    if os.path.exists(DEFAULT_BASELINE_NAME):
        return DEFAULT_BASELINE_NAME
    # Not in the CWD: walk up from the scanned paths so that
    # `repro-lint some/deep/dir` run from anywhere still honours the
    # committed baseline at the repo root.
    return _find_baseline_near(args.paths)


def _find_baseline_near(paths: Sequence[str]) -> Optional[str]:
    """The nearest ``DEFAULT_BASELINE_NAME`` at or above the scanned
    paths' common ancestor, or None."""
    existing = [os.path.abspath(path) for path in paths
                if os.path.exists(path)]
    if not existing:
        return None
    current = os.path.commonpath(existing)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        candidate = os.path.join(current, DEFAULT_BASELINE_NAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def _rule_listing() -> str:
    lines: List[str] = []
    for rule in default_rules():
        lines.append("%s  %-18s [%s]" % (rule.id, rule.name, rule.family))
        lines.append("        %s" % rule.description)
    return "\n".join(lines)


def _json_report(report: AnalysisReport, new: List[Finding],
                 accepted: List[Finding],
                 baseline_path: Optional[str]) -> str:
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "files_analyzed": report.files_analyzed,
        "errors": [{"path": path, "message": message}
                   for path, message in report.errors],
        "findings": [finding.to_json() for finding in new],
        "baselined": [finding.to_json() for finding in accepted],
        "suppressed_count": report.suppressed_count,
        "counts": {
            "total": len(report.findings),
            "new": len(new),
            "baselined": len(accepted),
            "by_rule": report.counts_by_rule(),
            "by_family": report.counts_by_family(),
        },
        "baseline": baseline_path,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _print_human(report: AnalysisReport, new: List[Finding],
                 accepted: List[Finding],
                 baseline_path: Optional[str]) -> None:
    for path, message in report.errors:
        print("%s: parse error: %s" % (path, message), file=sys.stderr)
    for finding in new:
        print(finding.format())
    bits = ["%d file(s)" % report.files_analyzed,
            "%d new finding(s)" % len(new)]
    if accepted:
        bits.append("%d baselined (%s)"
                    % (len(accepted), baseline_path))
    if report.suppressed_count:
        bits.append("%d inline-suppressed" % report.suppressed_count)
    if report.errors:
        bits.append("%d parse error(s)" % len(report.errors))
    print("repro-lint: " + ", ".join(bits))


if __name__ == "__main__":
    sys.exit(main())
