"""PII redaction for operator-facing output.

The paper's subject is PII escaping to unintended sinks; the
reproduction must not itself be a sink.  Every place the CLI, logs or
reports surface persona PII or recovered leak payloads routes the value
through these helpers — and the :mod:`repro.statan` PII-taint rule
(PII201) enforces exactly that: these functions are its sanitizers.

Redaction is deterministic and shape-preserving enough to debug with
(``jdoe1991@mailbox.org`` → ``j*******@m******.org``): same input, same
mask, so redacted output still diffs cleanly across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["redact", "redact_email", "redact_spans", "redact_value"]

#: Shortest prefix of a masked segment kept in the clear.
_KEEP = 1
_MASK = "*"


def _mask_segment(segment: str) -> str:
    """Mask one token segment, keeping the first character as an anchor."""
    if len(segment) <= _KEEP:
        return _MASK * max(len(segment), 1)
    return segment[:_KEEP] + _MASK * (len(segment) - _KEEP)


def redact_email(email: str) -> str:
    """``jdoe1991@mailbox.org`` → ``j*******@m******.org``.

    The local part and every domain label except the public suffix are
    masked to their first character; the TLD stays readable so the
    *shape* of the address (which mail ecosystem) survives redaction.
    Falls back to :func:`redact_value` for strings without an ``@``.
    """
    if "@" not in email:
        return redact_value(email)
    local, _, domain = email.partition("@")
    labels = domain.split(".")
    if len(labels) > 1:
        masked = [_mask_segment(label) for label in labels[:-1]]
        masked.append(labels[-1])
    else:
        masked = [_mask_segment(domain)]
    return "%s@%s" % (_mask_segment(local), ".".join(masked))


def redact_value(value: str) -> str:
    """Generic PII mask: keep the first character per word, mask the rest.

    ``John Smith`` → ``J*** S****``; hex/hashed tokens keep their first
    character and length (``5d41...`` → ``5***...``), enough to eyeball
    which token family a finding is about without re-leaking it.
    """
    return " ".join(_mask_segment(word) if word else word
                    for word in value.split(" "))


def redact(value: str) -> str:
    """The general entry point: email-aware, otherwise a generic mask."""
    if "@" in value:
        return redact_email(value)
    return redact_value(value)


def redact_spans(text: str, spans: Iterable[Tuple[int, int]]) -> str:
    """Mask the ``[start, end)`` character spans of ``text`` in place.

    The tool for "this URL/body contains leaked tokens at these
    offsets": everything outside the spans is preserved verbatim, each
    span is masked with :func:`redact` (so an embedded e-mail address
    keeps its ``@``-shape).  Overlapping or unsorted spans are merged
    first.  Raises :class:`ValueError` for spans out of range or
    inverted.
    """
    merged = _merge_spans(text, spans)
    out: List[str] = []
    cursor = 0
    for start, end in merged:
        out.append(text[cursor:start])
        out.append(redact(text[start:end]))
        cursor = end
    out.append(text[cursor:])
    return "".join(out)


def _merge_spans(text: str,
                 spans: Iterable[Tuple[int, int]],
                 ) -> Sequence[Tuple[int, int]]:
    cleaned: List[Tuple[int, int]] = []
    for start, end in spans:
        if not (0 <= start <= end <= len(text)):
            raise ValueError("span (%d, %d) out of range for %d-char text"
                             % (start, end, len(text)))
        if start < end:
            cleaned.append((start, end))
    cleaned.sort()
    merged: List[Tuple[int, int]] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
