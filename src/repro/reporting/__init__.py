"""Text renderers for the paper's tables and figures, plus redaction."""

from .redact import (
    redact,
    redact_email,
    redact_spans,
    redact_value,
)
from .latex import (
    latex_escape,
    table1_latex,
    table2_latex,
    table3_latex,
)
from .figures import (
    render_figure2,
    render_leak_trace,
    render_receiver_degree_histogram,
)
from .tables import (
    render_crawl_health,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = [
    "latex_escape",
    "render_figure2",
    "table1_latex",
    "table2_latex",
    "table3_latex",
    "render_crawl_health",
    "render_headline",
    "render_leak_trace",
    "render_receiver_degree_histogram",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "redact",
    "redact_email",
    "redact_spans",
    "redact_value",
]
