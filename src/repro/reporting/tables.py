"""Text renderers for the paper's tables.

Each renderer prints the measured structure in the paper's layout, with an
optional "paper" column for side-by-side comparison — the format used by
the benchmark harness and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.analysis import LeakAnalysis
from ..crawler.flows import ALL_STATUSES, STATUS_TAXONOMY
from ..datasets import paper
from ..tracking import PersistenceReport


def _format_cell(count: int, pct: float) -> str:
    return "%d/%.1f%%" % (count, pct)


def render_table1(analysis: LeakAnalysis,
                  compare: bool = True) -> str:
    """Table 1 (a, b, c): breakdowns of PII leakage to third parties."""
    sections: List[str] = []
    specs = (
        ("(a) By method.", analysis.table1a(), paper.TABLE1A),
        ("(b) By encoding/hashing.", analysis.table1b(), paper.TABLE1B),
        ("(c) By PII type.", analysis.table1c(), paper.TABLE1C),
    )
    for title, rows, reference in specs:
        lines = [title]
        header = "%-18s %-14s %-14s" % ("", "# Senders", "# Receivers")
        if compare:
            header += "  %-16s" % "paper (S, R)"
        lines.append(header)
        for row in rows:
            line = "%-18s %-14s %-14s" % (
                row.label,
                _format_cell(row.senders, row.sender_pct),
                _format_cell(row.receivers, row.receiver_pct))
            if compare and row.label in reference:
                ref_senders, ref_receivers = reference[row.label]
                line += "  (%d, %d)" % (ref_senders, ref_receivers)
            lines.append(line)
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def render_table2(report: PersistenceReport, compare: bool = True) -> str:
    """Table 2: persistent-tracking providers."""
    lines = ["Table 2: persistent tracking based on PII leakage "
             "(%d providers; paper: %d)"
             % (report.provider_count, paper.PERSISTENT_TRACKING_PROVIDERS)]
    lines.append("%-20s %8s  %-14s %-16s %s"
                 % ("Receiver", "#Senders", "Method", "Encoding",
                    "trackid parameter"))
    for row in report.rows:
        lines.append("%-20s %8d  %-14s %-16s %s"
                     % (row.receiver, row.senders, row.methods,
                        row.encoding, row.parameters))
    if compare:
        lines.append("")
        lines.append("Paper sender totals per provider: " + ", ".join(
            "%s=%d" % (domain, paper.table2_sender_count(domain))
            for domain in sorted(paper.TABLE2)))
    return "\n".join(lines)


def render_table3(counts: Dict[str, int], compare: bool = True) -> str:
    """Table 3: privacy-policy disclosures."""
    total = sum(counts.values()) or 1
    labels = {
        "disclose_not_specific": "Disclose PII sharing (not specific)",
        "disclose_specific": "Disclose PII sharing (specific)",
        "no_description": "No description of PII sharing",
        "explicitly_not_shared": "Explicitly disclose PII NOT shared",
    }
    lines = ["Table 3: privacy policy disclosures of leaking senders"]
    for key, label in labels.items():
        count = counts.get(key, 0)
        line = "%-38s %4d/%5.1f%%" % (label, count, 100.0 * count / total)
        if compare:
            line += "   (paper: %d)" % paper.TABLE3[key]
        lines.append(line)
    lines.append("%-38s %4d/100.0%%" % ("Total", total))
    return "\n".join(lines)


def render_table4(report, compare: bool = True) -> str:
    """Table 4: blocklist detection performance."""
    lines = ["Table 4: detection performance of well-known filters"]
    order = ("referer", "uri", "payload", "cookie", "combined", "total")
    for section_name, section, reference in (
            ("Senders", report.senders, paper.TABLE4_SENDERS),
            ("Receivers", report.receivers, paper.TABLE4_RECEIVERS)):
        lines.append("-- %s --" % section_name)
        header = "%-10s" % "Method"
        for list_name in ("easylist", "easyprivacy", "combined"):
            header += " %-18s" % list_name
        lines.append(header)
        for row_name in order:
            line = "%-10s" % row_name
            for list_name in ("easylist", "easyprivacy", "combined"):
                cell = section[list_name][row_name]
                text = "%d/%.1f%%" % (cell.blocked, cell.pct)
                if compare:
                    ref = reference[list_name][row_name]
                    text += " (%d)" % ref[0]
                line += " %-18s" % text
            lines.append(line)
    return "\n".join(lines)


def render_crawl_health(dataset, fault_plan=None) -> str:
    """Crawl-health accounting: §3.2 population table under faults.

    Every attempted site appears in exactly one outcome row (the total
    line equals the number of flows — nothing is silently dropped), each
    failure row carries its transient-vs-permanent class, and quarantined
    sites are listed by name.  Pass the crawl's ``FaultPlan`` to append
    the ground-truth injected-fault counts.
    """
    counts = dataset.status_counts()
    lines = ["Crawl health: %d sites attempted" % len(dataset.flows)]
    lines.append("%-22s %6s  %s" % ("outcome", "sites", "class"))
    for status in ALL_STATUSES:
        count = counts.get(status, 0)
        if count == 0 and status != "success":
            continue
        failure_class = STATUS_TAXONOMY.get(status)
        lines.append("%-22s %6d  %s"
                     % (status, count, failure_class or "-"))
    for status in sorted(set(counts) - set(ALL_STATUSES)):
        lines.append("%-22s %6d  %s" % (status, counts[status], "?"))
    lines.append("%-22s %6d" % ("total", len(dataset.flows)))
    retried = dataset.retried_flow_count()
    if retried:
        lines.append("flows that needed retries: %d" % retried)
    quarantined = dataset.quarantined_sites()
    if quarantined:
        lines.append("quarantined sites: %s" % ", ".join(quarantined))
    if fault_plan is not None and fault_plan.events:
        parts = ["%s=%d" % (kind, count) for kind, count
                 in sorted(fault_plan.fault_counts().items())]
        lines.append("injected faults: %s" % ", ".join(parts))
    return "\n".join(lines)


def render_headline(analysis: LeakAnalysis, total_sites: int,
                    leaking_requests: Optional[int] = None) -> str:
    """§4.2 headline statistics with paper comparison."""
    stats = analysis.headline(total_sites=total_sites)
    top = analysis.max_receiver_sender()
    lines = [
        "Headline results (measured vs paper):",
        "  leaking senders:         %d (paper %d)"
        % (stats["senders"], paper.LEAKING_SENDERS),
        "  third-party receivers:   %d (paper %d)"
        % (stats["receivers"], paper.LEAK_RECEIVERS),
        "  %% of sites leaking:      %.1f%% (paper %.1f%%)"
        % (stats.get("pct_sites_leaking", 0.0), paper.PCT_SITES_LEAKING),
        "  mean receivers/sender:   %.2f (paper %.2f)"
        % (stats["mean_receivers_per_sender"],
           paper.MEAN_RECEIVERS_PER_SENDER),
        "  %% senders with >=3:      %.2f%% (paper %.2f%%)"
        % (stats["pct_senders_with_3plus"],
           paper.PCT_SENDERS_WITH_3PLUS_RECEIVERS),
        "  max receivers/sender:    %d by %s (paper %d by %s)"
        % (stats["max_receivers_per_sender"],
           top[0] if top else "-", paper.MAX_RECEIVERS_PER_SENDER,
           paper.MAX_RECEIVERS_SENDER_DOMAIN),
    ]
    if leaking_requests is not None:
        lines.append("  leaking requests:        %d (paper %d)"
                     % (leaking_requests, paper.LEAKING_REQUESTS))
    return "\n".join(lines)
