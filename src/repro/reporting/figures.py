"""Text renderers for the paper's figures.

Figure 2 becomes an ASCII bar chart of the top receiver domains; Figures 1
and 3 are mechanism walkthroughs rendered as annotated HTTP traces.
"""

from __future__ import annotations

from typing import Sequence

from ..core.analysis import LeakAnalysis
from ..core.leakmodel import LeakEvent
from ..datasets import paper

_BAR_WIDTH = 48


def render_figure2(analysis: LeakAnalysis, top_n: int = 15,
                   compare: bool = True) -> str:
    """Figure 2: top third-party receiver domains (ASCII bars)."""
    ranking = analysis.figure2(top_n)
    if not ranking:
        return "Figure 2: no receivers"
    max_count = ranking[0][1]
    lines = ["Figure 2: top %d third-party receivers by #senders"
             % len(ranking)]
    for domain, count, pct in ranking:
        bar = "#" * max(1, int(_BAR_WIDTH * count / max_count))
        lines.append("%-24s %-48s %3d (%5.1f%%)" % (domain, bar, count, pct))
    if compare:
        lines.append("")
        lines.append("paper: facebook.com tops the ranking at %.0f%% of "
                     "senders" % paper.FACEBOOK_SENDER_PCT)
    return "\n".join(lines)


def render_leak_trace(events: Sequence[LeakEvent], title: str,
                      limit: int = 12) -> str:
    """Annotated HTTP trace of leak events (Figures 1 and 3 style)."""
    lines = [title]
    for event in list(events)[:limit]:
        lines.append("  [%s] %s -> %s" % (event.stage, event.sender,
                                          event.receiver))
        lines.append("    channel=%s  encoding=%s  pii=%s  param=%s"
                     % (event.channel, event.encoding_label,
                        event.pii_type, event.parameter))
        lines.append("    %s" % event.url[:100])
        if event.cloaked:
            lines.append("    (receiver reached via CNAME cloaking)")
    remaining = len(events) - limit
    if remaining > 0:
        lines.append("  ... %d more events" % remaining)
    return "\n".join(lines)


def render_receiver_degree_histogram(analysis: LeakAnalysis) -> str:
    """Distribution of receiver degrees (supports the §5.2 funnel)."""
    degrees = analysis.receiver_degree()
    buckets: dict = {}
    for degree in degrees.values():
        buckets[degree] = buckets.get(degree, 0) + 1
    lines = ["Receiver degree distribution (#senders -> #receivers):"]
    for degree in sorted(buckets):
        lines.append("  %3d sender(s): %3d receiver(s) %s"
                     % (degree, buckets[degree], "#" * buckets[degree]))
    return "\n".join(lines)
