"""LaTeX table export.

Renders the measured results as LaTeX ``tabular`` environments in the
paper's layout, ready to drop into a reproduction report or an extended
version of the paper.  Values are properly escaped; each table gets a
caption carrying the paper-vs-measured framing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.analysis import BreakdownRow, LeakAnalysis
from ..datasets import paper
from ..tracking import PersistenceReport

_SPECIALS = {
    "&": r"\&", "%": r"\%", "$": r"\$", "#": r"\#", "_": r"\_",
    "{": r"\{", "}": r"\}", "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}", "\\": r"\textbackslash{}",
}


def latex_escape(text: str) -> str:
    """Escape LaTeX special characters."""
    return "".join(_SPECIALS.get(char, char) for char in text)


def _tabular(column_spec: str, header: Sequence[str],
             rows: Sequence[Sequence[str]], caption: str,
             label: str) -> str:
    lines = [
        r"\begin{table}[t]",
        r"  \centering",
        r"  \caption{%s}" % latex_escape(caption),
        r"  \label{%s}" % label,
        r"  \begin{tabular}{%s}" % column_spec,
        r"    \toprule",
        "    " + " & ".join(latex_escape(cell) for cell in header)
        + r" \\",
        r"    \midrule",
    ]
    for row in rows:
        lines.append("    " + " & ".join(latex_escape(cell)
                                         for cell in row) + r" \\")
    lines.extend([
        r"    \bottomrule",
        r"  \end{tabular}",
        r"\end{table}",
    ])
    return "\n".join(lines)


def _breakdown_rows(rows: Sequence[BreakdownRow],
                    reference: Dict[str, tuple]) -> List[List[str]]:
    formatted = []
    for row in rows:
        cells = [row.label,
                 "%d/%.1f%%" % (row.senders, row.sender_pct),
                 "%d/%.1f%%" % (row.receivers, row.receiver_pct)]
        if row.label in reference:
            ref = reference[row.label]
            cells.append("%d, %d" % (ref[0], ref[1]))
        else:
            cells.append("--")
        formatted.append(cells)
    return formatted


def table1_latex(analysis: LeakAnalysis) -> str:
    """Table 1 (all three breakdowns) as consecutive tabulars."""
    blocks = []
    for title, rows, reference, label in (
            ("Breakdown of PII leakage by method (measured vs.\\ paper)",
             analysis.table1a(), paper.TABLE1A, "tab:method"),
            ("Breakdown by encoding/hashing",
             analysis.table1b(), paper.TABLE1B, "tab:encoding"),
            ("Breakdown by PII type",
             analysis.table1c(), paper.TABLE1C, "tab:piitype")):
        blocks.append(_tabular(
            "lrrr", ["", "# Senders", "# Receivers", "paper (S, R)"],
            _breakdown_rows(rows, reference), title, label))
    return "\n\n".join(blocks)


def table2_latex(report: PersistenceReport) -> str:
    """Table 2 as a tabular."""
    rows = [[row.receiver, str(row.senders), row.methods, row.encoding,
             row.parameters] for row in report.rows]
    return _tabular(
        "lrlll",
        ["Receiver", "# Senders", "Method", "Encoding", "trackid"],
        rows,
        "Third-party receivers using persistent PII leakage-based "
        "tracking (%d providers; paper: %d)"
        % (report.provider_count, paper.PERSISTENT_TRACKING_PROVIDERS),
        "tab:providers")


def table3_latex(counts: Dict[str, int]) -> str:
    """Table 3 as a tabular."""
    labels = {
        "disclose_not_specific": "Disclose PII sharing (not specific)",
        "disclose_specific": "Disclose PII sharing (specific)",
        "no_description": "No description of PII sharing",
        "explicitly_not_shared": "Explicitly disclose PII NOT shared",
    }
    total = sum(counts.values()) or 1
    rows = [[label, "%d/%.1f%%" % (counts.get(key, 0),
                                   100.0 * counts.get(key, 0) / total),
             str(paper.TABLE3[key])]
            for key, label in labels.items()]
    rows.append(["Total", "%d/100.0%%" % total, str(sum(paper.TABLE3
                                                        .values()))])
    return _tabular("lrr", ["Disclosure", "Measured", "Paper"], rows,
                    "Privacy policy disclosures of leaking first parties",
                    "tab:policies")
