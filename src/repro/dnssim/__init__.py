"""DNS substrate: zones, resolver, CNAME cloaking detection."""

from .cache import CacheStats, CachingResolver
from .flaky import FlakyResolver
from .cloaking import (
    DEFAULT_CLOAKING_ZONES,
    CloakingVerdict,
    CnameCloakingDetector,
)
from .resolver import (
    RECORD_A,
    RECORD_CNAME,
    DnsError,
    Resolution,
    Resolver,
    ResourceRecord,
    Zone,
)

__all__ = [
    "CacheStats",
    "CachingResolver",
    "DEFAULT_CLOAKING_ZONES",
    "CloakingVerdict",
    "CnameCloakingDetector",
    "DnsError",
    "FlakyResolver",
    "RECORD_A",
    "RECORD_CNAME",
    "Resolution",
    "Resolver",
    "ResourceRecord",
    "Zone",
]
