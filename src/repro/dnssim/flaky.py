"""Fault-injecting wrapper around the simulated resolver.

Real field studies lose sites to resolvers that time out, not only to
origins that are down.  :class:`FlakyResolver` injects those lookup
timeouts from a :class:`~repro.netsim.faults.FaultPlan`: ``exists()`` —
the browser's network gate — raises a transient
:class:`~repro.netsim.faults.ConnectionTimeout` on planned faults, while
genuine NXDOMAIN keeps returning ``False`` (a permanent answer that a
resilient client must *not* retry).  Analysis-side lookups
(``resolve``/``cname_chain``) are never faulted: the paper's CNAME
uncloaking runs offline against authoritative data.
"""

from __future__ import annotations

from ..netsim.faults import FAULT_DNS, ConnectionTimeout, FaultPlan
from ..psl import default_list
from .resolver import Resolution, Resolver


class FlakyResolver:
    """Drop-in :class:`Resolver` wrapper with planned lookup timeouts."""

    def __init__(self, resolver: Resolver, plan: FaultPlan) -> None:
        self.resolver = resolver
        self.plan = plan

    def exists(self, name: str) -> bool:
        # DNS faults share the per-origin streak with the HTTP gate (the
        # convergence contract), so the lookup is keyed by registrable
        # domain just like the server wrapper.
        origin = default_list().registrable_domain(name) or name
        if self.plan.next_dns_fault(name, origin=origin) is not None:
            raise ConnectionTimeout(name, kind=FAULT_DNS)
        return self.resolver.exists(name)

    def resolve(self, name: str) -> Resolution:
        return self.resolver.resolve(name)

    def cname_chain(self, name: str):
        return self.resolver.cname_chain(name)
