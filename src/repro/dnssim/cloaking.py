"""CNAME cloaking detection (§4.1).

The paper checks the CNAME records of every subdomain of the visited sites
and matches the answer set against published CNAME-cloaking blocklists
(AdGuard's cname-trackers list and the NextDNS list).  A subdomain whose
chain lands in a known tracker zone is reclassified as *third-party* and
attributed to the tracker that operates the target zone.

This module ships a blocklist modelled on those lists: it covers the cloaked
tracking services relevant to the study — most importantly Adobe Experience
Cloud (``*.omtrdc.net`` / ``*.2o7.net``), the provider behind the paper's
five cookie-channel leaks and the ``adobe_cname`` row of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..psl import PublicSuffixList, default_list
from .resolver import Resolver

#: Cloaking target zones -> operating tracker organisation.  Modelled on the
#: AdGuard cname-trackers and NextDNS cloaking blocklists (June 2021).
DEFAULT_CLOAKING_ZONES: Dict[str, str] = {
    "omtrdc.net": "Adobe",
    "2o7.net": "Adobe",
    "data.adobedc.net": "Adobe",
    "eulerian.net": "Eulerian",
    "at-o.net": "Eulerian",
    "axept.io": "Axeptio",
    "actonservice.com": "Act-On",
    "postclick.io": "Ingenious Technologies",
    "online-metrix.net": "ThreatMetrix",
    "wt-eu02.net": "Webtrekk",
    "webtrekk.net": "Webtrekk",
    "oghub.io": "Oracle",
    "tagcommander.com": "Commanders Act",
    "trackedlink.net": "Dotdigital",
    "dnsdelegation.io": "Criteo",
    "storetail.io": "Criteo",
    "keyade.com": "Keyade",
    "intentmedia.net": "Intent Media",
    "partner.intuit.com": "Intuit",
    "affex.org": "Affex",
}


@dataclass(frozen=True)
class CloakingVerdict:
    """Classification of one first-party subdomain."""

    hostname: str
    cname_chain: Tuple[str, ...]
    cloaked: bool
    tracker_zone: Optional[str] = None
    organisation: Optional[str] = None

    @property
    def effective_domain(self) -> str:
        """Domain to attribute traffic to: tracker zone when cloaked."""
        return self.tracker_zone if self.cloaked else self.hostname


class CnameCloakingDetector:
    """Detects cloaked subdomains by resolving and matching CNAME chains."""

    def __init__(self, resolver: Resolver,
                 cloaking_zones: Optional[Dict[str, str]] = None,
                 psl: Optional[PublicSuffixList] = None) -> None:
        self._resolver = resolver
        self._zones = dict(DEFAULT_CLOAKING_ZONES
                           if cloaking_zones is None else cloaking_zones)
        self._psl = psl or default_list()

    def add_zone(self, zone: str, organisation: str) -> None:
        """Register an additional cloaking target zone."""
        self._zones[zone.lower()] = organisation

    def _match_zone(self, name: str) -> Optional[str]:
        name = name.lower()
        for zone in self._zones:
            if name == zone or name.endswith("." + zone):
                return zone
        return None

    def classify(self, hostname: str, site_host: str) -> CloakingVerdict:
        """Classify ``hostname`` (a subdomain of ``site_host``).

        A host is *cloaked* when it is first-party by registrable domain but
        its CNAME chain reaches a known tracker zone.
        """
        chain = self._resolver.cname_chain(hostname)
        if not self._psl.same_party(hostname, site_host):
            # Plain third-party host; cloaking does not apply.
            return CloakingVerdict(hostname=hostname, cname_chain=chain,
                                   cloaked=False)
        for target in chain:
            zone = self._match_zone(target)
            if zone is not None:
                return CloakingVerdict(
                    hostname=hostname, cname_chain=chain, cloaked=True,
                    tracker_zone=zone, organisation=self._zones[zone])
        return CloakingVerdict(hostname=hostname, cname_chain=chain,
                               cloaked=False)

    def cloaked_hosts(self, hostnames: Iterable[str],
                      site_host: str) -> Dict[str, CloakingVerdict]:
        """Classify many subdomains; returns only the cloaked ones."""
        verdicts = {}
        for hostname in hostnames:
            verdict = self.classify(hostname, site_host)
            if verdict.cloaked:
                verdicts[hostname] = verdict
        return verdicts
