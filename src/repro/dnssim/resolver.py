"""Simulated DNS with CNAME chain resolution.

CNAME cloaking — pointing a first-party subdomain (``metrics.shop.example``)
at a tracker's hostname via a CNAME record — hides third-party trackers from
origin-based privacy protections.  The paper detects it by resolving the
CNAME records of every subdomain of the visited sites; this resolver provides
that capability for the synthetic web.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

RECORD_A = "A"
RECORD_CNAME = "CNAME"

_MAX_CHAIN = 16


class DnsError(Exception):
    """Raised for NXDOMAIN and CNAME loops."""


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record (A or CNAME)."""

    name: str
    rtype: str
    value: str

    def __post_init__(self) -> None:
        if self.rtype not in (RECORD_A, RECORD_CNAME):
            raise ValueError("unsupported record type: %r" % self.rtype)


@dataclass
class Zone:
    """A collection of records; the simulated authoritative data."""

    records: Dict[str, List[ResourceRecord]] = field(default_factory=dict)

    def add(self, name: str, rtype: str, value: str) -> None:
        record = ResourceRecord(name.lower().rstrip("."), rtype,
                                value.lower().rstrip("."))
        self.records.setdefault(record.name, []).append(record)

    def add_a(self, name: str, address: str = "203.0.113.10") -> None:
        self.add(name, RECORD_A, address)

    def add_cname(self, name: str, target: str) -> None:
        self.add(name, RECORD_CNAME, target)

    def lookup(self, name: str) -> List[ResourceRecord]:
        return self.records.get(name.lower().rstrip("."), [])


@dataclass
class Resolution:
    """Result of resolving a name: the CNAME chain and final address."""

    query: str
    cname_chain: Tuple[str, ...]
    address: str

    @property
    def canonical_name(self) -> str:
        """The final name in the chain (the query itself if no CNAME)."""
        return self.cname_chain[-1] if self.cname_chain else self.query


class Resolver:
    """Iterative resolver over a :class:`Zone` with loop protection."""

    def __init__(self, zone: Zone) -> None:
        self._zone = zone

    def resolve(self, name: str) -> Resolution:
        """Resolve ``name`` to an address, following CNAMEs.

        Raises :class:`DnsError` on NXDOMAIN or a CNAME loop.
        """
        query = name.lower().rstrip(".")
        chain: List[str] = []
        current = query
        seen = {current}
        for _ in range(_MAX_CHAIN):
            records = self._zone.lookup(current)
            cname = next((r for r in records if r.rtype == RECORD_CNAME), None)
            if cname is not None:
                current = cname.value
                if current in seen:
                    raise DnsError("CNAME loop at %s" % current)
                seen.add(current)
                chain.append(current)
                continue
            a_record = next((r for r in records if r.rtype == RECORD_A), None)
            if a_record is None:
                raise DnsError("NXDOMAIN: %s" % current)
            return Resolution(query=query, cname_chain=tuple(chain),
                              address=a_record.value)
        raise DnsError("CNAME chain too long for %s" % query)

    def cname_chain(self, name: str) -> Tuple[str, ...]:
        """The CNAME chain for ``name`` (empty when none or NXDOMAIN)."""
        try:
            return self.resolve(name).cname_chain
        except DnsError:
            return ()

    def exists(self, name: str) -> bool:
        """Whether ``name`` resolves to an address."""
        try:
            self.resolve(name)
        except DnsError:
            return False
        return True
