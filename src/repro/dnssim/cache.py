"""Caching stub resolver with TTLs and negative caching.

The plain :class:`~repro.dnssim.Resolver` answers straight from the zone.
Real clients sit behind a caching stub resolver; for crawls that resolve
the same tracker hostnames thousands of times, the cache is what actually
serves.  This resolver caches positive answers for their TTL and NXDOMAIN
results for a (shorter) negative TTL, against a caller-supplied clock —
the same simulated clock the browser uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .resolver import DnsError, Resolution, Resolver

_DEFAULT_TTL = 300.0
_DEFAULT_NEGATIVE_TTL = 30.0


@dataclass
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses + self.negative_hits

    @property
    def hit_ratio(self) -> float:
        total = self.total
        return (self.hits + self.negative_hits) / total if total else 0.0


class CachingResolver:
    """TTL cache in front of an upstream :class:`Resolver`.

    ``clock`` is any zero-argument callable returning the current
    simulated time in seconds.
    """

    def __init__(self, upstream: Resolver, clock: Callable[[], float],
                 ttl: float = _DEFAULT_TTL,
                 negative_ttl: float = _DEFAULT_NEGATIVE_TTL) -> None:
        if ttl <= 0 or negative_ttl <= 0:
            raise ValueError("TTLs must be positive")
        self._upstream = upstream
        self._clock = clock
        self._ttl = ttl
        self._negative_ttl = negative_ttl
        #: name -> (expiry, Resolution or None for NXDOMAIN)
        self._cache: Dict[str, Tuple[float, Optional[Resolution]]] = {}
        self.stats = CacheStats()

    def _lookup_cached(self, name: str) -> Optional[
            Tuple[float, Optional[Resolution]]]:
        entry = self._cache.get(name)
        if entry is None:
            return None
        expiry, _ = entry
        if expiry <= self._clock():
            del self._cache[name]
            return None
        return entry

    def resolve(self, name: str) -> Resolution:
        """Resolve with caching; raises :class:`DnsError` on NXDOMAIN."""
        key = name.lower().rstrip(".")
        cached = self._lookup_cached(key)
        if cached is not None:
            _, resolution = cached
            if resolution is None:
                self.stats.negative_hits += 1
                raise DnsError("NXDOMAIN (cached): %s" % key)
            self.stats.hits += 1
            return resolution
        self.stats.misses += 1
        now = self._clock()
        try:
            resolution = self._upstream.resolve(key)
        except DnsError:
            self._cache[key] = (now + self._negative_ttl, None)
            raise
        self._cache[key] = (now + self._ttl, resolution)
        return resolution

    # The Resolver interface the browser engine consumes.

    def cname_chain(self, name: str) -> Tuple[str, ...]:
        try:
            return self.resolve(name).cname_chain
        except DnsError:
            return ()

    def exists(self, name: str) -> bool:
        try:
            self.resolve(name)
        except DnsError:
            return False
        return True

    def flush(self) -> None:
        """Drop every cached entry."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
