"""Embedded Public Suffix List snapshot.

The paper separates first-party from third-party resources using the Mozilla
Public Suffix List.  Live fetching is impossible offline, so this module
embeds a snapshot of the rules relevant to this study: all gTLDs and ccTLDs
used by the synthetic web plus the structurally interesting entries
(wildcards, exceptions, multi-label suffixes) needed to exercise the full
matching algorithm.

The snapshot uses the PSL's own file syntax (comments with ``//``, wildcard
``*`` labels, exception ``!`` rules) and is parsed by
:mod:`repro.psl.rules`, so swapping in a full upstream list is a one-line
change.
"""

SNAPSHOT = """\
// ===BEGIN ICANN DOMAINS===
com
org
net
edu
gov
int
mil
io
co
ai
app
dev
shop
store
online
site
biz
info
me
tv
cc
us
uk
co.uk
org.uk
ac.uk
gov.uk
jp
co.jp
or.jp
ne.jp
ac.jp
go.jp
de
com.de
fr
it
nl
es
com.es
se
no
fi
dk
pl
com.pl
ru
com.ru
cn
com.cn
net.cn
org.cn
in
co.in
net.in
org.in
au
com.au
net.au
org.au
nz
co.nz
net.nz
org.nz
br
com.br
net.br
org.br
mx
com.mx
kr
co.kr
or.kr
tw
com.tw
sg
com.sg
hk
com.hk
id
co.id
th
co.th
vn
com.vn
ca
ch
at
be
ie
pt
gr
cz
tr
com.tr
za
co.za
// Kobe, Japan wildcard with exception (exercises the full algorithm)
*.kobe.jp
!city.kobe.jp
// Compute platforms (private-domains section entries used by trackers)
herokuapp.com
github.io
cloudfront.net
amazonaws.com
s3.amazonaws.com
azurewebsites.net
// ===END ICANN DOMAINS===
"""
