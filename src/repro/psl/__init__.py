"""Public Suffix List substrate (first-party vs third-party classification)."""

from .rules import (
    PublicSuffixList,
    default_list,
    is_third_party,
    public_suffix,
    registrable_domain,
)

__all__ = [
    "PublicSuffixList",
    "default_list",
    "is_third_party",
    "public_suffix",
    "registrable_domain",
]
