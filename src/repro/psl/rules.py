"""Public Suffix List matching (publicsuffix.org algorithm).

Implements the canonical algorithm: among all rules matching a domain, the
exception rule wins if present, otherwise the rule with the most labels; the
public suffix is the matched labels (minus one for exceptions) and the
registrable domain ("eTLD+1") is the suffix plus one more label.  Unlisted
TLDs fall back to the implicit ``*`` rule.

This is the primitive the paper uses to decide whether an HTTP request is a
*third-party* request: two hosts are "same party" when their registrable
domains are equal.

The PSL is queried for every captured request — several times per request
across partitioning, attribution and heuristics — so lookups are served
from two layers of precomputation: rules are bucketed by their TLD label
(only a handful of rules can ever match a given host, not the whole
snapshot), and per-host results are memoised on the instance (the crawl
and the detector revisit the same few hundred hosts tens of thousands of
times).  Both layers are pure caches over the immutable rule set, so
every query returns exactly what the uncached algorithm returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .data import SNAPSHOT


@dataclass(frozen=True)
class Rule:
    """One PSL rule: its labels (reversed), wildcard/exception flags."""

    labels: Tuple[str, ...]
    is_exception: bool

    @property
    def label_count(self) -> int:
        return len(self.labels)


class PublicSuffixList:
    """Parsed rule set with suffix/registrable-domain queries."""

    def __init__(self, text: Optional[str] = None) -> None:
        self._rules: Dict[Tuple[str, ...], Rule] = {}
        self._load(text if text is not None else SNAPSHOT)
        # TLD-label index: a rule can only match hosts whose last label
        # equals the rule's first (reversed) label, or anything for the
        # rare leading-wildcard rules — bucketing turns the per-lookup
        # scan from every rule in the snapshot into a handful.
        self._by_tld: Dict[str, List[Rule]] = {}
        for key_labels, rule in self._rules.items():
            self._by_tld.setdefault(key_labels[0], []).append(rule)
        self._wildcard_tld: List[Rule] = self._by_tld.pop("*", [])
        # Per-host memos (host -> result); hosts repeat enormously
        # across a crawl, and results are pure functions of the rules.
        self._suffix_cache: Dict[str, str] = {}
        self._registrable_cache: Dict[str, Optional[str]] = {}

    def _load(self, text: str) -> None:
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("//"):
                continue
            is_exception = line.startswith("!")
            if is_exception:
                line = line[1:]
            labels = tuple(reversed(line.lower().split(".")))
            self._rules[labels] = Rule(labels, is_exception)

    def _matching_rules(self, labels: Tuple[str, ...]) -> List[Rule]:
        matches = []
        for rule in self._by_tld.get(labels[0], ()):
            if rule.label_count > len(labels):
                continue
            if all(rule_label in ("*", domain_label)
                   for rule_label, domain_label
                   in zip(rule.labels, labels)):
                matches.append(rule)
        for rule in self._wildcard_tld:
            if rule.label_count > len(labels):
                continue
            if all(rule_label in ("*", domain_label)
                   for rule_label, domain_label
                   in zip(rule.labels, labels)):
                matches.append(rule)
        return matches

    def public_suffix(self, host: str) -> str:
        """The public suffix of ``host`` (e.g. ``co.uk`` for ``a.b.co.uk``).

        A single-label host is its own suffix; unknown TLDs match the
        implicit ``*`` rule.
        """
        host = _normalize(host)
        cached = self._suffix_cache.get(host)
        if cached is not None:
            return cached
        labels = tuple(reversed(host.split(".")))
        matches = self._matching_rules(labels)

        exception = next((r for r in matches if r.is_exception), None)
        if exception is not None:
            suffix_len = exception.label_count - 1
        elif matches:
            suffix_len = max(r.label_count for r in matches)
        else:
            suffix_len = 1  # implicit "*" rule
        suffix_labels = labels[:suffix_len]
        suffix = ".".join(reversed(suffix_labels))
        self._suffix_cache[host] = suffix
        return suffix

    def registrable_domain(self, host: str) -> Optional[str]:
        """The eTLD+1 of ``host``, or ``None`` if host *is* a public suffix."""
        host = _normalize(host)
        if host in self._registrable_cache:
            return self._registrable_cache[host]
        suffix = self.public_suffix(host)
        if host == suffix:
            registrable: Optional[str] = None
        else:
            labels = host.split(".")
            suffix_count = suffix.count(".") + 1
            registrable = ".".join(labels[-(suffix_count + 1):])
        self._registrable_cache[host] = registrable
        return registrable

    def same_party(self, host_a: str, host_b: str) -> bool:
        """Whether two hosts share a registrable domain (first-party test)."""
        domain_a = self.registrable_domain(host_a) or _normalize(host_a)
        domain_b = self.registrable_domain(host_b) or _normalize(host_b)
        return domain_a == domain_b

    def is_third_party(self, request_host: str, site_host: str) -> bool:
        """The paper's third-party test: different registrable domains."""
        return not self.same_party(request_host, site_host)


def _normalize(host: str) -> str:
    host = host.strip().rstrip(".").lower()
    if not host:
        raise ValueError("empty host")
    return host


_DEFAULT: Optional[PublicSuffixList] = None


def default_list() -> PublicSuffixList:
    """Process-wide PSL built from the embedded snapshot (lazily created)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList()
    return _DEFAULT


def registrable_domain(host: str) -> Optional[str]:
    """Module-level convenience over :func:`default_list`."""
    return default_list().registrable_domain(host)


def public_suffix(host: str) -> str:
    """Module-level convenience over :func:`default_list`."""
    return default_list().public_suffix(host)


def is_third_party(request_host: str, site_host: str) -> bool:
    """Module-level convenience over :func:`default_list`."""
    return default_list().is_third_party(request_host, site_host)
