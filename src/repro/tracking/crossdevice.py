"""Cross-browser and cross-device matching (§5.1).

The paper's core argument for why PII-based identifiers beat third-party
cookies: a cookie is scoped to one browser profile on one device, but a
hashed email is identical wherever the same user signs in.  This module
demonstrates the mechanism by correlating the leak datasets of two
independent crawls (different browser profiles or "devices", i.e. fresh
cookie jars): for each receiver, identifiers observed in both datasets
with the same value link the two profiles to one user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..core.leakmodel import LeakEvent


@dataclass(frozen=True)
class IdentityMatch:
    """One receiver-side linkage between two browsing profiles."""

    receiver: str
    token: str                  # the shared identifier value
    parameter_a: str
    parameter_b: str
    senders_a: Tuple[str, ...]  # sites observed in profile A
    senders_b: Tuple[str, ...]  # sites observed in profile B

    @property
    def linked_sites(self) -> int:
        """Total sites whose history this receiver can now join."""
        return len(set(self.senders_a) | set(self.senders_b))


def _id_observations(events: Sequence[LeakEvent]) -> Dict[
        Tuple[str, str], Dict[str, Set[str]]]:
    """(receiver, token) -> {parameter -> senders}."""
    observations: Dict[Tuple[str, str], Dict[str, Set[str]]] = {}
    for event in events:
        if not event.parameter or not event.token:
            continue
        params = observations.setdefault((event.receiver, event.token), {})
        params.setdefault(event.parameter, set()).add(event.sender)
    return observations


def match_profiles(events_a: Sequence[LeakEvent],
                   events_b: Sequence[LeakEvent]) -> List[IdentityMatch]:
    """Receiver-side identity joins between two crawl datasets.

    A match means: the same receiver obtained the same identifier value in
    both profiles, so the tracking provider can merge the two browsing
    histories server-side — no cookies required.
    """
    observations_a = _id_observations(events_a)
    observations_b = _id_observations(events_b)
    matches: List[IdentityMatch] = []
    for (receiver, token), params_a in observations_a.items():
        params_b = observations_b.get((receiver, token))
        if params_b is None:
            continue
        parameter_a = sorted(params_a)[0]
        parameter_b = sorted(params_b)[0]
        senders_a = tuple(sorted(set().union(*params_a.values())))
        senders_b = tuple(sorted(set().union(*params_b.values())))
        matches.append(IdentityMatch(
            receiver=receiver, token=token,
            parameter_a=parameter_a, parameter_b=parameter_b,
            senders_a=senders_a, senders_b=senders_b))
    matches.sort(key=lambda match: (-match.linked_sites, match.receiver))
    return matches


def linkable_receivers(matches: Sequence[IdentityMatch]) -> List[str]:
    """Receivers able to track the user across the two profiles."""
    return sorted({match.receiver for match in matches})
