"""Tracker-side browsing-history reconstruction (§5.1's end product).

What does a tracking provider actually *have* after PII-based tracking?
A server-side log keyed by the PII identifier, from which it can read the
user's browsing history in order.  This module reconstructs exactly that
view from detected leak events: per (receiver, identifier), the
time-ordered sequence of sites and flow stages the user touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.leakmodel import LeakEvent


@dataclass(frozen=True)
class TimelineEntry:
    """One observation in a tracker's per-user log."""

    timestamp: float
    sender: str
    stage: str
    parameter: Optional[str]
    url: str


@dataclass(frozen=True)
class UserTimeline:
    """The reconstructed history one receiver holds for one identifier."""

    receiver: str
    identifier: str                # the PII token used as the join key
    entries: Tuple[TimelineEntry, ...]

    @property
    def sites(self) -> List[str]:
        """Distinct sites in first-seen order."""
        seen: List[str] = []
        for entry in self.entries:
            if entry.sender not in seen:
                seen.append(entry.sender)
        return seen

    @property
    def span(self) -> float:
        """Seconds between the first and last observation."""
        if len(self.entries) < 2:
            return 0.0
        return self.entries[-1].timestamp - self.entries[0].timestamp

    def visits_between(self, start: float, end: float) -> List[TimelineEntry]:
        """Observations within a simulated time window."""
        return [entry for entry in self.entries
                if start <= entry.timestamp <= end]


def reconstruct_timelines(events: Sequence[LeakEvent],
                          receiver: Optional[str] = None,
                          min_entries: int = 1) -> List[UserTimeline]:
    """Build per-(receiver, identifier) timelines from leak events.

    Events without an identifier parameter (e.g. referer leaks) are
    excluded: they leak PII but give the receiver no keyed log entry.
    """
    grouped: Dict[Tuple[str, str], List[LeakEvent]] = {}
    for event in events:
        if not event.parameter or not event.token:
            continue
        if receiver is not None and event.receiver != receiver:
            continue
        grouped.setdefault((event.receiver, event.token),
                           []).append(event)
    timelines = []
    for (event_receiver, token), observations in grouped.items():
        observations.sort(key=lambda e: e.timestamp)
        entries = tuple(TimelineEntry(
            timestamp=e.timestamp, sender=e.sender, stage=e.stage,
            parameter=e.parameter, url=e.url) for e in observations)
        if len(entries) >= min_entries:
            timelines.append(UserTimeline(receiver=event_receiver,
                                          identifier=token,
                                          entries=entries))
    timelines.sort(key=lambda t: (-len(t.entries), t.receiver))
    return timelines


def render_timeline(timeline: UserTimeline, limit: int = 20) -> str:
    """Human-readable rendering of one tracker-side log."""
    lines = ["%s's log for id %s... (%d observations over %d sites)"
             % (timeline.receiver, timeline.identifier[:20],
                len(timeline.entries), len(timeline.sites))]
    for entry in timeline.entries[:limit]:
        lines.append("  t=%10.2f  %-28s %-9s %s"
                     % (entry.timestamp, entry.sender, entry.stage,
                        entry.url[:60]))
    remaining = len(timeline.entries) - limit
    if remaining > 0:
        lines.append("  ... %d more observations" % remaining)
    return "\n".join(lines)
