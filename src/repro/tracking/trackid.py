"""PII identifier parameter ("trackid") inference (§5.2).

For each third-party receiver, looks for the *parameter names* that carry
PII values — in URI query strings, payload bodies and cookies — and groups
them per receiver.  A receiver with a stable PII-bearing parameter across
senders is a candidate persistent tracker: the parameter is its user
identifier slot (Facebook's ``udff[em]``, Criteo's ``p0``, …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..core.analysis import encoding_label
from ..core.leakmodel import LeakEvent

#: Generic event parameters that are never identifiers even if a PII token
#: appears in them (e.g. a full URL captured into ``dl``).
_NON_ID_PARAMS = frozenset({"ev", "dl", "rl", "if", "ts"})


@dataclass(frozen=True)
class TrackIdParameter:
    """One inferred identifier parameter of a receiver."""

    receiver: str
    parameter: str
    location: str                 # query / body / cookie
    senders: Tuple[str, ...]      # senders observed using it
    tokens: Tuple[str, ...]       # distinct PII token values observed
    encodings: Tuple[str, ...]    # encoding labels observed

    @property
    def sender_count(self) -> int:
        return len(self.senders)

    @property
    def is_cross_site(self) -> bool:
        """Same identifier received from more than one sender."""
        return len(self.senders) >= 2 and len(set(self.tokens)) >= 1


class TrackIdAnalyzer:
    """Infers identifier parameters from leak events."""

    def __init__(self, events: Sequence[LeakEvent]) -> None:
        self.events = [e for e in events if e.parameter
                       and e.parameter not in _NON_ID_PARAMS]

    def parameters(self) -> List[TrackIdParameter]:
        """All inferred (receiver, parameter) identifier slots."""
        grouped: Dict[Tuple[str, str, str], List[LeakEvent]] = {}
        for event in self.events:
            key = (event.receiver, event.parameter, event.location)
            grouped.setdefault(key, []).append(event)
        result = []
        for (receiver, parameter, location), events in grouped.items():
            senders = tuple(sorted({e.sender for e in events}))
            tokens = tuple(sorted({e.token for e in events if e.token}))
            encodings = tuple(sorted({encoding_label(e.chain)
                                      for e in events}))
            result.append(TrackIdParameter(
                receiver=receiver, parameter=parameter, location=location,
                senders=senders, tokens=tokens, encodings=encodings))
        result.sort(key=lambda p: (-p.sender_count, p.receiver, p.parameter))
        return result

    def parameters_of(self, receiver: str) -> List[TrackIdParameter]:
        return [p for p in self.parameters() if p.receiver == receiver]

    def receivers_with_stable_id(self, min_senders: int = 2) -> List[str]:
        """Receivers whose identifier parameter recurs across senders.

        These are the paper's 34 receivers that "get the same ID from more
        than one first-party sender".
        """
        seen: Set[str] = set()
        for parameter in self.parameters():
            if parameter.sender_count >= min_senders:
                seen.add(parameter.receiver)
        return sorted(seen)
