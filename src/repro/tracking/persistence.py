"""Persistent-tracking classification and Table 2 construction (§5.2).

Implements the paper's three-step funnel:

1. group the leaking senders with their receivers and infer each
   receiver's PII identifier parameters (:mod:`repro.tracking.trackid`);
2. keep receivers that obtain the *same identifier from more than one
   sender* (cross-site tracking capability — 34 in the paper);
3. keep those whose identifier also appears on ordinary *subpages* of the
   senders, not just in the authentication flow (indisputable persistent
   tracking — the paper's 20 providers, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..core.analysis import LeakAnalysis, encoding_label
from ..core.leakmodel import LeakEvent
from ..netsim import STAGE_SUBPAGE
from .trackid import TrackIdAnalyzer


@dataclass(frozen=True)
class Table2Row:
    """One (receiver, sender-group) row of Table 2."""

    receiver: str
    senders: int
    methods: str          # e.g. "uri/payload"
    encoding: str         # e.g. "sha256"
    parameters: str       # trackid parameter names, "/"-joined


@dataclass(frozen=True)
class PersistenceReport:
    """Output of the §5.2 analysis."""

    cross_site_receivers: Tuple[str, ...]     # paper: 34
    persistent_receivers: Tuple[str, ...]     # paper: 20
    rows: Tuple[Table2Row, ...]               # Table 2

    @property
    def provider_count(self) -> int:
        return len(self.persistent_receivers)


class PersistenceAnalyzer:
    """Runs the full §5.2 funnel over detected leak events."""

    def __init__(self, events: Sequence[LeakEvent]) -> None:
        self.events = list(events)
        self.analysis = LeakAnalysis(self.events)
        self.trackids = TrackIdAnalyzer(self.events)

    def cross_site_receivers(self) -> List[str]:
        """Receivers getting the same ID from more than one sender.

        "Same ID" follows the paper's definition: the same PII value
        arriving in the same identifier parameter from several senders.
        Different encodings of one email still count — the provider can
        join them trivially (hash the plaintext it received elsewhere), and
        Table 2 itself lists providers accepting several encoding forms in
        one parameter (criteo's ``p0``).
        """
        result: Set[str] = set()
        for parameter in self.trackids.parameters():
            if parameter.sender_count < 2:
                continue
            # The same underlying PII surface form from >= 2 senders.
            form_senders: Dict[str, Set[str]] = {}
            for event in self.events:
                if event.receiver != parameter.receiver:
                    continue
                if event.parameter != parameter.parameter:
                    continue
                form_senders.setdefault(event.surface_form,
                                        set()).add(event.sender)
            if any(len(senders) >= 2 for senders in form_senders.values()):
                result.add(parameter.receiver)
        return sorted(result)

    def persistent_receivers(self) -> List[str]:
        """Cross-site receivers whose ID also appears on subpages."""
        cross_site = set(self.cross_site_receivers())
        subpage_receivers = {
            event.receiver for event in self.events
            if event.stage == STAGE_SUBPAGE and event.parameter}
        return sorted(cross_site & subpage_receivers)

    def table2(self) -> List[Table2Row]:
        """Table 2: per-provider breakdown by (method, encoding) group."""
        persistent = self.persistent_receivers()
        rows: List[Table2Row] = []
        for receiver in persistent:
            groups: Dict[Tuple[str, str], Dict[str, Set[str]]] = {}
            for rel in self.analysis.relationships_of_receiver(receiver):
                id_events = [e for e in rel.events if e.parameter]
                if not id_events:
                    continue
                methods = "/".join(sorted({e.channel for e in id_events}))
                encodings = "/".join(sorted({encoding_label(e.chain)
                                             for e in id_events}))
                group = groups.setdefault((methods, encodings),
                                          {"senders": set(), "params": set()})
                group["senders"].add(rel.sender)
                group["params"].update(e.parameter for e in id_events
                                       if e.parameter)
            for (methods, encodings), group in sorted(
                    groups.items(),
                    key=lambda item: -len(item[1]["senders"])):
                rows.append(Table2Row(
                    receiver=receiver, senders=len(group["senders"]),
                    methods=methods, encoding=encodings,
                    parameters="/".join(sorted(group["params"]))))
        rows.sort(key=lambda row: (row.receiver, -row.senders))
        return rows

    def report(self) -> PersistenceReport:
        return PersistenceReport(
            cross_site_receivers=tuple(self.cross_site_receivers()),
            persistent_receivers=tuple(self.persistent_receivers()),
            rows=tuple(self.table2()))
