"""Tracker-ecosystem graph analytics.

Builds the bipartite sender/receiver graph from leak relationships and
derives the ecosystem-structure measures measurement studies report on
top of raw counts: tracker reach and coverage concentration, receiver
co-occurrence (which trackers ride the same pages), and the user-exposure
view (how many PII receivers one authentication flow feeds on average).

Uses :mod:`networkx` for the graph substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from ..core.analysis import LeakAnalysis

SENDER = "sender"
RECEIVER = "receiver"


def build_leak_graph(analysis: LeakAnalysis) -> "nx.Graph":
    """The bipartite sender-receiver graph of leak relationships.

    Nodes carry a ``kind`` attribute (sender/receiver); edges carry the
    relationship's channels and encodings.
    """
    graph = nx.Graph()
    for rel in analysis.relationships():
        graph.add_node(rel.sender, kind=SENDER)
        graph.add_node(rel.receiver, kind=RECEIVER)
        graph.add_edge(rel.sender, rel.receiver,
                       channels=tuple(sorted(rel.channels)),
                       encodings=tuple(sorted(rel.encodings)))
    return graph


def receiver_reach(graph: "nx.Graph") -> Dict[str, int]:
    """receiver -> number of senders feeding it (its cross-site reach)."""
    return {node: graph.degree(node)
            for node, data in graph.nodes(data=True)
            if data["kind"] == RECEIVER}


def coverage_curve(graph: "nx.Graph") -> List[Tuple[int, float]]:
    """Cumulative sender coverage of the top-k receivers.

    Entry (k, pct): blocking the k highest-reach receivers would cut the
    leakage of pct% of senders entirely.  Quantifies how concentrated the
    ecosystem is (the paper's Figure 2 tail in one series).
    """
    senders = [node for node, data in graph.nodes(data=True)
               if data["kind"] == SENDER]
    ranked = sorted(receiver_reach(graph).items(),
                    key=lambda item: (-item[1], item[0]))
    covered: set = set()
    curve: List[Tuple[int, float]] = []
    blocked_receivers: set = set()
    for k, (receiver, _) in enumerate(ranked, start=1):
        blocked_receivers.add(receiver)
        fully_covered = sum(
            1 for sender in senders
            if set(graph.neighbors(sender)) <= blocked_receivers)
        curve.append((k, 100.0 * fully_covered / len(senders)))
    return curve


def receiver_cooccurrence(graph: "nx.Graph",
                          min_shared: int = 2) -> List[Tuple[str, str, int]]:
    """Receiver pairs embedded by at least ``min_shared`` common senders.

    Co-occurring receivers see the same identifier from the same sites —
    the precondition for server-side data sharing the paper warns about
    ("this ID can be used to share data among many tracking providers").
    """
    receivers = [node for node, data in graph.nodes(data=True)
                 if data["kind"] == RECEIVER]
    pairs: List[Tuple[str, str, int]] = []
    for index, first in enumerate(receivers):
        first_senders = set(graph.neighbors(first))
        for second in receivers[index + 1:]:
            shared = len(first_senders & set(graph.neighbors(second)))
            if shared >= min_shared:
                ordered = tuple(sorted((first, second)))
                pairs.append((ordered[0], ordered[1], shared))
    pairs.sort(key=lambda item: (-item[2], item[0], item[1]))
    return pairs


@dataclass(frozen=True)
class ExposureSummary:
    """User-exposure view of one crawl."""

    flows_with_leakage: int
    mean_receivers_per_flow: float
    max_receivers_per_flow: int
    pct_flows_feeding_facebook: float


def exposure_summary(analysis: LeakAnalysis) -> ExposureSummary:
    """How much one user's authentication activity feeds the ecosystem."""
    graph = build_leak_graph(analysis)
    senders = [node for node, data in graph.nodes(data=True)
               if data["kind"] == SENDER]
    if not senders:
        return ExposureSummary(0, 0.0, 0, 0.0)
    degrees = [graph.degree(sender) for sender in senders]
    facebook = sum(1 for sender in senders
                   if graph.has_edge(sender, "facebook.com"))
    return ExposureSummary(
        flows_with_leakage=len(senders),
        mean_receivers_per_flow=sum(degrees) / len(degrees),
        max_receivers_per_flow=max(degrees),
        pct_flows_feeding_facebook=100.0 * facebook / len(senders))
