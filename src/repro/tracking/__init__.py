"""Persistent-tracking analysis (§5): trackid inference, persistence,
cross-browser/device identity matching."""

from .crossdevice import IdentityMatch, linkable_receivers, match_profiles
from .graph import (
    ExposureSummary,
    build_leak_graph,
    coverage_curve,
    exposure_summary,
    receiver_cooccurrence,
    receiver_reach,
)
from .persistence import (
    PersistenceAnalyzer,
    PersistenceReport,
    Table2Row,
)
from .timeline import (
    TimelineEntry,
    UserTimeline,
    reconstruct_timelines,
    render_timeline,
)
from .trackid import TrackIdAnalyzer, TrackIdParameter

__all__ = [
    "ExposureSummary",
    "IdentityMatch",
    "build_leak_graph",
    "coverage_curve",
    "exposure_summary",
    "receiver_cooccurrence",
    "receiver_reach",
    "PersistenceAnalyzer",
    "PersistenceReport",
    "Table2Row",
    "TimelineEntry",
    "TrackIdAnalyzer",
    "UserTimeline",
    "reconstruct_timelines",
    "render_timeline",
    "TrackIdParameter",
    "linkable_receivers",
    "match_profiles",
]
