"""Content-blocking browser extension (uBlock/Adblock-Plus style).

§7.2 evaluates the filter lists *offline*, by matching captured requests.
This module closes the loop: it turns a :class:`~repro.blocklist.RuleSet`
into an in-browser protection — the request filter an extension applies
*before* traffic leaves the machine — so the lists can be evaluated the
way users actually deploy them and compared against Brave's built-in
Shields on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..psl import default_list
from .evaluate import default_rule_sets
from .matcher import RequestContext, RuleSet


@dataclass
class AdblockExtension:
    """A content blocker driven by ABP filter lists."""

    rules: RuleSet
    name: str = "adblock-extension"

    @classmethod
    def with_default_lists(cls) -> "AdblockExtension":
        """EasyList + EasyPrivacy, the common privacy-conscious setup.

        The combined set is compiled (see
        :meth:`~repro.blocklist.matcher.RuleSet.compile`): an in-browser
        blocker sits on the per-request hot path of a whole crawl.
        """
        return cls(rules=default_rule_sets()["combined"].compile(),
                   name="easylist+easyprivacy")

    def filter_request(self, url: str, resource_type: str,
                       page_host: str) -> Optional[str]:
        """Blocker verdict for one outgoing request.

        Returns the blocker name when the request must be cancelled,
        ``None`` to let it through — the contract of the browser engine's
        extension hook.
        """
        request_host = url.split("://", 1)[-1].split("/", 1)[0]
        context = RequestContext(
            url=url,
            resource_type=resource_type,
            page_domain=default_list().registrable_domain(page_host)
            or page_host,
            is_third_party=default_list().is_third_party(request_host,
                                                         page_host))
        if self.rules.match(context).blocked:
            return self.name
        return None
