"""Filter-list matching engine.

Evaluates parsed ABP filters against requests the way content blockers do:
find any blocking filter that matches the address and its context options,
then let a matching exception (``@@``) rule override it.  An index over
filter tokens keeps matching fast enough to scan thousands of captured
requests against thousands of rules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..psl import default_list
from .parser import Filter, parse_filter_list

_TOKEN_RE = re.compile(r"[a-z0-9%]{3,}")


@dataclass(frozen=True)
class RequestContext:
    """Context options for one request being checked."""

    url: str
    resource_type: str = "other"
    page_domain: str = ""        # registrable domain of the visited page
    is_third_party: bool = True


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one request against a rule set."""

    blocked: bool
    blocking_filter: Optional[Filter] = None
    exception_filter: Optional[Filter] = None


def _index_token(filter_: Filter) -> Optional[str]:
    """A literal token that must appear in any URL the filter matches."""
    # Strip anchors and wildcards; take the longest literal run.
    pattern = filter_.pattern.lstrip("|")
    runs = _TOKEN_RE.findall(pattern.lower().replace("^", " ")
                             .replace("*", " "))
    if not runs:
        return None
    return max(runs, key=len)


class RuleSet:
    """A compiled filter list (or union of lists)."""

    def __init__(self, filters: Iterable[Filter], name: str = "") -> None:
        self.name = name
        self._blocking: List[Filter] = []
        self._exceptions: List[Filter] = []
        self._block_index: Dict[str, List[Filter]] = {}
        self._unindexed_blocking: List[Filter] = []
        for filter_ in filters:
            self.add(filter_)

    @classmethod
    def from_text(cls, text: str, name: str = "") -> "RuleSet":
        return cls(parse_filter_list(text), name=name)

    @classmethod
    def union(cls, rule_sets: Sequence["RuleSet"], name: str = "") -> "RuleSet":
        combined = cls((), name=name)
        for rule_set in rule_sets:
            for filter_ in rule_set.all_filters():
                combined.add(filter_)
        return combined

    def add(self, filter_: Filter) -> None:
        if filter_.is_exception:
            self._exceptions.append(filter_)
            return
        self._blocking.append(filter_)
        token = _index_token(filter_)
        if token is None:
            self._unindexed_blocking.append(filter_)
        else:
            self._block_index.setdefault(token, []).append(filter_)

    def all_filters(self) -> List[Filter]:
        return self._blocking + self._exceptions

    def __len__(self) -> int:
        return len(self._blocking) + len(self._exceptions)

    # -- matching ----------------------------------------------------------

    def _candidates(self, url: str) -> Iterable[Filter]:
        lowered = url.lower()
        seen: Set[int] = set()
        for token in _TOKEN_RE.findall(lowered):
            for filter_ in self._block_index.get(token, ()):
                if id(filter_) not in seen:
                    seen.add(id(filter_))
                    yield filter_
        for filter_ in self._unindexed_blocking:
            yield filter_

    def match(self, context: RequestContext) -> MatchResult:
        """Check a request; exceptions override blocking filters."""
        blocking = None
        for filter_ in self._candidates(context.url):
            if not filter_.applies_to_type(context.resource_type):
                continue
            if not filter_.applies_to_party(context.is_third_party):
                continue
            if not filter_.applies_to_domain(context.page_domain):
                continue
            if filter_.matches_url(context.url):
                blocking = filter_
                break
        if blocking is None:
            return MatchResult(blocked=False)
        for exception in self._exceptions:
            if not exception.applies_to_type(context.resource_type):
                continue
            if not exception.applies_to_party(context.is_third_party):
                continue
            if not exception.applies_to_domain(context.page_domain):
                continue
            if exception.matches_url(context.url):
                return MatchResult(blocked=False, blocking_filter=blocking,
                                   exception_filter=exception)
        return MatchResult(blocked=True, blocking_filter=blocking)

    def should_block(self, url: str, resource_type: str = "other",
                     page_domain: str = "",
                     is_third_party: Optional[bool] = None) -> bool:
        """Convenience wrapper around :meth:`match`."""
        if is_third_party is None and page_domain:
            host = url.split("://", 1)[-1].split("/", 1)[0]
            is_third_party = default_list().is_third_party(
                host, "www." + page_domain)
        context = RequestContext(
            url=url, resource_type=resource_type, page_domain=page_domain,
            is_third_party=bool(is_third_party))
        return self.match(context).blocked
