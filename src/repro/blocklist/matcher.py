"""Filter-list matching engine.

Evaluates parsed ABP filters against requests the way content blockers do:
find any blocking filter that matches the address and its context options,
then let a matching exception (``@@``) rule override it.  An index over
filter tokens keeps matching fast enough to scan thousands of captured
requests against thousands of rules.

Two matching engines share one semantics:

* :class:`RuleSet` probes its token index once per URL token (regex
  tokenisation plus a dict lookup each) — simple, and the reference.
* :class:`CompiledRuleSet` (``RuleSet.compile()``) runs all index
  tokens through one :class:`~repro.core.aho.AhoCorasick` automaton in
  a single pass over the URL.  Candidate enumeration — and therefore
  every :class:`MatchResult` — is provably identical to the reference
  (``tests/test_compiled_matcher.py`` holds the equivalence property):
  an automaton hit only counts when it spans a *maximal* token run of
  the URL, which is exactly when the regex tokeniser would have
  produced that token.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..core.aho import AhoCorasick
from ..psl import default_list
from .parser import Filter, parse_filter_list

_TOKEN_RE = re.compile(r"[a-z0-9%]{3,}")

#: The character class of `_TOKEN_RE`, for the compiled matcher's
#: maximal-run boundary checks.
_TOKEN_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789%")


@dataclass(frozen=True)
class RequestContext:
    """Context options for one request being checked."""

    url: str
    resource_type: str = "other"
    page_domain: str = ""        # registrable domain of the visited page
    is_third_party: bool = True


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one request against a rule set."""

    blocked: bool
    blocking_filter: Optional[Filter] = None
    exception_filter: Optional[Filter] = None


def _index_token(filter_: Filter) -> Optional[str]:
    """A literal token that must appear in any URL the filter matches."""
    # Strip anchors and wildcards; take the longest literal run.
    pattern = filter_.pattern.lstrip("|")
    runs = _TOKEN_RE.findall(pattern.lower().replace("^", " ")
                             .replace("*", " "))
    if not runs:
        return None
    return max(runs, key=len)


class RuleSet:
    """A compiled filter list (or union of lists)."""

    def __init__(self, filters: Iterable[Filter], name: str = "") -> None:
        self.name = name
        self._blocking: List[Filter] = []
        self._exceptions: List[Filter] = []
        self._block_index: Dict[str, List[Filter]] = {}
        self._unindexed_blocking: List[Filter] = []
        for filter_ in filters:
            self.add(filter_)

    @classmethod
    def from_text(cls, text: str, name: str = "") -> "RuleSet":
        return cls(parse_filter_list(text), name=name)

    @classmethod
    def union(cls, rule_sets: Sequence["RuleSet"], name: str = "") -> "RuleSet":
        combined = cls((), name=name)
        for rule_set in rule_sets:
            for filter_ in rule_set.all_filters():
                combined.add(filter_)
        return combined

    def add(self, filter_: Filter) -> None:
        if filter_.is_exception:
            self._exceptions.append(filter_)
            return
        self._blocking.append(filter_)
        token = _index_token(filter_)
        if token is None:
            self._unindexed_blocking.append(filter_)
        else:
            self._block_index.setdefault(token, []).append(filter_)

    def all_filters(self) -> List[Filter]:
        return self._blocking + self._exceptions

    def __len__(self) -> int:
        return len(self._blocking) + len(self._exceptions)

    # -- matching ----------------------------------------------------------

    def _candidates(self, url: str) -> Iterable[Filter]:
        lowered = url.lower()
        seen: Set[int] = set()
        for token in _TOKEN_RE.findall(lowered):
            for filter_ in self._block_index.get(token, ()):
                if id(filter_) not in seen:
                    seen.add(id(filter_))
                    yield filter_
        for filter_ in self._unindexed_blocking:
            yield filter_

    def match(self, context: RequestContext) -> MatchResult:
        """Check a request; exceptions override blocking filters."""
        blocking = None
        for filter_ in self._candidates(context.url):
            if not filter_.applies_to_type(context.resource_type):
                continue
            if not filter_.applies_to_party(context.is_third_party):
                continue
            if not filter_.applies_to_domain(context.page_domain):
                continue
            if filter_.matches_url(context.url):
                blocking = filter_
                break
        if blocking is None:
            return MatchResult(blocked=False)
        for exception in self._exceptions:
            if not exception.applies_to_type(context.resource_type):
                continue
            if not exception.applies_to_party(context.is_third_party):
                continue
            if not exception.applies_to_domain(context.page_domain):
                continue
            if exception.matches_url(context.url):
                return MatchResult(blocked=False, blocking_filter=blocking,
                                   exception_filter=exception)
        return MatchResult(blocked=True, blocking_filter=blocking)

    def should_block(self, url: str, resource_type: str = "other",
                     page_domain: str = "",
                     is_third_party: Optional[bool] = None) -> bool:
        """Convenience wrapper around :meth:`match`."""
        if is_third_party is None and page_domain:
            host = url.split("://", 1)[-1].split("/", 1)[0]
            is_third_party = default_list().is_third_party(
                host, "www." + page_domain)
        context = RequestContext(
            url=url, resource_type=resource_type, page_domain=page_domain,
            is_third_party=bool(is_third_party))
        return self.match(context).blocked

    def compile(self) -> "CompiledRuleSet":
        """Freeze this rule set into a :class:`CompiledRuleSet`.

        The compiled set matches every request identically (same
        :class:`MatchResult`, same filter objects) but enumerates
        candidate filters with one Aho–Corasick pass over the URL
        instead of a regex findall plus one dict probe per token.
        """
        return CompiledRuleSet(self)


class CompiledRuleSet(RuleSet):
    """An immutable :class:`RuleSet` with automaton-driven candidates.

    Shares the source set's filter lists and token index (no copies)
    and builds one :class:`AhoCorasick` automaton over the distinct
    index tokens.  During a match the URL is scanned once; an
    automaton hit at ``[start, end)`` counts only when it spans a
    *maximal* token run — i.e. the characters just outside the hit are
    not in the token class — which reproduces ``_TOKEN_RE.findall``
    exactly: findall yields maximal runs in position order, maximal
    runs cannot overlap, and for each run only the pattern equal to
    the whole run is accepted, so candidate order (bucket insertion
    order within each token, tokens in URL order, dedupe by identity,
    unindexed filters last) is preserved and ``match()`` — which takes
    the *first* matching blocking filter — returns identical results.
    """

    def __init__(self, source: RuleSet) -> None:
        # Deliberately no super().__init__: share, don't copy.
        self.name = source.name
        self._blocking = source._blocking
        self._exceptions = source._exceptions
        self._block_index = source._block_index
        self._unindexed_blocking = source._unindexed_blocking
        self._automaton = AhoCorasick()
        for token in self._block_index:
            self._automaton.add(token, payload=token)
        self._automaton.build()

    def add(self, filter_: Filter) -> None:
        raise TypeError(
            "CompiledRuleSet is immutable; add filters to the source "
            "RuleSet and call compile() again")

    def _candidates(self, url: str) -> Iterable[Filter]:
        lowered = url.lower()
        length = len(lowered)
        index = self._block_index
        seen: Set[int] = set()
        for end, pattern, _ in self._automaton.iter_hits(lowered):
            start = end - len(pattern)
            if start > 0 and lowered[start - 1] in _TOKEN_CHARS:
                continue
            if end < length and lowered[end] in _TOKEN_CHARS:
                continue
            for filter_ in index.get(pattern, ()):
                if id(filter_) not in seen:
                    seen.add(id(filter_))
                    yield filter_
        for filter_ in self._unindexed_blocking:
            yield filter_
