"""Blocklist effectiveness evaluation (§7.2, Table 4).

Follows the paper's procedure: take every captured request that contains
leaked PII, match it — and every request in its initiator chain — against
EasyList, EasyPrivacy, and their union, and report how many senders and
receivers would have had their leakage suppressed, broken down by leak
method.

A leak event counts as *prevented* when the leaking request itself or any
request in its initiator chain (the embedding page's script load) would
have been blocked: blocking the snippet stops the beacon.  A sender
(receiver) appears in a method row when all of its leak events using that
method are prevented, mirroring the paper's per-method percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.detector import LeakDetector
from ..core.leakmodel import LeakEvent
from ..netsim import CaptureEntry, CaptureLog, RESOURCE_SCRIPT
from ..psl import default_list
from .lists import easylist_text, easyprivacy_text
from .matcher import RequestContext, RuleSet

_METHOD_ROWS = ("referer", "uri", "payload", "cookie", "combined")


@dataclass(frozen=True)
class Table4Cell:
    blocked: int
    total: int

    @property
    def pct(self) -> float:
        return 100.0 * self.blocked / self.total if self.total else 0.0


@dataclass
class Table4Report:
    """Measured Table 4: {list_name: {row: cell}} for senders/receivers."""

    senders: Dict[str, Dict[str, Table4Cell]] = field(default_factory=dict)
    receivers: Dict[str, Dict[str, Table4Cell]] = field(default_factory=dict)


def default_rule_sets() -> Dict[str, RuleSet]:
    """The three rule sets of Table 4."""
    easylist = RuleSet.from_text(easylist_text(), name="easylist")
    easyprivacy = RuleSet.from_text(easyprivacy_text(), name="easyprivacy")
    combined = RuleSet.union((easylist, easyprivacy), name="combined")
    return {"easylist": easylist, "easyprivacy": easyprivacy,
            "combined": combined}


class BlocklistEvaluator:
    """Runs the Table 4 evaluation over a capture log."""

    def __init__(self, detector: LeakDetector,
                 rule_sets: Optional[Dict[str, RuleSet]] = None) -> None:
        self.detector = detector
        self.rule_sets = rule_sets or default_rule_sets()

    # -- request-level matching ------------------------------------------

    def entry_blocked(self, entry: CaptureEntry, rules: RuleSet) -> bool:
        """Whether the request or its initiator chain would be blocked."""
        request = entry.request
        page_host = "www." + entry.site
        contexts = [RequestContext(
            url=str(request.url),
            resource_type=request.resource_type,
            page_domain=entry.site,
            is_third_party=default_list().is_third_party(
                request.url.host, page_host))]
        for initiator in request.initiator_chain[1:]:
            # Chain entries beyond the document are loader scripts.
            contexts.append(RequestContext(
                url=str(initiator), resource_type=RESOURCE_SCRIPT,
                page_domain=entry.site,
                is_third_party=default_list().is_third_party(
                    initiator.host, page_host)))
        return any(rules.match(context).blocked for context in contexts)

    # -- Table 4 ------------------------------------------------------------

    def evaluate(self, log: CaptureLog) -> Table4Report:
        """Compute the full Table 4 from a crawl capture."""
        # Pair each leak event with its capture entry.
        observations: List[Tuple[CaptureEntry, LeakEvent]] = []
        for entry in log:
            if entry.was_blocked:
                continue
            for event in self.detector.detect_entry(entry):
                observations.append((entry, event))

        report = Table4Report()
        for list_name, rules in self.rule_sets.items():
            blocked_cache: Dict[int, bool] = {}

            def is_prevented(entry: CaptureEntry) -> bool:
                key = id(entry)
                if key not in blocked_cache:
                    blocked_cache[key] = self.entry_blocked(entry, rules)
                return blocked_cache[key]

            report.senders[list_name] = self._aggregate(
                observations, is_prevented, lambda event: event.sender)
            report.receivers[list_name] = self._aggregate(
                observations, is_prevented, lambda event: event.receiver)
        return report

    def _aggregate(self, observations, is_prevented,
                   subject_of) -> Dict[str, Table4Cell]:
        # subject -> channel -> [total events, prevented events]
        per_channel: Dict[str, Dict[str, List[int]]] = {}
        # subject -> (sender, receiver) -> channel set (for "combined").
        rel_channels: Dict[str, Dict[Tuple[str, str], Set[str]]] = {}
        rel_prevented: Dict[str, Dict[Tuple[str, str], List[int]]] = {}
        overall: Dict[str, List[int]] = {}

        for entry, event in observations:
            subject = subject_of(event)
            prevented = is_prevented(entry)
            counts = per_channel.setdefault(subject, {}).setdefault(
                event.channel, [0, 0])
            counts[0] += 1
            counts[1] += 1 if prevented else 0
            total = overall.setdefault(subject, [0, 0])
            total[0] += 1
            total[1] += 1 if prevented else 0
            rel_key = (event.sender, event.receiver)
            rel_channels.setdefault(subject, {}).setdefault(
                rel_key, set()).add(event.channel)
            rel_counts = rel_prevented.setdefault(subject, {}).setdefault(
                rel_key, [0, 0])
            rel_counts[0] += 1
            rel_counts[1] += 1 if prevented else 0

        rows: Dict[str, Table4Cell] = {}
        for channel in ("referer", "uri", "payload", "cookie"):
            subjects = [s for s, channels in per_channel.items()
                        if channel in channels]
            blocked = sum(
                1 for s in subjects
                if per_channel[s][channel][1] == per_channel[s][channel][0])
            rows[channel] = Table4Cell(blocked=blocked, total=len(subjects))

        combined_subjects = []
        combined_blocked = 0
        for subject, relationships in rel_channels.items():
            combined_rels = [key for key, channels in relationships.items()
                             if len(channels) >= 2]
            if not combined_rels:
                continue
            combined_subjects.append(subject)
            if all(rel_prevented[subject][key][1] ==
                   rel_prevented[subject][key][0] for key in combined_rels):
                combined_blocked += 1
        rows["combined"] = Table4Cell(blocked=combined_blocked,
                                      total=len(combined_subjects))

        total_blocked = sum(1 for counts in overall.values()
                            if counts[1] == counts[0])
        rows["total"] = Table4Cell(blocked=total_blocked, total=len(overall))
        return rows
