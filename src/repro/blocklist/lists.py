"""Bundled EasyList / EasyPrivacy snapshots (June 2021 scale model).

Real filter lists cannot be fetched offline, so this module generates
list texts in genuine ABP syntax whose *coverage* of the synthetic web is
calibrated to the paper's Table 4 findings:

* **EasyPrivacy** targets tracking endpoints: every Table 2 provider
  except ``custora.com``, ``taboola.com`` and ``zendesk.com`` (the paper's
  three missed tracking providers), the big ad platforms, and most of the
  generic martech fillers.  Its Adobe rules are *path-based* (``/b/ss``),
  which is why the cookie-channel (CNAME-cloaked) leaks are fully blocked
  even though the request host looks first-party.
* **EasyList** targets ad serving: the ad-platform domains plus a handful
  of ad-widget fillers — it barely intersects the PII-leak traffic, which
  is the paper's explanation for its 8% receiver coverage.
* A tail of receivers (the three providers above, several functional
  services Brave also missed, and the long tail of one-off fillers) is on
  neither list — the paper's ~28 unblocked receivers.
"""

from __future__ import annotations

from typing import List, Tuple

from ..websim.trackers import _FILLER_DOMAINS, TABLE2_SERVICES

#: Table 2 providers absent from every list (paper §7.2).
UNLISTED_PROVIDERS: Tuple[str, ...] = ("custora.com", "taboola.com",
                                       "zendesk.com")

#: Brave-missed functional services that EasyPrivacy does list.
_EP_BRAVE_MISSED: Tuple[str, ...] = ("intercom.io", "cartsync.io",
                                     "lmcdn.ru")

#: Ad platforms on EasyList (bing also appears in EasyPrivacy: overlap 1).
EASYLIST_AD_PLATFORMS: Tuple[str, ...] = (
    "doubleclick.net", "googleadservices.com", "amazon-adsystem.com",
    "bing.com")

#: Generic filler coverage split (indices into _FILLER_DOMAINS):
#: [0:31] EasyPrivacy, [31:34] EasyList-only, [34:58] unlisted,
#: [58:64] EasyPrivacy (referer receivers), [64] EasyList (referer).
_EP_FILLER_SLICE = slice(0, 31)
_EL_FILLER_SLICE = slice(31, 34)
_EP_REFERER_SLICE = slice(58, 64)
_EL_REFERER_INDEX = 64

#: EasyPrivacy ad/analytics platforms.
_EP_AD_PLATFORMS: Tuple[str, ...] = (
    "google-analytics.com", "yandex.ru", "twitter.com", "tiktok.com",
    "bing.com")


def easyprivacy_covered_domains() -> List[str]:
    """Receiver domains EasyPrivacy rules cover."""
    covered = [service.domain for service in TABLE2_SERVICES
               if service.domain not in UNLISTED_PROVIDERS]
    covered.extend(_EP_AD_PLATFORMS)
    covered.extend(_EP_BRAVE_MISSED)
    covered.extend(_FILLER_DOMAINS[_EP_FILLER_SLICE])
    covered.extend(_FILLER_DOMAINS[_EP_REFERER_SLICE])
    return covered


def easylist_covered_domains() -> List[str]:
    """Receiver domains EasyList rules cover."""
    covered = list(EASYLIST_AD_PLATFORMS)
    covered.extend(_FILLER_DOMAINS[_EL_FILLER_SLICE])
    covered.append(_FILLER_DOMAINS[_EL_REFERER_INDEX])
    return covered


def easyprivacy_text() -> str:
    """Render the EasyPrivacy snapshot in ABP syntax."""
    lines = [
        "[Adblock Plus 2.0]",
        "! Title: EasyPrivacy (repro snapshot, June 2021 scale model)",
        "! Expires: 4 days",
        "!-------------------- Tracking servers --------------------",
    ]
    for domain in easyprivacy_covered_domains():
        if domain == "omtrdc.net":
            continue  # handled by the path rules below
        lines.append("||%s^$third-party" % domain)
    lines.extend([
        "!-------------------- Adobe / Omniture --------------------",
        "! Path-based so CNAME-cloaked first-party collection hosts",
        "! (metrics.<site>) are caught as well.",
        "/b/ss^",
        "||omtrdc.net^",
        "||2o7.net^",
        "!-------------------- Generic tracking paths ---------------",
        "/api/track/mobile/*$third-party",
        "&email_hash=$third-party",
        "!-------------------- Allowlist ----------------------------",
        "@@||fonts.googleapis.com^$stylesheet",
        "@@||cdn.jsdelivr.net^$script",
    ])
    return "\n".join(lines) + "\n"


def easylist_text() -> str:
    """Render the EasyList snapshot in ABP syntax."""
    lines = [
        "[Adblock Plus 2.0]",
        "! Title: EasyList (repro snapshot, June 2021 scale model)",
        "! Expires: 4 days",
        "!-------------------- Ad servers ---------------------------",
    ]
    for domain in easylist_covered_domains():
        lines.append("||%s^$third-party" % domain)
    lines.extend([
        "!-------------------- Generic ad paths ---------------------",
        "/pagead/conversion^",
        "/adsales/*$image,third-party",
        "!-------------------- Allowlist ----------------------------",
        "@@||cdn.shopifycdn.com^$script",
    ])
    return "\n".join(lines) + "\n"
