"""Adblock-Plus filter engine and Table 4 evaluation (§7.2)."""

from .evaluate import (
    BlocklistEvaluator,
    Table4Cell,
    Table4Report,
    default_rule_sets,
)
from .extension import AdblockExtension
from .lists import (
    EASYLIST_AD_PLATFORMS,
    UNLISTED_PROVIDERS,
    easylist_covered_domains,
    easylist_text,
    easyprivacy_covered_domains,
    easyprivacy_text,
)
from .matcher import MatchResult, RequestContext, RuleSet
from .parser import (
    Filter,
    FilterSyntaxError,
    compile_pattern,
    parse_filter,
    parse_filter_list,
)

__all__ = [
    "AdblockExtension",
    "BlocklistEvaluator",
    "EASYLIST_AD_PLATFORMS",
    "Filter",
    "FilterSyntaxError",
    "MatchResult",
    "RequestContext",
    "RuleSet",
    "Table4Cell",
    "Table4Report",
    "UNLISTED_PROVIDERS",
    "compile_pattern",
    "default_rule_sets",
    "easylist_covered_domains",
    "easylist_text",
    "easyprivacy_covered_domains",
    "easyprivacy_text",
    "parse_filter",
    "parse_filter_list",
]
