"""Adblock Plus filter parsing (§7.2).

Implements the network-filter subset of the ABP syntax that EasyList and
EasyPrivacy use — the same subset the paper's ``adblockparser`` handles:

* blocking patterns with ``*`` wildcards, ``^`` separators, ``|`` anchors
  and the ``||`` domain anchor;
* exception rules (``@@`` prefix);
* options: resource types (``script``, ``image``, ``stylesheet``,
  ``xmlhttprequest``, ``subdocument``, ``ping``, ``other``), party
  (``third-party`` / ``~third-party``), ``domain=`` restrictions and
  ``match-case``;
* comments (``!``), section headers (``[...]``) and element-hiding rules
  (``##`` / ``#@#``), which are skipped — they cannot block requests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

RESOURCE_OPTIONS = frozenset({
    "script", "image", "stylesheet", "xmlhttprequest", "subdocument",
    "document", "ping", "other",
})

#: Request resource-type -> ABP option name.
RESOURCE_TYPE_TO_OPTION = {
    "script": "script",
    "image": "image",
    "stylesheet": "stylesheet",
    "xmlhttprequest": "xmlhttprequest",
    "subdocument": "subdocument",
    "document": "document",
    "ping": "ping",
}


class FilterSyntaxError(ValueError):
    """Raised for unparseable filter lines."""


@dataclass(frozen=True)
class Filter:
    """One parsed network filter."""

    text: str                          # the original line
    pattern: str                       # the address part
    is_exception: bool = False
    resource_types: FrozenSet[str] = frozenset()   # empty = any
    inverse_resource_types: FrozenSet[str] = frozenset()
    third_party: Optional[bool] = None  # None = either
    include_domains: FrozenSet[str] = frozenset()
    exclude_domains: FrozenSet[str] = frozenset()
    match_case: bool = False
    regex: "re.Pattern" = field(default=None, repr=False, compare=False)

    def applies_to_type(self, resource_type: str) -> bool:
        option = RESOURCE_TYPE_TO_OPTION.get(resource_type, "other")
        if self.resource_types and option not in self.resource_types:
            return False
        if option in self.inverse_resource_types:
            return False
        return True

    def applies_to_party(self, is_third_party: bool) -> bool:
        if self.third_party is None:
            return True
        return self.third_party == is_third_party

    def applies_to_domain(self, page_domain: str) -> bool:
        page_domain = page_domain.lower()
        if self.exclude_domains and _domain_in(page_domain,
                                               self.exclude_domains):
            return False
        if self.include_domains:
            return _domain_in(page_domain, self.include_domains)
        return True

    def matches_url(self, url: str) -> bool:
        target = url if self.match_case else url.lower()
        return self.regex.search(target) is not None


def _domain_in(domain: str, candidates: FrozenSet[str]) -> bool:
    return any(domain == candidate or domain.endswith("." + candidate)
               for candidate in candidates)


def compile_pattern(pattern: str, match_case: bool) -> "re.Pattern":
    """Translate an ABP address pattern to a compiled regex."""
    text = pattern
    anchored_domain = text.startswith("||")
    if anchored_domain:
        text = text[2:]
    anchored_start = text.startswith("|")
    if anchored_start:
        text = text[1:]
    anchored_end = text.endswith("|")
    if anchored_end:
        text = text[:-1]

    pieces: List[str] = []
    for char in text:
        if char == "*":
            pieces.append(".*")
        elif char == "^":
            # Separator: anything that is not a letter, digit, or one of
            # "_-.%", or the end of the address.
            pieces.append(r"(?:[^a-zA-Z0-9_.%-]|$)")
        else:
            pieces.append(re.escape(char))
    body = "".join(pieces)

    if anchored_domain:
        prefix = r"^[a-z][a-z0-9+.-]*://(?:[^/?#]*\.)?"
        body = prefix + body
    elif anchored_start:
        body = "^" + body
    if anchored_end:
        body = body + "$"
    flags = 0 if match_case else re.IGNORECASE
    return re.compile(body, flags)


def parse_filter(line: str) -> Optional[Filter]:
    """Parse one filter line; returns None for comments/cosmetic rules."""
    line = line.strip()
    if not line or line.startswith("!") or line.startswith("["):
        return None
    if "##" in line or "#@#" in line or "#?#" in line:
        return None  # element hiding, irrelevant to network blocking

    original = line
    is_exception = line.startswith("@@")
    if is_exception:
        line = line[2:]

    pattern = line
    options_text = ""
    dollar = line.rfind("$")
    if dollar > 0 and "/" not in line[dollar:]:
        pattern, options_text = line[:dollar], line[dollar + 1:]

    resource_types = set()
    inverse_types = set()
    third_party: Optional[bool] = None
    include_domains = set()
    exclude_domains = set()
    match_case = False

    if options_text:
        for option in options_text.split(","):
            option = option.strip()
            if not option:
                continue
            if option == "match-case":
                match_case = True
            elif option == "third-party":
                third_party = True
            elif option == "~third-party":
                third_party = False
            elif option.startswith("domain="):
                for domain in option[len("domain="):].split("|"):
                    domain = domain.strip().lower()
                    if domain.startswith("~"):
                        exclude_domains.add(domain[1:])
                    elif domain:
                        include_domains.add(domain)
            elif option.startswith("~") and option[1:] in RESOURCE_OPTIONS:
                inverse_types.add(option[1:])
            elif option in RESOURCE_OPTIONS:
                resource_types.add(option)
            else:
                # Unsupported option (csp, redirect, ...): the rule cannot
                # be evaluated soundly, skip it like adblockparser does.
                return None

    if not pattern:
        raise FilterSyntaxError("empty pattern in %r" % original)
    return Filter(
        text=original, pattern=pattern, is_exception=is_exception,
        resource_types=frozenset(resource_types),
        inverse_resource_types=frozenset(inverse_types),
        third_party=third_party,
        include_domains=frozenset(include_domains),
        exclude_domains=frozenset(exclude_domains),
        match_case=match_case,
        regex=compile_pattern(pattern, match_case))


def parse_filter_list(text: str) -> List[Filter]:
    """Parse a whole filter list document."""
    filters = []
    for line in text.splitlines():
        parsed = parse_filter(line)
        if parsed is not None:
            filters.append(parsed)
    return filters
