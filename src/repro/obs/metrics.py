"""Metric primitives: counters, gauges, timing histograms.

Dependency-free and deliberately boring: plain picklable dataclasses
with deterministic merge semantics, so per-shard metric sets can cross
the :mod:`repro.crawler.parallel` process boundary and be folded back
together in shard-layout order with a reproducible result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Default histogram bucket upper bounds.  Geometric in powers of four
#: from 1ms to ~17min plus +inf, wide enough for both simulated-seconds
#: site timings and request counts.  Fixed (never host-derived) so two
#: histograms built anywhere always merge bucket-for-bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0,
)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "value": self.value}


@dataclass
class Gauge:
    """A last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "value": self.value}


@dataclass
class Histogram:
    """A fixed-bucket distribution (for timings and size counts).

    ``bounds`` are inclusive upper edges; one implicit +inf bucket
    catches the overflow.  Merging requires identical bounds — a
    mismatch raises :class:`ValueError` rather than silently skewing
    the distribution.
    """

    name: str
    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value
        self.bucket_counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (same bounds required)."""
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histogram %r: bucket bounds differ"
                % other.name)
        if other.count == 0:
            return
        if self.count == 0:
            self.min, self.max = other.min, other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }
