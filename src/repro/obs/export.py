"""Trace export: recorder → JSONL, JSONL → summary.

One line per record, stable field order (``sort_keys``), spans in
depth-first tree order with an explicit ``path`` (root index, child
index, ...) so the file is diffable: two deterministic runs produce
byte-identical traces.  The format is self-describing — the first line
is a ``meta`` record with the schema version.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, Iterator, List, Optional

from .recorder import Recorder, Span

#: Schema version of the JSONL trace; bump on incompatible changes.
TRACE_SCHEMA_VERSION = 1


class TraceError(ValueError):
    """A trace file could not be parsed."""


# -- writing ---------------------------------------------------------------

def trace_lines(recorder: Recorder) -> Iterator[str]:
    """The JSONL lines for everything ``recorder`` holds."""
    yield _dumps({"type": "meta", "schema": TRACE_SCHEMA_VERSION,
                  "kind": "repro-trace"})
    for index, root in enumerate(recorder.roots):
        for line in _span_lines(root, (index,)):
            yield line
    for name in sorted(recorder.counters):
        yield _dumps({"type": "counter", "name": name,
                      "value": recorder.counters[name].value})
    for name in sorted(recorder.gauges):
        yield _dumps({"type": "gauge", "name": name,
                      "value": recorder.gauges[name].value})
    for name in sorted(recorder.histograms):
        record = recorder.histograms[name].as_dict()
        record["type"] = "histogram"
        yield _dumps(record)


def _span_lines(span: Span, path) -> Iterator[str]:
    yield _dumps({
        "type": "span",
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "depth": len(path) - 1,
        "path": list(path),
        "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
    })
    for index, child in enumerate(span.children):
        for line in _span_lines(child, path + (index,)):
            yield line


def _dumps(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_trace(recorder: Recorder, path: str) -> str:
    """Write ``recorder`` as a JSONL trace to ``path``; returns it."""
    with open(path, "w") as handle:
        for line in trace_lines(recorder):
            handle.write(line + "\n")
    return path


# -- reading ---------------------------------------------------------------

def read_trace(path: str) -> Dict[str, List[Dict[str, object]]]:
    """Parse a JSONL trace into ``{record type: [records]}``.

    Raises :class:`TraceError` on malformed JSON or on a file that
    does not carry the trace meta header — except for a malformed
    *final* line on an otherwise-valid trace, which is skipped with a
    warning: traces are written line-by-line, so a writer killed
    mid-write truncates at most the trailing record and the rest of the
    file is still worth summarizing and diffing.
    """
    records: Dict[str, List[Dict[str, object]]] = {
        "span": [], "counter": [], "gauge": [], "histogram": [],
    }
    meta: Optional[Dict[str, object]] = None
    with open(path) as handle:
        lines = [(number, line.strip())
                 for number, line in enumerate(handle, start=1)
                 if line.strip()]
    for position, (number, line) in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if position == len(lines) - 1 and meta is not None:
                warnings.warn(
                    "%s:%d: truncated trailing line (the writer likely "
                    "died mid-write); skipping the partial record"
                    % (path, number), stacklevel=2)
                break
            raise TraceError("%s:%d: not JSON: %s"
                             % (path, number, exc)) from exc
        kind = record.get("type") if isinstance(record, dict) else None
        if kind == "meta":
            meta = record
        elif kind in records:
            records[kind].append(record)
        else:
            raise TraceError("%s:%d: unknown record type %r"
                             % (path, number, kind))
    if meta is None or meta.get("kind") != "repro-trace":
        raise TraceError("%s: missing repro-trace meta header" % path)
    return records


# -- summarizing -----------------------------------------------------------

def summary_dict(records: Dict[str, List[Dict[str, object]]],
                 top: int = 20) -> Dict[str, object]:
    """Machine-readable summary of a parsed trace (``summarize --json``).

    The same aggregation :func:`summarize_trace` renders for humans —
    per-span-name duration totals, counters, gauges, histograms — as a
    plain JSON-able dict.
    """
    spans = records["span"]
    by_name: Dict[str, List[float]] = {}
    open_spans = 0
    for span in spans:
        end = span.get("end")
        if end is None:
            open_spans += 1
            continue
        by_name.setdefault(str(span["name"]), []).append(
            float(end) - float(span["start"]))  # type: ignore[arg-type]
    breakdown = []
    for name, durations in sorted(by_name.items(),
                                  key=_total_duration_then_name)[:top]:
        total = sum(durations)
        breakdown.append({"name": name, "count": len(durations),
                          "total": total,
                          "mean": total / len(durations)})
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "spans": len(spans),
        "open_spans": open_spans,
        "span_breakdown": breakdown,
        "counters": [{"name": record["name"], "value": record["value"]}
                     for record in records["counter"]],
        "gauges": [{"name": record["name"], "value": record["value"]}
                   for record in records["gauge"]],
        "histograms": [
            {"name": record["name"], "count": record["count"],
             "total": record["total"], "min": record["min"],
             "max": record["max"]}
            for record in records["histogram"]],
    }


def summarize_trace(records: Dict[str, List[Dict[str, object]]],
                    top: int = 20) -> str:
    """Human-readable per-stage breakdown of a parsed trace.

    Span durations are aggregated *per span name* — names share a
    clock domain (simulated seconds for sites/requests, logical ticks
    for study stages), so within a row the totals are comparable.
    """
    lines: List[str] = []
    spans = records["span"]
    lines.append("spans: %d   counters: %d   gauges: %d   histograms: %d"
                 % (len(spans), len(records["counter"]),
                    len(records["gauge"]), len(records["histogram"])))

    by_name: Dict[str, List[float]] = {}
    open_spans = 0
    for span in spans:
        end = span.get("end")
        if end is None:
            open_spans += 1
            continue
        by_name.setdefault(str(span["name"]), []).append(
            float(end) - float(span["start"]))
    if by_name:
        lines.append("")
        lines.append("span breakdown (durations are clock-domain-local):")
        lines.append("  %-24s %8s %12s %12s" % ("name", "count", "total",
                                                "mean"))
        ranked = sorted(by_name.items(),
                        key=_total_duration_then_name)[:top]
        for name, durations in ranked:
            total = sum(durations)
            lines.append("  %-24s %8d %12.3f %12.4f"
                         % (name, len(durations), total,
                            total / len(durations)))
    if open_spans:
        lines.append("  (%d span(s) still open)" % open_spans)

    if records["counter"]:
        lines.append("")
        lines.append("counters:")
        for record in records["counter"][:top]:
            lines.append("  %-40s %12g" % (record["name"], record["value"]))
        if len(records["counter"]) > top:
            lines.append("  ... and %d more"
                         % (len(records["counter"]) - top))

    if records["gauge"]:
        lines.append("")
        lines.append("gauges:")
        for record in records["gauge"][:top]:
            lines.append("  %-40s %12g" % (record["name"], record["value"]))

    if records["histogram"]:
        lines.append("")
        lines.append("histograms:")
        for record in records["histogram"][:top]:
            count = int(record["count"]) or 1
            lines.append("  %-32s n=%-6d min=%-9.4g mean=%-9.4g max=%-9.4g"
                         % (record["name"], record["count"], record["min"],
                            float(record["total"]) / count, record["max"]))
    return "\n".join(lines)


def _total_duration_then_name(item):
    name, durations = item
    return (-sum(durations), name)


def summarize_recorder(recorder: Recorder, top: int = 20) -> str:
    """Summary straight from a live recorder (no file round-trip)."""
    records: Dict[str, List[Dict[str, object]]] = {
        "span": [], "counter": [], "gauge": [], "histogram": [],
    }
    for span, depth in recorder.all_spans():
        records["span"].append({"name": span.name, "start": span.start,
                                "end": span.end, "depth": depth,
                                "attrs": span.attrs})
    for name in sorted(recorder.counters):
        records["counter"].append({"name": name,
                                   "value": recorder.counters[name].value})
    for name in sorted(recorder.gauges):
        records["gauge"].append({"name": name,
                                 "value": recorder.gauges[name].value})
    for name in sorted(recorder.histograms):
        records["histogram"].append(recorder.histograms[name].as_dict())
    return summarize_trace(records, top=top)
