"""The recorder: one study's metrics and span tree.

A :class:`Recorder` is the unit of observability state the pipeline
threads through itself: counters/gauges/histograms plus a hierarchy of
:class:`Span` intervals (study → stage → shard → site → request).  It
is picklable as a whole (plain dataclasses, no lambdas, no handles —
the PKL301-303 contract), so per-shard recorders travel back over the
:mod:`repro.crawler.parallel` process boundary and merge
deterministically in shard-layout order via :meth:`Recorder.adopt`.

Times come from an injectable :class:`~repro.obs.clock.Clock`
(default: the deterministic :class:`~repro.obs.clock.TickClock`);
callers on the crawl path stamp spans with explicit simulated-clock
times instead.  Span times are therefore *clock-domain-local*: compare
durations within one span name, never across names.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .clock import Clock, TickClock
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram


@dataclass
class Span:
    """One named interval in the trace tree.

    ``end`` is ``None`` while the span is open.  ``attrs`` carry small
    identifying facts (domain, shard index, stage kind) — never PII.
    """

    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Span length in its own clock domain (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Depth-first (span, depth) traversal of this subtree."""
        yield self, depth
        for child in self.children:
            for item in child.walk(depth + 1):
                yield item

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
            "children": [child.as_dict() for child in self.children],
        }


class Recorder:
    """Collects metrics and spans for one study (or one shard of one).

    All mutators are cheap and deterministic; nothing here reads the
    host clock, the filesystem or the network.  The no-op variant is
    :class:`NullRecorder` — pipeline code holds a recorder
    unconditionally and the null one makes tracing-off runs free.
    """

    enabled = True

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock or TickClock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Completed/open top-level spans, in recording order.
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- metrics ---------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.inc(n)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set(value)

    def observe(self, name: str, value: float,
                bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        """Record ``value`` into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        histogram.observe(value)

    # -- spans -----------------------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, start: Optional[float] = None,
                   **attrs: object) -> Span:
        """Open a span under the current one (or as a new root)."""
        span = Span(name=name,
                    start=self.clock.now() if start is None else start,
                    attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end_span(self, end: Optional[float] = None) -> Span:
        """Close the innermost open span; raises if none is open."""
        if not self._stack:
            raise RuntimeError("no open span to end")
        span = self._stack.pop()
        span.end = self.clock.now() if end is None else end
        return span

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """``with recorder.span("detect"):`` — open/close around a block."""
        span = self.start_span(name, **attrs)
        try:
            yield span
        finally:
            # Unwind to (and including) our span even if the body
            # leaked opens — the tree stays well-formed under errors.
            while self._stack and self._stack[-1] is not span:
                self.end_span()
            if self._stack and self._stack[-1] is span:
                self.end_span()

    def add_span(self, name: str, start: float, end: float,
                 **attrs: object) -> Span:
        """Record an already-measured interval under the current span."""
        span = Span(name=name, start=start, end=end, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    @property
    def open_span_count(self) -> int:
        return len(self._stack)

    # -- merge -----------------------------------------------------------

    def adopt(self, other: "Recorder") -> None:
        """Fold ``other`` into this recorder.

        Metrics merge name-wise (counters sum, gauges last-write-wins,
        histograms bucket-wise); ``other``'s root spans are grafted, in
        their recorded order, under this recorder's current span (or as
        new roots).  Adopting shard recorders in shard-layout order is
        what makes the merged trace independent of the worker count.
        """
        if not other.enabled:
            return
        for name in sorted(other.counters):
            self.count(name, other.counters[name].value)
        for name in sorted(other.gauges):
            self.gauge(name, other.gauges[name].value)
        for name in sorted(other.histograms):
            theirs = other.histograms[name]
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(
                    name, theirs.bounds)
            mine.merge(theirs)
        target = self._stack[-1].children if self._stack else self.roots
        target.extend(other.roots)

    # -- snapshots -------------------------------------------------------

    def all_spans(self) -> Iterator[Tuple[Span, int]]:
        """Depth-first (span, depth) over every recorded tree."""
        for root in self.roots:
            for item in root.walk():
                yield item

    def span_count(self) -> int:
        return sum(1 for _ in self.all_spans())

    def snapshot(self) -> Dict[str, object]:
        """A fully deterministic, JSON-able dump of everything recorded.

        Two recorders are observably identical iff their snapshots are
        equal — this is the object the worker-count-invariance tests
        compare.
        """
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value
                       for name in sorted(self.gauges)},
            "histograms": [self.histograms[name].as_dict()
                           for name in sorted(self.histograms)],
            "spans": [root.as_dict() for root in self.roots],
        }


class NullRecorder(Recorder):
    """A recorder that records nothing (tracing off).

    Every mutator is a no-op, so holding one unconditionally costs a
    method call and nothing else; :meth:`snapshot` is always empty.
    """

    enabled = False

    def count(self, name: str, n: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        pass

    def start_span(self, name: str, start: Optional[float] = None,
                   **attrs: object) -> Span:
        return Span(name=name, start=0.0, end=0.0)

    def end_span(self, end: Optional[float] = None) -> Span:
        return Span(name="", start=0.0, end=0.0)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        yield Span(name=name, start=0.0, end=0.0)

    def add_span(self, name: str, start: float, end: float,
                 **attrs: object) -> Span:
        return Span(name=name, start=start, end=end)

    def adopt(self, other: "Recorder") -> None:
        pass


#: Shared no-op recorder: the default wherever tracing is not enabled.
NULL_RECORDER = NullRecorder()


def merge_recorders(recorders: Sequence[Recorder],
                    clock: Optional[Clock] = None) -> Recorder:
    """A fresh recorder holding ``recorders`` merged in the given order.

    The caller supplies them in a deterministic order (for shard
    results: shard-layout order) and the merge result is then itself
    deterministic — identical no matter where or under how many workers
    the inputs were produced.
    """
    merged = Recorder(clock=clock)
    for recorder in recorders:
        merged.adopt(recorder)
    return merged
