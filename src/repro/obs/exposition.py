"""Prometheus text exposition for :class:`repro.obs.runtime.RuntimeMetrics`.

Renders a registry snapshot as the Prometheus text format (version
0.0.4): ``# HELP``/``# TYPE`` headers, escaped label values, cumulative
``le`` histogram buckets ending in ``+Inf``, ``_sum``/``_count`` series.
The output is deterministic for a given registry state — families and
series render name-sorted — which is what lets the test suite pin a
golden scrape byte for byte.

Also ships :func:`parse_exposition`, the minimal inverse used by
``repro-study metrics --live`` and the exposition tests: it maps flat
series strings (``name{label="x"}``) back to float values, enough to
drive a ticker or assert on a scrape without a Prometheus client
library.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from .metrics import Histogram
from .runtime import KIND_HISTOGRAM, RuntimeMetrics

#: The content type a /metrics response must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value (backslash, double quote, newline)."""
    return (text.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n"))


def format_value(value: float) -> str:
    """Render a sample value: integral floats as integers, else repr."""
    number = float(value)
    if number != number:
        return "NaN"
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join('%s="%s"' % (key, escape_label_value(str(value)))
                     for key, value in sorted(labels.items()))
    return "{%s}" % inner


def _bound_text(bound: float) -> str:
    return format_value(bound)


def _render_histogram(lines: List[str], name: str,
                      labels: Mapping[str, str],
                      histogram: Mapping[str, object]) -> None:
    bounds = [float(b) for b in histogram.get("bounds", [])]
    buckets = [int(c) for c in histogram.get("bucket_counts", [])]
    cumulative = 0
    for index, bound in enumerate(bounds):
        cumulative += buckets[index] if index < len(buckets) else 0
        le_labels = dict(labels)
        le_labels["le"] = _bound_text(bound)
        lines.append("%s_bucket%s %d"
                     % (name, _labels_text(le_labels), cumulative))
    cumulative += buckets[len(bounds)] if len(buckets) > len(bounds) else 0
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append("%s_bucket%s %d" % (name, _labels_text(inf_labels),
                                     cumulative))
    lines.append("%s_sum%s %s" % (name, _labels_text(labels),
                                  format_value(float(histogram.get(
                                      "total", 0.0)))))  # type: ignore[arg-type]
    lines.append("%s_count%s %d" % (name, _labels_text(labels),
                                    int(histogram.get("count", 0))))  # type: ignore[call-overload]


def render_prometheus(metrics: RuntimeMetrics) -> str:
    """The registry as Prometheus text; ends with a newline."""
    lines: List[str] = []
    for family in metrics.families():
        name = str(family["name"])
        kind = str(family["kind"])
        help_text = str(family.get("help") or "")
        if help_text:
            lines.append("# HELP %s %s" % (name, escape_help(help_text)))
        lines.append("# TYPE %s %s" % (name, kind))
        for entry in family["series"]:  # type: ignore[union-attr]
            labels = entry.get("labels", {})  # type: ignore[union-attr]
            if kind == KIND_HISTOGRAM:
                _render_histogram(lines, name, labels,
                                  entry["histogram"])  # type: ignore[index]
            else:
                lines.append("%s%s %s"
                             % (name, _labels_text(labels),
                                format_value(entry["value"])))  # type: ignore[index,arg-type]
    return "\n".join(lines) + "\n" if lines else ""


def render_histogram_standalone(histogram: Histogram,
                                labels: Mapping[str, str] = {}) -> str:
    """One histogram as exposition lines (used by tests and docs)."""
    lines: List[str] = []
    _render_histogram(lines, histogram.name, dict(labels),
                      histogram.as_dict())
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, float]:
    """Flat ``series string -> value`` map from exposition text.

    Series keys keep their label block verbatim (sorted as rendered),
    e.g. ``repro_service_jobs{state="running"}``.  Comment lines and
    blank lines are skipped; unparsable sample lines are ignored rather
    than raised, since a scraper must tolerate families it does not
    know.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value_text = line.rpartition(" ")
        if not series:
            continue
        try:
            value = _parse_value(value_text)
        except ValueError:
            continue
        values[series] = value
    return values


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def split_series(series: str) -> Tuple[str, Dict[str, str]]:
    """``name{a="b"}`` -> ``("name", {"a": "b"})`` (best-effort).

    Handles the subset of label syntax this package renders — escaped
    quotes included — which is all the ticker needs.
    """
    if "{" not in series:
        return series, {}
    name, _, rest = series.partition("{")
    rest = rest.rstrip("}")
    labels: Dict[str, str] = {}
    key = ""
    buff = ""
    in_value = False
    escaped = False
    for char in rest:
        if in_value:
            if escaped:
                buff += {"n": "\n"}.get(char, char)
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                labels[key] = buff
                key, buff, in_value = "", "", False
            else:
                buff += char
        elif char == '"':
            in_value = True
        elif char in ",=":
            continue
        else:
            key += char
    return name, labels


__all__ = [
    "CONTENT_TYPE",
    "escape_help",
    "escape_label_value",
    "format_value",
    "parse_exposition",
    "render_histogram_standalone",
    "render_prometheus",
    "split_series",
]
