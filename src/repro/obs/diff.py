"""Trace diffing: align two JSONL traces, report what moved.

The point of a byte-stable trace format is that two runs can be
*compared*, not just recorded.  This module aligns two parsed traces
(:func:`repro.obs.export.read_trace` output) span-by-span along the
study > stage > shard > site > request hierarchy and reports:

* **per-stage timing deltas** — total duration per ``kind="stage"``
  span name (crawl, tokens, detect, analysis, ...), in each name's own
  clock domain;
* **per-name span timing deltas** — the same aggregation over every
  span name (shard, site, request, ...);
* **counter / gauge / histogram deltas** — metric values that differ
  (a metric missing on one side counts as 0 there, and the absence is
  reported);
* **added / removed span subtrees** — top-most aligned keys present in
  only one trace, with the size of the vanished/appeared subtree.

Alignment is *semantic*, not positional: each span gets a key built
from its ancestry of ``name[discriminator]`` segments (domain for
sites, shard index for shards, host for requests) plus an occurrence
counter for repeated siblings — so inserting one site span early in a
trace does not misalign every later span the way raw ``path`` indices
would.

:func:`parse_fail_on` / :meth:`TraceDiff.violations` turn a diff into
a CI gate: specs like ``stage_time>20%``, ``stage_time:detect>0.5``,
``counter:leaks_detected!=0``, ``counter:*!=0`` or ``spans!=0`` make
``repro-trace diff A B --fail-on ...`` exit nonzero exactly when the
two runs genuinely drifted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Attr keys that identify a span among its siblings, in priority order.
_DISCRIMINATOR_ATTRS = ("domain", "index", "host", "kind")

#: Relative-change value reported when the baseline side is zero but
#: the other side is not (an infinite relative increase, clamped).
_REL_WHEN_BASE_ZERO = float("inf")


#: The ``--fail-on`` spec grammar, echoed by every parse error so a
#: mistyped gate spec teaches its own syntax.
FAIL_ON_GRAMMAR = (
    "KIND[:NAME]OP LIMIT[%] where KIND is stage_time|counter|gauge|"
    "histogram|spans, NAME is a metric/stage name or glob (spans takes "
    "none), OP is one of > >= != == < <=, and % thresholds apply to "
    "stage_time only. Examples: 'stage_time>20%', "
    "'stage_time:detect>0.5', 'counter:leaks_detected!=0', "
    "'counter:*!=0', 'histogram:*.count!=0', 'spans!=0'"
)


class FailOnError(ValueError):
    """A ``--fail-on`` spec could not be parsed."""


# ---------------------------------------------------------------------------
# The delta records.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricDelta:
    """One metric (counter/gauge/histogram field) that differs."""

    kind: str       # "counter" | "gauge" | "histogram"
    name: str       # metric name ("hist.count"-style for histograms)
    a: float
    b: float
    #: Which side(s) actually defined the metric ("both", "a", "b").
    present: str = "both"

    @property
    def delta(self) -> float:
        return self.b - self.a

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "a": self.a,
                "b": self.b, "delta": self.delta, "present": self.present}


@dataclass(frozen=True)
class TimingDelta:
    """Aggregate duration change for one span name."""

    name: str
    a_total: float
    b_total: float
    a_count: int
    b_count: int
    stage: bool = False     # True when aggregated over kind="stage" spans

    @property
    def delta(self) -> float:
        return self.b_total - self.a_total

    @property
    def relative(self) -> float:
        """(b - a) / a; +inf when a == 0 and b != 0; 0 when both are 0."""
        if self.a_total == 0:
            return 0.0 if self.b_total == 0 else _REL_WHEN_BASE_ZERO
        return (self.b_total - self.a_total) / self.a_total

    def as_dict(self) -> Dict[str, object]:
        rel = self.relative
        return {"name": self.name, "a_total": self.a_total,
                "b_total": self.b_total, "a_count": self.a_count,
                "b_count": self.b_count, "delta": self.delta,
                "relative": None if rel == _REL_WHEN_BASE_ZERO else rel,
                "stage": self.stage}


@dataclass(frozen=True)
class SubtreeChange:
    """A span subtree present in only one trace."""

    key: str        # the aligned key of the subtree root
    spans: int      # spans in the subtree (root included)

    def as_dict(self) -> Dict[str, object]:
        return {"key": self.key, "spans": self.spans}


@dataclass
class TraceDiff:
    """Everything that differs between trace A and trace B."""

    stages: List[TimingDelta] = field(default_factory=list)
    spans: List[TimingDelta] = field(default_factory=list)
    counters: List[MetricDelta] = field(default_factory=list)
    gauges: List[MetricDelta] = field(default_factory=list)
    histograms: List[MetricDelta] = field(default_factory=list)
    added: List[SubtreeChange] = field(default_factory=list)
    removed: List[SubtreeChange] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the two traces are observably identical."""
        return (not self.counters and not self.gauges
                and not self.histograms and not self.added
                and not self.removed
                and all(d.delta == 0 for d in self.stages)
                and all(d.delta == 0 for d in self.spans))

    def metric_deltas(self) -> List[MetricDelta]:
        return list(self.counters) + list(self.gauges) + \
            list(self.histograms)

    def violations(self,
                   conditions: Sequence["FailCondition"]) -> List[str]:
        """Human-readable description of every tripped condition."""
        out: List[str] = []
        for condition in conditions:
            out.extend(condition.check(self))
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "empty": self.is_empty,
            "stages": [d.as_dict() for d in self.stages],
            "spans": [d.as_dict() for d in self.spans],
            "counters": [d.as_dict() for d in self.counters],
            "gauges": [d.as_dict() for d in self.gauges],
            "histograms": [d.as_dict() for d in self.histograms],
            "added": [c.as_dict() for c in self.added],
            "removed": [c.as_dict() for c in self.removed],
        }


# ---------------------------------------------------------------------------
# Span-tree reconstruction and alignment.
# ---------------------------------------------------------------------------

class _Node:
    """One span record rebuilt into a tree, with its aligned key."""

    __slots__ = ("record", "key", "children")

    def __init__(self, record: Dict[str, object], key: str) -> None:
        self.record = record
        self.key = key
        self.children: List["_Node"] = []

    @property
    def duration(self) -> float:
        end = self.record.get("end")
        if end is None:
            return 0.0
        return float(end) - float(self.record["start"])  # type: ignore

    def subtree_size(self) -> int:
        return 1 + sum(child.subtree_size() for child in self.children)


def _segment(record: Dict[str, object]) -> str:
    attrs = record.get("attrs") or {}
    for key in _DISCRIMINATOR_ATTRS:
        if isinstance(attrs, dict) and key in attrs:
            return "%s[%s=%s]" % (record["name"], key, attrs[key])
    return str(record["name"])


def _build_tree(span_records: Sequence[Dict[str, object]]) -> List[_Node]:
    """Rebuild the span forest from flat depth-first ``path`` records.

    Keys are assigned during the walk: a node's key is its parent's key
    plus its own ``name[discriminator]`` segment, suffixed ``#n`` for
    the n-th sibling with an identical segment — stable under subtree
    insertion/removal, unlike the positional ``path``.
    """
    roots: List[_Node] = []
    by_path: Dict[Tuple[int, ...], _Node] = {}
    seen: Dict[Tuple[str, str], int] = {}   # (parent key, segment) -> count
    for record in span_records:
        path = tuple(int(part) for part in record.get("path", ()))
        if not path:
            continue
        parent = by_path.get(path[:-1])
        parent_key = parent.key if parent is not None else ""
        segment = _segment(record)
        occurrence = seen.get((parent_key, segment), 0)
        seen[(parent_key, segment)] = occurrence + 1
        key = "%s/%s" % (parent_key, segment)
        if occurrence:
            key += "#%d" % occurrence
        node = _Node(record, key)
        by_path[path] = node
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def _index_nodes(roots: Sequence[_Node]) -> Dict[str, _Node]:
    out: Dict[str, _Node] = {}

    def walk(node: _Node) -> None:
        out[node.key] = node
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    return out


def _iter_nodes(roots: Sequence[_Node]) -> Iterator[_Node]:
    stack = list(reversed(list(roots)))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def _topmost_only(nodes: Dict[str, _Node],
                  other: Dict[str, _Node]) -> List[SubtreeChange]:
    """Subtree changes for keys in ``nodes`` missing from ``other``,
    reporting only the top-most root of each vanished subtree."""
    changes: List[SubtreeChange] = []
    for key in sorted(nodes):
        if key in other:
            continue
        parent_key = key.rsplit("/", 1)[0]
        if parent_key and parent_key in nodes and parent_key not in other:
            continue    # an ancestor already reports this subtree
        changes.append(SubtreeChange(key=key,
                                     spans=nodes[key].subtree_size()))
    return changes


# ---------------------------------------------------------------------------
# The diff itself.
# ---------------------------------------------------------------------------

def _metric_table(records: Sequence[Dict[str, object]]) -> Dict[str, float]:
    return {str(record["name"]): float(record["value"])  # type: ignore
            for record in records}


def _metric_deltas(kind: str, a: Dict[str, float],
                   b: Dict[str, float]) -> List[MetricDelta]:
    deltas: List[MetricDelta] = []
    for name in sorted(set(a) | set(b)):
        value_a, value_b = a.get(name, 0.0), b.get(name, 0.0)
        present = ("both" if name in a and name in b
                   else "a" if name in a else "b")
        if value_a != value_b or present != "both":
            deltas.append(MetricDelta(kind=kind, name=name, a=value_a,
                                      b=value_b, present=present))
    return deltas


def _histogram_deltas(a: Sequence[Dict[str, object]],
                      b: Sequence[Dict[str, object]]) -> List[MetricDelta]:
    """Histograms compare on their two scalar moments, count and total."""
    table_a: Dict[str, float] = {}
    table_b: Dict[str, float] = {}
    for records, table in ((a, table_a), (b, table_b)):
        for record in records:
            for moment in ("count", "total"):
                table["%s.%s" % (record["name"], moment)] = \
                    float(record[moment])  # type: ignore
    return _metric_deltas("histogram", table_a, table_b)


def _timing_deltas(nodes_a: Dict[str, _Node],
                   nodes_b: Dict[str, _Node]) -> Tuple[List[TimingDelta],
                                                       List[TimingDelta]]:
    """(stage deltas, per-name deltas) over the aligned span pairs.

    Durations aggregate per span name over *matched* keys only, so an
    added/removed subtree shows up once (in ``added``/``removed``)
    instead of also skewing every timing row.
    """
    totals: Dict[str, List[float]] = {}   # name -> [a_total, b_total, na, nb]
    stage_names: Dict[str, bool] = {}
    for key in set(nodes_a) & set(nodes_b):
        node_a, node_b = nodes_a[key], nodes_b[key]
        name = str(node_a.record["name"])
        row = totals.setdefault(name, [0.0, 0.0, 0, 0])
        row[0] += node_a.duration
        row[1] += node_b.duration
        row[2] += 1
        row[3] += 1
        attrs = node_a.record.get("attrs") or {}
        if isinstance(attrs, dict) and attrs.get("kind") == "stage":
            stage_names[name] = True
    spans = [TimingDelta(name=name, a_total=row[0], b_total=row[1],
                         a_count=int(row[2]), b_count=int(row[3]),
                         stage=name in stage_names)
             for name, row in sorted(totals.items())]
    stages = [delta for delta in spans if delta.stage]
    return stages, spans


def diff_traces(a: Dict[str, List[Dict[str, object]]],
                b: Dict[str, List[Dict[str, object]]]) -> TraceDiff:
    """Diff two parsed traces (:func:`repro.obs.export.read_trace`).

    Returns a :class:`TraceDiff`; two byte-identical traces produce an
    empty one (``diff.is_empty``).
    """
    roots_a = _build_tree(a.get("span", ()))
    roots_b = _build_tree(b.get("span", ()))
    nodes_a = _index_nodes(roots_a)
    nodes_b = _index_nodes(roots_b)
    stages, spans = _timing_deltas(nodes_a, nodes_b)
    return TraceDiff(
        stages=stages,
        spans=spans,
        counters=_metric_deltas("counter", _metric_table(a.get("counter", ())),
                                _metric_table(b.get("counter", ()))),
        gauges=_metric_deltas("gauge", _metric_table(a.get("gauge", ())),
                              _metric_table(b.get("gauge", ()))),
        histograms=_histogram_deltas(a.get("histogram", ()),
                                     b.get("histogram", ())),
        added=_topmost_only(nodes_b, nodes_a),
        removed=_topmost_only(nodes_a, nodes_b),
    )


# ---------------------------------------------------------------------------
# --fail-on conditions.
# ---------------------------------------------------------------------------

_OPS = {
    ">": lambda value, limit: value > limit,
    ">=": lambda value, limit: value >= limit,
    "!=": lambda value, limit: value != limit,
    "<": lambda value, limit: value < limit,
    "<=": lambda value, limit: value <= limit,
    "==": lambda value, limit: value == limit,
}


@dataclass(frozen=True)
class FailCondition:
    """One parsed ``--fail-on`` threshold.

    ``kind`` is ``stage_time`` (relative or absolute per-stage duration
    increase), ``counter``/``gauge``/``histogram`` (value delta), or
    ``spans`` (added + removed subtree count).  ``pattern`` is an
    fnmatch glob over names (``*`` for all); ``percent`` interprets the
    limit as a relative change for timing conditions.
    """

    kind: str
    pattern: str
    op: str
    limit: float
    percent: bool
    spec: str           # the original text, for error messages

    def check(self, diff: TraceDiff) -> List[str]:
        compare = _OPS[self.op]
        hits: List[str] = []
        if self.kind == "spans":
            value = float(len(diff.added) + len(diff.removed))
            if compare(value, self.limit):
                hits.append("%s: %d added + %d removed span subtree(s)"
                            % (self.spec, len(diff.added),
                               len(diff.removed)))
            return hits
        if self.kind == "stage_time":
            for delta in diff.stages:
                if not fnmatchcase(delta.name, self.pattern):
                    continue
                value = (delta.relative if self.percent
                         else float(delta.delta))
                if compare(value, self.limit):
                    hits.append(
                        "%s: stage %r moved %g -> %g (%+.1f%%)"
                        % (self.spec, delta.name, delta.a_total,
                           delta.b_total, 100.0 * delta.relative
                           if delta.relative != _REL_WHEN_BASE_ZERO
                           else float("inf")))
            return hits
        for delta in diff.metric_deltas():
            if delta.kind != self.kind:
                continue
            if not fnmatchcase(delta.name, self.pattern):
                continue
            if compare(float(delta.delta), self.limit):
                hits.append("%s: %s %r moved %g -> %g (delta %+g)"
                            % (self.spec, delta.kind, delta.name,
                               delta.a, delta.b, delta.delta))
        return hits


def parse_fail_on(spec: str) -> FailCondition:
    """Parse one ``--fail-on`` spec.

    Grammar::

        stage_time>20%            any stage's total grew more than 20%
        stage_time:detect>0.5     the detect stage grew more than 50%
        stage_time:crawl>100      absolute delta (no % sign) over 100
        counter:leaks_detected!=0 that counter's delta is nonzero
        counter:*!=0              any counter delta is nonzero
        gauge:shards.total!=0     gauge deltas, same shape
        histogram:*.count!=0      histogram count/total moments
        spans!=0                  any added or removed span subtree

    Raises :class:`FailOnError` on anything else; every error message
    echoes the supported grammar (:data:`FAIL_ON_GRAMMAR`).
    """
    def fail(why: str) -> "FailOnError":
        return FailOnError("--fail-on %r: %s; expected %s"
                           % (spec, why, FAIL_ON_GRAMMAR))

    text = spec.strip()
    for op in (">=", "<=", "!=", "==", ">", "<"):
        index = text.find(op)
        if index > 0:
            left, right = text[:index], text[index + len(op):]
            break
    else:
        raise fail("missing a comparison operator")
    right = right.strip()
    percent = right.endswith("%")
    if percent:
        right = right[:-1]
    try:
        limit = float(right)
    except ValueError:
        raise fail("limit %r is not a number" % right) from None
    if percent:
        limit /= 100.0
    left = left.strip()
    if ":" in left:
        kind, pattern = left.split(":", 1)
    else:
        kind, pattern = left, "*"
    kind = kind.strip()
    pattern = pattern.strip() or "*"
    if kind not in ("stage_time", "counter", "gauge", "histogram",
                    "spans"):
        raise fail("unknown kind %r" % kind)
    if kind == "spans" and pattern != "*":
        raise fail("spans takes no name")
    if percent and kind != "stage_time":
        raise fail("%% thresholds only apply to stage_time")
    # stage_time defaults to a relative reading when the limit came
    # with a % sign; counters and friends always compare the delta.
    return FailCondition(kind=kind, pattern=pattern, op=op, limit=limit,
                         percent=percent, spec=spec)


# ---------------------------------------------------------------------------
# Rendering.
# ---------------------------------------------------------------------------

def render_diff(diff: TraceDiff, label_a: str = "A", label_b: str = "B",
                top: int = 20) -> str:
    """Human-readable report of a :class:`TraceDiff`."""
    lines: List[str] = []
    if diff.is_empty:
        return "traces are observably identical (empty delta)"
    lines.append("trace diff: %s -> %s" % (label_a, label_b))

    moved_stages = [d for d in diff.stages if d.delta != 0]
    if moved_stages:
        lines.append("")
        lines.append("stage timing (clock-domain-local totals):")
        lines.append("  %-16s %12s %12s %10s" % ("stage", label_a,
                                                 label_b, "change"))
        for delta in moved_stages[:top]:
            lines.append("  %-16s %12.3f %12.3f %s"
                         % (delta.name, delta.a_total, delta.b_total,
                            _change_label(delta)))

    moved_spans = [d for d in diff.spans if d.delta != 0 and not d.stage]
    if moved_spans:
        lines.append("")
        lines.append("span timing by name (aligned spans only):")
        lines.append("  %-16s %12s %12s %10s" % ("name", label_a,
                                                 label_b, "change"))
        for delta in moved_spans[:top]:
            lines.append("  %-16s %12.3f %12.3f %s"
                         % (delta.name, delta.a_total, delta.b_total,
                            _change_label(delta)))

    for title, deltas in (("counters", diff.counters),
                          ("gauges", diff.gauges),
                          ("histograms", diff.histograms)):
        if not deltas:
            continue
        lines.append("")
        lines.append("%s:" % title)
        for delta in deltas[:top]:
            note = "" if delta.present == "both" else \
                "   (only in %s)" % delta.present
            lines.append("  %-40s %12g -> %-12g %+g%s"
                         % (delta.name, delta.a, delta.b, delta.delta,
                            note))
        if len(deltas) > top:
            lines.append("  ... and %d more" % (len(deltas) - top))

    for title, changes in (("added span subtrees (only in %s)" % label_b,
                            diff.added),
                           ("removed span subtrees (only in %s)" % label_a,
                            diff.removed)):
        if not changes:
            continue
        lines.append("")
        lines.append("%s:" % title)
        for change in changes[:top]:
            lines.append("  %s   (%d span(s))" % (change.key,
                                                  change.spans))
        if len(changes) > top:
            lines.append("  ... and %d more" % (len(changes) - top))
    return "\n".join(lines)


def _change_label(delta: TimingDelta) -> str:
    rel = delta.relative
    if rel == _REL_WHEN_BASE_ZERO:
        return "+inf%"
    return "%+.1f%%" % (100.0 * rel)
