"""Structured observability for the crawl→detect→analyze pipeline.

Dependency-free counters, gauges, timing histograms and hierarchical
spans (study → stage → shard → site → request), recorded against an
injectable deterministic clock so tracing never perturbs dataset
fingerprints: a crawl with tracing on is bit-identical to one with
tracing off, and the merged trace of a parallel crawl is identical at
every worker count.

Entry points: pass a :class:`Recorder` via
``StudyConfig.with_observability()`` (library), ``--trace out.jsonl``
and ``--progress`` on ``repro-study`` (CLI), ``repro-trace summarize``
/ ``repro-trace diff`` to read and compare the exported JSONL, and
:mod:`repro.obs.regress` to gate bench reports against the committed
baselines under ``benchmarks/baselines/``.
"""

from .clock import Clock, TickClock, WallClock
from .diff import (
    FAIL_ON_GRAMMAR,
    FailCondition,
    FailOnError,
    TraceDiff,
    diff_traces,
    parse_fail_on,
    render_diff,
)
from .export import (
    TRACE_SCHEMA_VERSION,
    TraceError,
    read_trace,
    summarize_recorder,
    summarize_trace,
    summary_dict,
    trace_lines,
    write_trace,
)
from .exposition import (
    CONTENT_TYPE as METRICS_CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
)
from .flame import (
    folded_lines,
    slowest_spans,
    stage_totals,
    write_folded,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram
from .progress import (
    HeartbeatEvent,
    ProgressAggregator,
    read_progress_log,
)
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    merge_recorders,
)
from .regress import (
    BaselineError,
    BaselineRegistry,
    RegressionFinding,
    RegressionReport,
    check_ordering,
    check_report,
    fold_report,
    new_baseline,
)
from .runtime import (
    ResourceSampler,
    RuntimeMetrics,
    aggregate_resources,
    render_ticker,
    sample_resources,
    wall_now,
)

__all__ = [
    "BaselineError",
    "BaselineRegistry",
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "FAIL_ON_GRAMMAR",
    "FailCondition",
    "FailOnError",
    "Gauge",
    "HeartbeatEvent",
    "Histogram",
    "METRICS_CONTENT_TYPE",
    "NULL_RECORDER",
    "NullRecorder",
    "ProgressAggregator",
    "Recorder",
    "RegressionFinding",
    "RegressionReport",
    "ResourceSampler",
    "RuntimeMetrics",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TickClock",
    "TraceDiff",
    "TraceError",
    "WallClock",
    "aggregate_resources",
    "check_ordering",
    "check_report",
    "diff_traces",
    "fold_report",
    "folded_lines",
    "merge_recorders",
    "new_baseline",
    "parse_exposition",
    "parse_fail_on",
    "read_progress_log",
    "read_trace",
    "render_diff",
    "render_prometheus",
    "render_ticker",
    "sample_resources",
    "slowest_spans",
    "stage_totals",
    "summarize_recorder",
    "summarize_trace",
    "summary_dict",
    "trace_lines",
    "wall_now",
    "write_folded",
    "write_trace",
]
