"""Structured observability for the crawl→detect→analyze pipeline.

Dependency-free counters, gauges, timing histograms and hierarchical
spans (study → stage → shard → site → request), recorded against an
injectable deterministic clock so tracing never perturbs dataset
fingerprints: a crawl with tracing on is bit-identical to one with
tracing off, and the merged trace of a parallel crawl is identical at
every worker count.

Entry points: pass a :class:`Recorder` via
``StudyConfig.with_observability()`` (library), ``--trace out.jsonl``
on ``repro-study`` (CLI), and ``repro-trace summarize`` to read the
exported JSONL.
"""

from .clock import Clock, TickClock, WallClock
from .export import (
    TRACE_SCHEMA_VERSION,
    TraceError,
    read_trace,
    summarize_recorder,
    summarize_trace,
    trace_lines,
    write_trace,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    merge_recorders,
)

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TickClock",
    "TraceError",
    "WallClock",
    "merge_recorders",
    "read_trace",
    "summarize_recorder",
    "summarize_trace",
    "trace_lines",
    "write_trace",
]
