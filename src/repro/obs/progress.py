"""Live crawl progress: per-shard heartbeats, aggregated in the parent.

Each crawl step emits one picklable :class:`HeartbeatEvent` — sites
crawled so far, the flow status, retry and circuit-breaker tallies,
and a dict of *counter deltas* using exactly the
:class:`~repro.obs.Recorder` counter names (``crawl.sites``,
``crawl.flows.<status>``, ...).  Workers in a
:class:`~repro.crawler.ParallelCrawler` pool put events on a
``multiprocessing`` queue; the parent drains it into a
:class:`ProgressAggregator`, which renders a line-oriented status
stream and optionally appends every event to a machine-readable
``progress.jsonl``.

Two invariants, mirrored from the tracing layer:

* **Progress never changes a dataset fingerprint.**  Heartbeats are
  derived from crawl state, never fed back into it — a crawl with
  ``--progress`` on is bit-identical to one with it off, at any worker
  count (asserted in ``tests/test_obs_progress.py``).
* **Heartbeat counters reconcile with the trace.**  Because deltas use
  the recorder's own counter names and are computed from the same step
  outcome, summing every heartbeat's ``counters`` reproduces the
  merged recorder's ``crawl.*`` counters exactly.

Heartbeat payloads cross the process boundary, so the PKL301–303
pickle-safety rules apply to this module (it is inside the statan
pickle scope): events are plain dataclasses — no lambdas, no handles.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO

#: Schema version of progress.jsonl records; bump on incompatible changes.
PROGRESS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class HeartbeatEvent:
    """One crawl step (or shard completion), as seen by the parent.

    ``counters`` holds the step's counter *deltas* under the recorder's
    counter names; ``retried`` and ``quarantined`` are cumulative per
    shard (the circuit-breaker state the paper's resilient crawl
    exposes).  ``final`` marks the shard's completion event, whose
    ``counters`` are empty — sums over a shard's events are unaffected
    by whether the final marker is counted.
    """

    shard: int                  # shard index (0 for a serial crawl)
    crawled: int                # sites finished in this shard so far
    total: int                  # sites this shard will crawl
    domain: str = ""            # the site this step crawled
    status: str = ""            # its FlowResult status
    counters: Dict[str, float] = field(default_factory=dict)
    retried: int = 0            # cumulative flows that needed retries
    quarantined: int = 0        # cumulative circuit-breaker give-ups
    final: bool = False
    #: Optional ops telemetry (CPU/RSS/GC deltas since shard start, see
    #: :class:`repro.obs.runtime.ResourceSampler`).  None — the default
    #: — keeps the event byte-identical to pre-telemetry logs.
    resources: Optional[Dict[str, float]] = None

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "heartbeat",
            "schema": PROGRESS_SCHEMA_VERSION,
            "shard": self.shard,
            "crawled": self.crawled,
            "total": self.total,
            "domain": self.domain,
            "status": self.status,
            "counters": {key: self.counters[key]
                         for key in sorted(self.counters)},
            "retried": self.retried,
            "quarantined": self.quarantined,
            "final": self.final,
        }
        if self.resources is not None:
            record["resources"] = {key: self.resources[key]
                                   for key in sorted(self.resources)}
        return record


def step_heartbeat(shard: int, crawled: int, total: int, domain: str,
                   status: str, attempts: int, requests: int,
                   retried: int, quarantined: int,
                   resources: Optional[Dict[str, float]] = None
                   ) -> HeartbeatEvent:
    """The heartbeat for one finished crawl step.

    The counter deltas mirror :meth:`repro.crawler.CrawlSession.step`'s
    recorder counts one for one — same names, same increments — which
    is what makes heartbeat sums reconcile with the merged trace.
    """
    counters: Dict[str, float] = {
        "crawl.sites": 1,
        "crawl.flows.%s" % status: 1,
        "crawl.requests": float(requests),
    }
    if attempts > 1:
        counters["crawl.retried_flows"] = 1
    return HeartbeatEvent(shard=shard, crawled=crawled, total=total,
                          domain=domain, status=status, counters=counters,
                          retried=retried, quarantined=quarantined,
                          resources=resources)


def final_heartbeat(shard: int, crawled: int, total: int, retried: int,
                    quarantined: int,
                    resources: Optional[Dict[str, float]] = None
                    ) -> HeartbeatEvent:
    """The completion marker a shard emits after its last site."""
    return HeartbeatEvent(shard=shard, crawled=crawled, total=total,
                          retried=retried, quarantined=quarantined,
                          final=True, resources=resources)


@dataclass
class _ShardProgress:
    """The aggregator's view of one shard."""

    crawled: int = 0
    total: int = 0
    retried: int = 0
    quarantined: int = 0
    done: bool = False


class ProgressAggregator:
    """Folds heartbeat events into a crawl-wide progress view.

    The aggregator is the parent-side sink: call it (or :meth:`handle`)
    with every :class:`HeartbeatEvent`.  ``stream`` (e.g. ``sys.stderr``)
    gets one rendered status line per event; ``jsonl_path`` appends
    every event as one JSON line (the machine-readable twin).  Both are
    optional — with neither, the aggregator still accumulates totals
    for programmatic use (:meth:`counter_totals`, :meth:`snapshot`).

    Instances live in the parent process only; what crosses the worker
    boundary is the plain :class:`HeartbeatEvent`.

    ``append=True`` opens the JSONL sink in append mode — the resume
    idiom: an interrupted-and-resumed study keeps one continuous
    ``progress.jsonl`` across attempts instead of truncating its own
    history.

    Live fan-out: :meth:`subscribe` registers extra listeners that
    receive every event *after* it is folded in — the hook the service
    layer uses to bridge heartbeats into per-job SSE streams without
    the engine knowing about either.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 jsonl_path: Optional[str] = None,
                 append: bool = False) -> None:
        self.stream = stream
        self.jsonl_path = jsonl_path
        self.events_seen = 0
        self.status_counts: Dict[str, int] = {}
        self._counters: Dict[str, float] = {}
        self._shards: Dict[int, _ShardProgress] = {}
        self._resources: Dict[int, Dict[str, float]] = {}
        self._listeners: List[Callable[[HeartbeatEvent], None]] = []
        self._jsonl: Optional[TextIO] = None
        if jsonl_path is not None:
            # Parent-side only: the aggregator never crosses the process
            # boundary (HeartbeatEvent does), so holding the sink open
            # is safe.
            mode = "a" if append else "w"
            self._jsonl = open(jsonl_path, mode)  # statan: ignore[PKL303] -- parent-side sink; aggregator never pickled

    # -- sinking ---------------------------------------------------------

    def __call__(self, event: HeartbeatEvent) -> None:
        self.handle(event)

    def handle(self, event: HeartbeatEvent) -> None:
        """Fold one event in; render and log it if configured."""
        self.events_seen += 1
        shard = self._shards.setdefault(event.shard, _ShardProgress())
        shard.crawled = event.crawled
        shard.total = event.total
        shard.retried = event.retried
        shard.quarantined = event.quarantined
        if event.final:
            shard.done = True
        if event.status:
            self.status_counts[event.status] = \
                self.status_counts.get(event.status, 0) + 1
        if event.resources is not None:
            # Delta-since-shard-start samples: last write wins per
            # shard, so the latest heartbeat always carries the most
            # complete view of that shard's attempt.
            self._resources[event.shard] = dict(event.resources)
        for name, delta in event.counters.items():
            self._counters[name] = self._counters.get(name, 0.0) + delta
        if self._jsonl is not None:
            # One write + flush per event: a crash (or a SIGKILL'd
            # study) can truncate at most the final line, which
            # read_progress_log and the trace loaders tolerate.
            self._jsonl.write(json.dumps(event.as_dict(), sort_keys=True,
                                         separators=(",", ":")) + "\n")
            self._jsonl.flush()
        if self.stream is not None:
            self.stream.write(self.render_line(event) + "\n")
            self.stream.flush()
        for listener in tuple(self._listeners):
            listener(event)

    def subscribe(self, listener: Callable[[HeartbeatEvent], None]
                  ) -> Callable[[], None]:
        """Register a live event listener; returns an unsubscriber.

        Listeners run on whichever thread calls :meth:`handle` (the
        engine's drain thread), after the event is folded into the
        totals, in subscription order.  They must not raise — an
        exception would propagate into the crawl's event drain.
        Subscribing and unsubscribing are safe from other threads
        (single atomic list operations); the returned callable is
        idempotent.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def close(self) -> None:
        """Flush and close the progress.jsonl sink (idempotent)."""
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None

    def __enter__(self) -> "ProgressAggregator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- views -----------------------------------------------------------

    @property
    def crawled(self) -> int:
        return sum(shard.crawled for shard in self._shards.values())

    @property
    def total(self) -> int:
        return sum(shard.total for shard in self._shards.values())

    @property
    def retried(self) -> int:
        return sum(shard.retried for shard in self._shards.values())

    @property
    def quarantined(self) -> int:
        return sum(shard.quarantined for shard in self._shards.values())

    @property
    def shards_done(self) -> int:
        return sum(1 for shard in self._shards.values() if shard.done)

    @property
    def shards_seen(self) -> int:
        return len(self._shards)

    def counter_totals(self) -> Dict[str, float]:
        """Summed counter deltas over every event handled so far.

        Matches the merged recorder's ``crawl.*`` counters for the same
        crawl (see the module docstring's reconciliation invariant).
        """
        return dict(sorted(self._counters.items()))

    def resource_usage(self) -> Dict[str, object]:
        """Per-shard resource samples plus study-wide totals.

        ``{"shards": {"<index>": sample, ...}, "totals": {...}}`` —
        empty dict when no heartbeat carried resources (telemetry off).
        Samples are CPU/GC deltas since shard start and absolute RSS
        peaks, so the totals sum/max correctly across shards however
        they were scheduled (see :mod:`repro.obs.runtime`).
        """
        if not self._resources:
            return {}
        from .runtime import aggregate_resources
        shards = {str(index): dict(self._resources[index])
                  for index in sorted(self._resources)}
        return {"shards": shards,
                "totals": aggregate_resources(self._resources.values())}

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able summary of the whole crawl's progress."""
        snapshot: Dict[str, object] = {
            "crawled": self.crawled,
            "total": self.total,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "shards_seen": self.shards_seen,
            "shards_done": self.shards_done,
            "statuses": dict(sorted(self.status_counts.items())),
            "counters": self.counter_totals(),
            "events": self.events_seen,
        }
        resources = self.resource_usage()
        if resources:
            snapshot["resources"] = resources
        return snapshot

    def render_line(self, event: Optional[HeartbeatEvent] = None) -> str:
        """One status line: crawl-wide totals plus the triggering event."""
        ok = self.status_counts.get("success", 0)
        failed = sum(count for status, count in self.status_counts.items()
                     if status != "success")
        line = ("crawl %d/%d sites  ok %d  failed %d  retried %d  "
                "quarantined %d  shards %d/%d done"
                % (self.crawled, self.total, ok, failed, self.retried,
                   self.quarantined, self.shards_done, self.shards_seen))
        if event is not None and event.domain:
            line += "  [shard %d: %s %s]" % (event.shard, event.domain,
                                             event.status)
        elif event is not None and event.final:
            line += "  [shard %d: done]" % event.shard
        return line


def read_progress_log(path: str) -> List[Dict[str, object]]:
    """Parse a progress.jsonl file back into event dicts.

    A malformed *final* line is skipped with a warning rather than
    raised: the writer flushes line-by-line, so a crawl killed mid-write
    leaves at most one truncated trailing record and the rest of the
    log stays usable.  Malformed lines anywhere else still raise — they
    mean corruption, not a crash.
    """
    events: List[Dict[str, object]] = []
    lines = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                lines.append((number, line))
    for position, (number, line) in enumerate(lines):
        try:
            events.append(json.loads(line))
        except ValueError:
            if position == len(lines) - 1:
                warnings.warn(
                    "%s line %d is truncated (the writer likely died "
                    "mid-write); skipping the partial trailing record"
                    % (path, number), stacklevel=2)
                break
            raise
    return events
