"""Operational runtime telemetry: the wall-clock side of observability.

Everything in :mod:`repro.obs` so far lives in the *deterministic*
domain — recorders on tick clocks, traces that are bit-identical run
to run.  This module is deliberately the other half: a thread-safe,
dependency-free :class:`RuntimeMetrics` registry the service updates
on every request and job transition (queue depth, jobs by state,
submit/run latency, SSE subscribers, bytes served), plus per-shard
*resource accounting* (:class:`ResourceSampler` over
``resource.getrusage`` + GC stats) that rides the existing heartbeat
channel.

The contract that keeps the two domains apart:

* **Runtime telemetry never feeds a fingerprint or a trace.**  Nothing
  here writes into a :class:`~repro.obs.recorder.Recorder`; resource
  samples travel on :class:`~repro.obs.progress.HeartbeatEvent` (the
  live view that is already outside every determinism contract) and
  surface in ``progress.jsonl``, bench reports and the study manifest
  — never in ``trace.jsonl`` and never in a dataset.  A crawl with
  resource telemetry on is bit-identical to one with it off, at any
  worker count (``tests/test_obs_resources.py`` pins this).
* **Wall-clock and OS counters are the point**, so the module sits in
  the statan determinism scope with explicit ``DET101`` suppressions:
  every host-clock read below is ops telemetry by contract.

Scrape side: :func:`repro.obs.exposition.render_prometheus` turns a
registry into Prometheus text for ``GET /metrics``; ``repro-study
metrics`` is the one-shot/``--live`` scraper (see
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import gc
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .metrics import Histogram

try:                        # Unix-only; the sampler degrades gracefully.
    import resource as _resource
except ImportError:         # pragma: no cover - non-Unix platforms
    _resource = None  # type: ignore[assignment]

#: Latency bucket upper bounds (seconds) for service histograms:
#: 5ms to 5min, wide enough for both a submit() and a whole study run.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0,
)

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

#: A series is keyed by its sorted ``(label, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def wall_now() -> float:
    """Wall-clock seconds for runtime telemetry (monotonic).

    The sanctioned ops clock: latency histograms and uptime only —
    nothing returned here may reach a fingerprint or a trace.
    """
    return time.perf_counter()  # statan: ignore[DET101] -- ops telemetry clock by contract; never feeds a fingerprint or trace


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value))
                        for key, value in labels.items()))


@dataclass
class _Family:
    """One metric family: a name, a kind, and its labeled series."""

    name: str
    kind: str
    help: str = ""
    bounds: Tuple[float, ...] = LATENCY_BUCKETS
    #: counter/gauge series hold floats; histogram series Histograms.
    series: Dict[LabelKey, object] = field(default_factory=dict)


class RuntimeMetrics:
    """A thread-safe registry of labeled counters, gauges, histograms.

    Deliberately dependency-free and small: families are created on
    first touch, every mutation happens under one lock, and
    :meth:`families` returns a deep snapshot so the exposition layer
    renders a consistent view while updates keep landing.  Instances
    are parent-side service state — they never cross a process
    boundary (workers report resources via heartbeats instead).

    Kind conflicts fail loudly: touching ``name`` as a counter after
    it existed as a gauge raises :class:`ValueError` rather than
    silently corrupting the series.
    """

    def __init__(self) -> None:
        # Service-side only: the registry never crosses the process
        # boundary (resource samples ride picklable heartbeats).
        self._lock = threading.Lock()  # statan: ignore[PKL303] -- parent-side registry, never pickled
        self._families: Dict[str, _Family] = {}

    # -- mutation --------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, help: str = "",
            labels: Optional[Mapping[str, str]] = None) -> None:
        """Add ``amount`` to a counter series (created at 0)."""
        key = _label_key(labels)
        with self._lock:
            family = self._family_locked(name, KIND_COUNTER, help)
            family.series[key] = float(family.series.get(key, 0.0)) + amount

    def set_gauge(self, name: str, value: float, help: str = "",
                  labels: Optional[Mapping[str, str]] = None) -> None:
        """Set a gauge series to ``value`` (last write wins)."""
        key = _label_key(labels)
        with self._lock:
            family = self._family_locked(name, KIND_GAUGE, help)
            family.series[key] = float(value)

    def add_gauge(self, name: str, delta: float, help: str = "",
                  labels: Optional[Mapping[str, str]] = None) -> None:
        """Adjust a gauge series by ``delta`` (e.g. subscriber +1/-1)."""
        key = _label_key(labels)
        with self._lock:
            family = self._family_locked(name, KIND_GAUGE, help)
            family.series[key] = float(family.series.get(key, 0.0)) + delta

    def observe(self, name: str, value: float, help: str = "",
                labels: Optional[Mapping[str, str]] = None,
                bounds: Optional[Tuple[float, ...]] = None) -> None:
        """Record ``value`` into a histogram series.

        ``bounds`` fixes the bucket upper edges on first touch
        (default: :data:`LATENCY_BUCKETS`); later observations reuse
        the family's bounds.
        """
        key = _label_key(labels)
        with self._lock:
            family = self._family_locked(name, KIND_HISTOGRAM, help,
                                         bounds=bounds)
            histogram = family.series.get(key)
            if histogram is None:
                histogram = Histogram(name=name, bounds=family.bounds)
                family.series[key] = histogram
            histogram.observe(float(value))  # type: ignore[union-attr]

    def _family_locked(self, name: str, kind: str, help: str,
                       bounds: Optional[Tuple[float, ...]] = None
                       ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name=name, kind=kind, help=help,
                             bounds=tuple(bounds or LATENCY_BUCKETS))
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                "metric %r is a %s; cannot use it as a %s"
                % (name, family.kind, kind))
        if help and not family.help:
            family.help = help
        return family

    # -- reading ---------------------------------------------------------

    def value(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> float:
        """A counter/gauge series' current value (0.0 when absent)."""
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None or family.kind == KIND_HISTOGRAM:
                return 0.0
            return float(family.series.get(key, 0.0))  # type: ignore[arg-type]

    def families(self) -> List[Dict[str, object]]:
        """A consistent, JSON-able snapshot of every family.

        Families and series come out name-sorted so two snapshots of
        the same state render byte-identically (the golden-file
        property the exposition tests pin).
        """
        out: List[Dict[str, object]] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                series: List[Dict[str, object]] = []
                for key in sorted(family.series):
                    value = family.series[key]
                    entry: Dict[str, object] = {"labels": dict(key)}
                    if isinstance(value, Histogram):
                        entry["histogram"] = value.as_dict()
                    else:
                        entry["value"] = float(value)  # type: ignore[arg-type]
                    series.append(entry)
                out.append({"name": family.name, "kind": family.kind,
                            "help": family.help,
                            "bounds": list(family.bounds),
                            "series": series})
        return out


# ---------------------------------------------------------------------------
# Per-shard resource accounting (getrusage + GC).
# ---------------------------------------------------------------------------

def sample_resources() -> Dict[str, float]:
    """One raw process-resource sample: CPU, peak RSS, GC tallies.

    ``cpu_user_seconds``/``cpu_system_seconds`` are the executing
    process's *cumulative* rusage counters; ``max_rss_kb`` its peak
    resident set (KiB on Linux); ``gc_collections``/``gc_collected``
    sum the interpreter's per-generation GC stats.  On platforms
    without the ``resource`` module only the GC keys appear.
    """
    sample: Dict[str, float] = {}
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        sample["cpu_user_seconds"] = round(usage.ru_utime, 6)
        sample["cpu_system_seconds"] = round(usage.ru_stime, 6)
        sample["max_rss_kb"] = float(usage.ru_maxrss)
    collections = 0
    collected = 0
    for stats in gc.get_stats():
        collections += int(stats.get("collections", 0))
        collected += int(stats.get("collected", 0))
    sample["gc_collections"] = float(collections)
    sample["gc_collected"] = float(collected)
    return sample


class ResourceSampler:
    """Delta-based resource samples, scoped to one shard attempt.

    Cumulative rusage counters cannot be summed across shards that
    share a process (the serial path runs every shard in one), so the
    sampler takes a baseline at construction and reports *deltas since
    shard start* for CPU and GC — which sum correctly across shards no
    matter how they were scheduled.  Peak keys (``max_*``) stay
    absolute: a high-water mark has no meaningful delta.

    Plain picklable-free worker-side state: built inside
    :func:`~repro.crawler.parallel.run_shard_job`, never crosses a
    process boundary itself — only its dict samples do, riding
    :class:`~repro.obs.progress.HeartbeatEvent.resources`.
    """

    def __init__(self) -> None:
        self._base = sample_resources()

    def sample(self) -> Dict[str, float]:
        """The delta sample since construction (``max_*`` absolute)."""
        now = sample_resources()
        out: Dict[str, float] = {}
        for key, value in now.items():
            if key.startswith("max_"):
                out[key] = value
            else:
                out[key] = round(value - self._base.get(key, 0.0), 6)
        return out


def aggregate_resources(samples: Iterable[Mapping[str, float]]
                        ) -> Dict[str, float]:
    """Fold per-shard delta samples into study-wide totals.

    Delta keys (CPU seconds, GC counts) sum; peak keys (``max_*``)
    take the maximum.  Returns ``{}`` for an empty iterable.
    """
    totals: Dict[str, float] = {}
    for sample in samples:
        for key, value in sample.items():
            if key.startswith("max_"):
                totals[key] = max(totals.get(key, 0.0), float(value))
            else:
                totals[key] = round(totals.get(key, 0.0) + float(value), 6)
    return dict(sorted(totals.items()))


# ---------------------------------------------------------------------------
# The one-line ops ticker (repro-study metrics --live).
# ---------------------------------------------------------------------------

def render_ticker(values: Mapping[str, float]) -> str:
    """One status line from scraped series values.

    ``values`` maps flat series names — ``name{label="x"}`` exactly as
    :func:`repro.obs.exposition.parse_exposition` returns them — to
    numbers; missing series render as 0, so the ticker works against
    any subset of the service's families.
    """
    def val(name: str) -> float:
        return float(values.get(name, 0.0))

    jobs = []
    prefix = 'repro_service_jobs{state="'
    for name in sorted(values):
        if name.startswith(prefix):
            state = name[len(prefix):].rstrip('"}')
            jobs.append("%s %d" % (state, int(values[name])))
    parts = [
        "jobs " + (" ".join(jobs) if jobs else "none"),
        "queue %d/%d" % (int(val("repro_service_queue_depth")),
                         int(val("repro_service_queue_capacity"))),
        "sse %d" % int(val("repro_service_sse_subscribers")),
        "%s sent" % _human_bytes(val("repro_http_bytes_sent_total")),
        "up %ds" % int(val("repro_service_uptime_seconds")),
    ]
    return " | ".join(parts)


def _human_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if count < 1024.0 or unit == "GB":
            return ("%d %s" % (count, unit) if unit == "B"
                    else "%.1f %s" % (count, unit))
        count /= 1024.0
    return "%.1f GB" % count


__all__ = [
    "KIND_COUNTER",
    "KIND_GAUGE",
    "KIND_HISTOGRAM",
    "LATENCY_BUCKETS",
    "ResourceSampler",
    "RuntimeMetrics",
    "aggregate_resources",
    "render_ticker",
    "sample_resources",
    "wall_now",
]
