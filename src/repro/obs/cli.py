"""``repro-trace``: read and summarize JSONL traces.

Usage::

    repro-trace summarize out.jsonl            # per-stage breakdown
    repro-trace summarize out.jsonl --top 40   # longer tables

Traces are produced by ``repro-study study --trace out.jsonl`` (and by
``benchmarks/bench_parallel_crawl.py --trace``); the summary shows the
span breakdown per stage plus every counter/gauge/histogram the run
recorded.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .export import TraceError, read_trace, summarize_trace

EXIT_OK = 0
EXIT_ERROR = 2


def _cmd_summarize(args: argparse.Namespace) -> int:
    try:
        records = read_trace(args.path)
    except (OSError, TraceError) as exc:
        print("repro-trace: error: %s" % exc, file=sys.stderr)
        return EXIT_ERROR
    try:
        print(summarize_trace(records, top=args.top))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.stderr.close()
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize repro.obs JSONL traces.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    summarize = subparsers.add_parser(
        "summarize", help="per-stage breakdown of a trace file")
    summarize.add_argument("path", help="JSONL trace written by --trace")
    summarize.add_argument("--top", type=int, default=20, metavar="N",
                           help="rows per table (default: 20)")
    summarize.set_defaults(func=_cmd_summarize)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
