"""``repro-trace``: read, summarize, diff and flamegraph JSONL traces.

Usage::

    repro-trace summarize out.jsonl            # per-stage breakdown
    repro-trace summarize out.jsonl --json     # machine-readable summary
    repro-trace summarize out.jsonl --slowest 10   # top spans by self-time
    repro-trace diff a.jsonl b.jsonl           # what moved between runs
    repro-trace diff a.jsonl b.jsonl --json
    repro-trace diff a.jsonl b.jsonl \\
        --fail-on 'stage_time>20%' --fail-on 'counter:*!=0'   # CI gate
    repro-trace flame out.jsonl out.folded     # folded stacks for
                                               # flamegraph.pl/speedscope

Traces are produced by ``repro-study study --trace out.jsonl`` (and by
``benchmarks/bench_parallel_crawl.py --trace``).  ``diff`` aligns the
two span trees by path (study > stage > shard > site > request) and
reports per-stage timing deltas, counter/gauge/histogram deltas and
added/removed span subtrees; with ``--fail-on`` it exits 1 when any
threshold trips — two traces of the same seed and config diff empty,
so the command doubles as a reproducibility and perf-regression gate.

Exit codes: 0 clean (or report-only), 1 a ``--fail-on`` threshold
tripped, 2 unreadable input or bad arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .diff import FailOnError, diff_traces, parse_fail_on, render_diff
from .export import (
    TraceError,
    read_trace,
    summarize_trace,
    summary_dict,
)
from .flame import render_slowest, slowest_spans, write_folded

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_ERROR = 2


class _InputError(Exception):
    """An unreadable trace; already reported, main() exits 2."""


def _read(path: str):
    """Parse one trace or fail with a one-line error (no traceback:
    empty, truncated and non-trace files are user input, not bugs)."""
    try:
        return read_trace(path)
    except (OSError, TraceError) as exc:
        print("repro-trace: error: %s" % exc, file=sys.stderr)
        raise _InputError from exc


def _print(text: str) -> None:
    try:
        print(text)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.stderr.close()


def _cmd_summarize(args: argparse.Namespace) -> int:
    records = _read(args.path)
    if args.json:
        document = summary_dict(records, top=args.top)
        if args.slowest:
            document["slowest_spans"] = slowest_spans(records,
                                                      top=args.slowest)
        _print(json.dumps(document, indent=2, sort_keys=True))
    else:
        _print(summarize_trace(records, top=args.top))
        if args.slowest:
            _print("")
            _print(render_slowest(
                slowest_spans(records, top=args.slowest),
                title="slowest %d span paths by self-time:"
                      % args.slowest))
    return EXIT_OK


def _cmd_flame(args: argparse.Namespace) -> int:
    records = _read(args.path)
    lines = write_folded(records, args.out, scale=args.scale)
    if lines == 0:
        print("repro-trace: error: %s has no completed spans to fold"
              % args.path, file=sys.stderr)
        return EXIT_FAILED
    _print("wrote %s (%d stacks)" % (args.out, lines))
    return EXIT_OK


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        conditions = [parse_fail_on(spec)
                      for spec in (args.fail_on or ())]
    except FailOnError as exc:
        print("repro-trace: error: %s" % exc, file=sys.stderr)
        return EXIT_ERROR
    diff = diff_traces(_read(args.path_a), _read(args.path_b))
    violations: List[str] = diff.violations(conditions)
    if args.json:
        document = diff.as_dict()
        document["fail_on"] = [condition.spec for condition in conditions]
        document["violations"] = violations
        _print(json.dumps(document, indent=2, sort_keys=True))
    else:
        _print(render_diff(diff, label_a=args.path_a,
                           label_b=args.path_b, top=args.top))
        for violation in violations:
            print("repro-trace: FAIL %s" % violation, file=sys.stderr)
    if violations:
        return EXIT_FAILED
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize and diff repro.obs JSONL traces.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    summarize = subparsers.add_parser(
        "summarize", help="per-stage breakdown of a trace file")
    summarize.add_argument("path", help="JSONL trace written by --trace")
    summarize.add_argument("--top", type=int, default=20, metavar="N",
                           help="rows per table (default: 20)")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON")
    summarize.add_argument("--slowest", type=int, default=0, metavar="N",
                           help="also list the top-N span paths by "
                                "self-time (name[discriminator] chains)")
    summarize.set_defaults(func=_cmd_summarize)

    flame = subparsers.add_parser(
        "flame", help="export folded stacks for flamegraph.pl/speedscope")
    flame.add_argument("path", help="JSONL trace written by --trace")
    flame.add_argument("out", help="folded-stack output file (.folded)")
    flame.add_argument("--scale", type=float, default=1.0, metavar="X",
                       help="multiply span self-times by X (tick clocks "
                            "are integral; default: 1.0)")
    flame.set_defaults(func=_cmd_flame)

    diff = subparsers.add_parser(
        "diff", help="align two traces and report what moved")
    diff.add_argument("path_a", help="baseline trace (A)")
    diff.add_argument("path_b", help="candidate trace (B)")
    diff.add_argument("--top", type=int, default=20, metavar="N",
                      help="rows per table (default: 20)")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff as JSON")
    diff.add_argument("--fail-on", action="append", metavar="SPEC",
                      dest="fail_on",
                      help="exit 1 when SPEC trips; e.g. "
                           "'stage_time>20%%', 'stage_time:detect>50%%', "
                           "'counter:leaks_detected!=0', 'counter:*!=0', "
                           "'spans!=0' (repeatable)")
    diff.set_defaults(func=_cmd_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except _InputError:
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
