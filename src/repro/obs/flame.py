"""Folded-stack export: span trees → flamegraph input.

Converts a parsed JSONL trace (see :mod:`repro.obs.export`) into the
folded-stack format consumed by ``flamegraph.pl`` and speedscope: one
line per unique span path, ``root;child;leaf <self-time>``.  Self-time
is a span's duration minus its children's durations (clamped at zero),
so within one clock domain the sum over a subtree telescopes back to
the subtree root's own duration; across domains (stage spans run on
logical ticks, site spans on simulated seconds) :func:`stage_totals`
provides the per-span-name totals that reconcile exactly with
``repro-trace summarize --json`` — the property the tests pin.

Frames are labeled with the same ``name[discriminator]`` segments the
semantic trace differ uses (:mod:`repro.obs.diff`), so a flamegraph and
a ``repro-trace diff`` report speak the same vocabulary.  Identical
sibling paths merge — that aggregation is the point of a flamegraph —
and span clocks pass through untouched; ``--scale`` exists because
stage clocks are logical ticks and site clocks simulated seconds, and a
renderer may want them blown up to integers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .diff import _segment

PathKey = Tuple[int, ...]


def _completed_spans(records: Dict[str, List[Dict[str, object]]]
                     ) -> List[Dict[str, object]]:
    return [span for span in records["span"] if span.get("end") is not None]


def _duration(span: Dict[str, object]) -> float:
    return float(span["end"]) - float(span["start"])  # type: ignore[arg-type]


def self_times(records: Dict[str, List[Dict[str, object]]]
               ) -> List[Tuple[str, float, float]]:
    """``(stack, self_time, total_time)`` per completed span.

    ``stack`` is the ``;``-joined chain of discriminator segments from
    the root; open spans are excluded (they have no duration yet) but
    still contribute as *frames* for their completed children.
    """
    spans = records["span"]
    by_path: Dict[PathKey, Dict[str, object]] = {}
    child_time: Dict[PathKey, float] = {}
    for span in spans:
        path = tuple(int(step) for step in span["path"])  # type: ignore[union-attr]
        by_path[path] = span
        if span.get("end") is not None and len(path) > 1:
            parent = path[:-1]
            child_time[parent] = child_time.get(parent, 0.0) + _duration(span)

    out: List[Tuple[str, float, float]] = []
    for path in sorted(by_path):
        span = by_path[path]
        if span.get("end") is None:
            continue
        total = _duration(span)
        self_time = max(0.0, total - child_time.get(path, 0.0))
        segments = []
        for depth in range(1, len(path) + 1):
            ancestor = by_path.get(path[:depth])
            segments.append(_segment(ancestor) if ancestor is not None
                            else "?")
        out.append((";".join(segments), self_time, total))
    return out


def folded_stacks(records: Dict[str, List[Dict[str, object]]],
                  scale: float = 1.0) -> Dict[str, float]:
    """Aggregate self-times by stack: ``{stack: scaled self-time}``.

    Zero-self-time stacks are kept only if nothing beneath them has
    weight — dropping a parent frame that still anchors children would
    change nothing (folded children carry the full path), but dropping
    a *leaf* would lose a real (if free) span.
    """
    totals: Dict[str, float] = {}
    for stack, self_time, _total in self_times(records):
        totals[stack] = totals.get(stack, 0.0) + self_time * scale
    prefixes = set()
    for stack in totals:
        parts = stack.split(";")
        for depth in range(1, len(parts)):
            prefixes.add(";".join(parts[:depth]))
    return {stack: round(value, 9) for stack, value in totals.items()
            if value > 0.0 or stack not in prefixes}


def _format_weight(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return ("%.6f" % value).rstrip("0").rstrip(".")


def folded_lines(records: Dict[str, List[Dict[str, object]]],
                 scale: float = 1.0) -> List[str]:
    """The folded file's lines, stack-sorted for byte-stable output."""
    stacks = folded_stacks(records, scale=scale)
    return ["%s %s" % (stack, _format_weight(stacks[stack]))
            for stack in sorted(stacks)]


def write_folded(records: Dict[str, List[Dict[str, object]]],
                 path: str, scale: float = 1.0) -> int:
    """Write the folded-stack file; returns the number of lines."""
    lines = folded_lines(records, scale=scale)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def stage_totals(records: Dict[str, List[Dict[str, object]]],
                 scale: float = 1.0) -> Dict[str, float]:
    """Per-span-name totals from the folded view: ``{name: Σ duration}``.

    Groups every completed span's *total* duration by its leaf frame's
    span name — the same clock-domain-local aggregation ``summarize
    --json`` reports in ``span_breakdown`` — so a ``.folded`` file and
    a summary of the same trace reconcile exactly, stage by stage.
    (Self-times telescope to the parent's duration only within one
    clock domain; stage spans run on ticks while site spans run on
    simulated seconds, so cross-name roll-ups are not meaningful.)
    """
    totals: Dict[str, float] = {}
    for stack, _self_time, total in self_times(records):
        leaf = stack.rsplit(";", 1)[-1]
        name = leaf.split("[", 1)[0]
        totals[name] = round(totals.get(name, 0.0) + total * scale, 9)
    return totals


def slowest_spans(records: Dict[str, List[Dict[str, object]]],
                  top: int = 10) -> List[Dict[str, object]]:
    """Top-``top`` stacks by aggregated self-time (descending).

    Each entry: ``path`` (the ``;``-joined discriminator stack),
    ``count`` of merged spans, ``self`` (Σ self-time) and ``total``
    (Σ span durations).  Ties break on path for determinism.
    """
    merged: Dict[str, List[float]] = {}
    for stack, self_time, total in self_times(records):
        entry = merged.setdefault(stack, [0.0, 0.0, 0.0])
        entry[0] += self_time
        entry[1] += total
        entry[2] += 1
    ranked = sorted(merged.items(), key=lambda item: (-item[1][0], item[0]))
    return [{"path": stack, "self": round(values[0], 9),
             "total": round(values[1], 9), "count": int(values[2])}
            for stack, values in ranked[:top]]


def render_slowest(rows: Sequence[Dict[str, object]],
                   title: Optional[str] = None) -> str:
    """Human-readable table for ``summarize --slowest``."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  %-56s %6s %12s %12s" % ("path", "count", "self",
                                            "total"))
    for row in rows:
        lines.append("  %-56s %6d %12.3f %12.3f"
                     % (row["path"], row["count"], row["self"],
                        row["total"]))
    return "\n".join(lines)


__all__ = [
    "folded_lines",
    "folded_stacks",
    "render_slowest",
    "self_times",
    "slowest_spans",
    "stage_totals",
    "write_folded",
]
