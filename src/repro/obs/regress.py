"""Noise-aware perf-regression detection against a committed baseline.

The bench harness (``benchmarks/harness.py``) records wall-clock
trajectories; this module turns them into a *gate*.  A **baseline** is
a committed JSON document holding, per bench case, the last N
wall-clock samples (and per-stage breakdowns); a **check** compares a
fresh :class:`~harness.BenchReport` JSON against the baseline's
medians and fails only on changes that clear a relative threshold —
median-of-N on the baseline side plus a per-metric relative threshold
plus an absolute floor keeps one noisy CI run from crying wolf.

The registry layout (committed under ``benchmarks/baselines/``)::

    benchmarks/baselines/BENCH_parallel_crawl.json   # the gate input
    benchmarks/baselines/BENCH_history.jsonl         # append-only log

Nothing here reads the host clock (this module is inside the statan
determinism scope); callers that want run timestamps in the history
pass them in explicitly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Schema version of the baseline JSON; bump on incompatible changes.
BASELINE_SCHEMA_VERSION = 1

#: Samples kept per case: enough for a stable median, small enough to
#: keep the committed file readable.
MAX_SAMPLES = 10

#: Relative increase (current vs. baseline median) that counts as a
#: regression, per metric family.  Deliberately generous: the baseline
#: may have been recorded on different hardware than the run under
#: test, and wall-clock on shared CI runners is noisy — the gate is
#: for *real* slowdowns (the acceptance case is a 2x stage slowdown,
#: i.e. +100%), not 10% jitter.
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "wall_seconds": 0.75,
    "stage": 0.75,
}

#: Metrics whose baseline median is below this many seconds are not
#: gated: a 0.02s stage doubling to 0.04s is scheduler noise, not a
#: regression.
MIN_GATED_SECONDS = 0.05


class BaselineError(ValueError):
    """A baseline document is missing or malformed."""


def median(values: Sequence[float]) -> float:
    """The median of ``values``; raises :class:`ValueError` when empty."""
    if not values:
        raise ValueError("median of an empty sample set")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (float(ordered[mid - 1]) + float(ordered[mid])) / 2.0


# ---------------------------------------------------------------------------
# Findings and reports.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RegressionFinding:
    """One metric that regressed past its threshold."""

    case: str           # bench case label
    metric: str         # "wall_seconds" or "stage:<name>"
    baseline: float     # baseline median (seconds)
    current: float      # the run under test (seconds)
    threshold: float    # the relative threshold that was cleared

    @property
    def relative(self) -> float:
        if self.baseline == 0:
            return float("inf")
        return self.current / self.baseline - 1.0

    def format(self) -> str:
        return ("%s %s: %.4fs -> %.4fs (%+.0f%%, threshold +%.0f%%)"
                % (self.case, self.metric, self.baseline, self.current,
                   100.0 * self.relative, 100.0 * self.threshold))

    def as_dict(self) -> Dict[str, object]:
        return {"case": self.case, "metric": self.metric,
                "baseline": self.baseline, "current": self.current,
                "relative": self.relative, "threshold": self.threshold}


@dataclass
class RegressionReport:
    """The outcome of one baseline check."""

    findings: List[RegressionFinding] = field(default_factory=list)
    compared: int = 0                   # metrics actually gated
    skipped: List[str] = field(default_factory=list)   # human notes

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines: List[str] = []
        if self.ok:
            lines.append("perf gate: OK (%d metric(s) within threshold)"
                         % self.compared)
        else:
            lines.append("perf gate: %d regression(s) over %d metric(s)"
                         % (len(self.findings), self.compared))
            for finding in self.findings:
                lines.append("  REGRESSION %s" % finding.format())
        for note in self.skipped:
            lines.append("  note: %s" % note)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {"ok": self.ok, "compared": self.compared,
                "findings": [f.as_dict() for f in self.findings],
                "skipped": list(self.skipped)}


# ---------------------------------------------------------------------------
# Baseline documents.
# ---------------------------------------------------------------------------

def _case_table(report: Mapping[str, object]) -> Dict[str, Dict[str, object]]:
    """{label: case dict} from a BenchReport JSON document."""
    cases = report.get("cases")
    if not isinstance(cases, list):
        raise BaselineError("bench report has no 'cases' list")
    table: Dict[str, Dict[str, object]] = {}
    for case in cases:
        if isinstance(case, dict) and "label" in case:
            table[str(case["label"])] = case
    return table


def new_baseline(bench: str) -> Dict[str, object]:
    """An empty baseline document for ``bench``."""
    return {"schema_version": BASELINE_SCHEMA_VERSION, "bench": bench,
            "cases": {}, "environment": None}


def fold_report(baseline: Dict[str, object],
                report: Mapping[str, object],
                max_samples: int = MAX_SAMPLES) -> Dict[str, object]:
    """Fold one bench-report JSON into ``baseline`` (in place).

    Appends each case's ``wall_seconds`` (and per-stage seconds) to the
    kept sample lists, dropping the oldest past ``max_samples``, and
    records the report's environment as the baseline's most recent one.
    Returns the baseline for chaining.
    """
    cases = baseline.setdefault("cases", {})
    assert isinstance(cases, dict)
    for label, case in _case_table(report).items():
        slot = cases.setdefault(label, {"wall_seconds": [], "stages": {},
                                        "items": case.get("items", 0)})
        samples = slot.setdefault("wall_seconds", [])
        samples.append(float(case.get("wall_seconds", 0.0)))
        del samples[:-max_samples]
        stages = slot.setdefault("stages", {})
        for stage, seconds in (case.get("stages") or {}).items():
            stage_samples = stages.setdefault(stage, [])
            stage_samples.append(float(seconds))
            del stage_samples[:-max_samples]
    baseline["environment"] = report.get("environment")
    return baseline


def check_report(baseline: Mapping[str, object],
                 report: Mapping[str, object],
                 thresholds: Optional[Mapping[str, float]] = None,
                 min_seconds: float = MIN_GATED_SECONDS,
                 require_all: bool = False) -> RegressionReport:
    """Gate a fresh bench report against a committed baseline.

    For every case label present in both documents, compares the run's
    ``wall_seconds`` (and each per-stage time) against the baseline's
    *median* sample; a relative increase beyond the per-metric
    threshold is a :class:`RegressionFinding`.  Metrics whose baseline
    median is under ``min_seconds`` are skipped as noise-dominated.

    Baseline cases missing from the report are coverage loss: noted in
    ``skipped`` by default, findings when ``require_all`` is set.
    Report cases missing from the baseline are always just noted — new
    coverage must not fail the gate before the baseline is updated.
    """
    limits = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        limits.update(thresholds)
    out = RegressionReport()
    baseline_cases = baseline.get("cases")
    if not isinstance(baseline_cases, dict) or not baseline_cases:
        raise BaselineError("baseline has no cases; record one with "
                            "harness.py --update-baseline")
    current = _case_table(report)

    for label in sorted(baseline_cases):
        if label in current:
            continue
        if require_all:
            out.findings.append(RegressionFinding(
                case=label, metric="coverage", baseline=1.0, current=0.0,
                threshold=0.0))
        else:
            out.skipped.append("baseline case %r not in this run" % label)
    for label in sorted(current):
        if label not in baseline_cases:
            out.skipped.append("case %r has no baseline yet" % label)

    for label, case in sorted(current.items()):
        slot = baseline_cases.get(label)
        if not isinstance(slot, dict):
            continue
        metrics = [("wall_seconds", limits["wall_seconds"],
                    slot.get("wall_seconds") or [],
                    float(case.get("wall_seconds", 0.0)))]
        stages = slot.get("stages") or {}
        for stage, stage_samples in sorted(stages.items()):
            current_stages = case.get("stages") or {}
            if stage not in current_stages:
                out.skipped.append("%s stage %r missing from this run"
                                   % (label, stage))
                continue
            metrics.append(("stage:%s" % stage, limits["stage"],
                            stage_samples,
                            float(current_stages[stage])))
        for metric, threshold, samples, value in metrics:
            if not samples:
                out.skipped.append("%s %s has no baseline samples"
                                   % (label, metric))
                continue
            base = median([float(sample) for sample in samples])
            if base < min_seconds:
                out.skipped.append(
                    "%s %s baseline median %.4fs under the %.2fs noise "
                    "floor; not gated" % (label, metric, base,
                                          min_seconds))
                continue
            out.compared += 1
            if value > base * (1.0 + threshold):
                out.findings.append(RegressionFinding(
                    case=label, metric=metric, baseline=base,
                    current=value, threshold=threshold))
    return out


def check_ordering(report: Mapping[str, object],
                   orderings: Sequence[Tuple[str, str]],
                   out: Optional[RegressionReport] = None
                   ) -> RegressionReport:
    """Gate strict faster-than orderings within one bench report.

    Each ``(faster, slower)`` pair asserts that case ``faster`` has a
    strictly smaller ``wall_seconds`` than case ``slower`` in the same
    run — the parallel-payoff gate (``workers-2`` must beat
    ``workers-1`` on a multi-core runner) rather than a
    baseline-relative one.  A pair whose cases are missing from the
    report is a finding, not a skip: an ordering gate that silently
    stops covering its cases is worse than one that fails loudly.

    Pass ``out`` to accumulate findings into an existing report (the
    harness merges this with :func:`check_report`'s result).
    """
    report_cases = _case_table(report)
    result = out if out is not None else RegressionReport()
    for faster, slower in orderings:
        missing = [label for label in (faster, slower)
                   if label not in report_cases]
        if missing:
            for label in missing:
                result.findings.append(RegressionFinding(
                    case=label, metric="ordering:missing-case",
                    baseline=1.0, current=0.0, threshold=0.0))
            continue
        result.compared += 1
        fast_wall = float(report_cases[faster].get("wall_seconds", 0.0))
        slow_wall = float(report_cases[slower].get("wall_seconds", 0.0))
        if fast_wall >= slow_wall:
            result.findings.append(RegressionFinding(
                case=faster, metric="ordering:not-faster-than:%s" % slower,
                baseline=slow_wall, current=fast_wall, threshold=0.0))
    return result


# ---------------------------------------------------------------------------
# The on-disk registry.
# ---------------------------------------------------------------------------

class BaselineRegistry:
    """Reads and writes the committed baseline files.

    ``root`` is the registry directory (``benchmarks/baselines/`` in
    this repo); baselines are named ``BENCH_<bench>.json`` and the
    shared append-only history is ``BENCH_history.jsonl``.
    """

    HISTORY_NAME = "BENCH_history.jsonl"

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, bench: str) -> str:
        return os.path.join(self.root, "BENCH_%s.json" % bench)

    @property
    def history_path(self) -> str:
        return os.path.join(self.root, self.HISTORY_NAME)

    def load(self, bench: str) -> Dict[str, object]:
        """The committed baseline for ``bench``.

        Raises :class:`BaselineError` when missing or malformed.
        """
        path = self.path(bench)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            raise BaselineError(
                "no committed baseline at %s; record one with "
                "harness.py --update-baseline" % path) from None
        except json.JSONDecodeError as exc:
            raise BaselineError("%s: not JSON: %s" % (path, exc)) from exc
        if not isinstance(document, dict) or "cases" not in document:
            raise BaselineError("%s: not a baseline document" % path)
        return document

    def save(self, bench: str, baseline: Mapping[str, object]) -> str:
        """Write ``baseline`` (pretty, sorted keys); returns the path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path(bench)
        with open(path, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def update(self, bench: str, report: Mapping[str, object],
               max_samples: int = MAX_SAMPLES) -> str:
        """Fold a fresh report into the (possibly new) baseline on disk."""
        try:
            baseline = self.load(bench)
        except BaselineError:
            baseline = new_baseline(bench)
        fold_report(baseline, report, max_samples=max_samples)
        return self.save(bench, baseline)

    def append_history(self, report: Mapping[str, object],
                       extra: Optional[Mapping[str, object]] = None,
                       path: Optional[str] = None) -> str:
        """Append one run to the history JSONL; returns the path.

        The entry carries the per-case wall-clock (and stage) numbers
        plus the report environment; ``extra`` (e.g. a caller-supplied
        timestamp or commit id — this module never reads the clock
        itself) is merged in.
        """
        entry: Dict[str, object] = {
            "bench": report.get("name"),
            "environment": report.get("environment"),
            "cases": {label: {"wall_seconds": case.get("wall_seconds"),
                              "items_per_second":
                                  case.get("items_per_second"),
                              "stages": case.get("stages") or {}}
                      for label, case in _case_table(report).items()},
        }
        if extra:
            entry.update(extra)
        target = path or self.history_path
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        with open(target, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        return target


def read_history(path: str) -> List[Dict[str, object]]:
    """Parse a history JSONL file (skipping blank lines)."""
    entries: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries
