"""Injectable clocks for the observability layer.

Everything in :mod:`repro.obs` records times through a :class:`Clock`
so the determinism gate (DET101-104) stays green: the default
:class:`TickClock` is a pure counter — two identical runs produce
bit-identical traces — and the crawl path stamps spans with the
browser's :class:`~repro.browser.SimClock` (simulated seconds), which
is already deterministic.  :class:`WallClock` is the explicit opt-out
for interactive profiling; it must never feed anything that is compared
across runs or worker counts.
"""

from __future__ import annotations

import time


class Clock:
    """Minimal clock interface: a monotonic :meth:`now`.

    :class:`~repro.browser.SimClock` satisfies it structurally; so does
    any object with a ``now() -> float`` method.
    """

    def now(self) -> float:
        raise NotImplementedError


class TickClock(Clock):
    """Deterministic logical clock: each read advances one tick.

    Durations measured against it count *events between start and end*,
    not seconds — meaningless as wall time, but identical across runs,
    processes and worker counts, which is what the trace-equality
    contract needs.  Picklable (plain state), so it travels inside
    checkpointed sessions and shard results.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        self._now = start
        self._step = step

    def now(self) -> float:
        value = self._now
        self._now += self._step
        return value


class WallClock(Clock):
    """Real wall-clock time (``time.perf_counter``).

    Opt-in only: traces recorded against it are *not* reproducible and
    must never be merged, fingerprinted or compared across worker
    counts.  The inline suppression below is the sanctioned escape
    hatch — :mod:`repro.obs` is inside the statan determinism scope on
    purpose, and this is the one place reading the host clock is
    acceptable because nothing downstream of a wall-clock trace feeds a
    dataset fingerprint.
    """

    def now(self) -> float:
        return time.perf_counter()  # statan: ignore[DET101] -- wall-clock tracer by contract; never feeds a fingerprint
