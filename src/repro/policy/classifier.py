"""Disclosure classification of privacy policies (§6, Table 3).

A lightweight rule-based classifier in the style policy-audit studies use:
it detects whether a document (1) acknowledges PII collection, (2) mentions
sharing with third parties at all, (3) names the recipients concretely, or
(4) explicitly denies sharing.  The four outcomes are exactly Table 3's
rows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..websim.shopping import (
    POLICY_CLASSES,
    POLICY_NO_DESCRIPTION,
    POLICY_NOT_SHARED,
    POLICY_NOT_SPECIFIC,
    POLICY_SPECIFIC,
)

# Phrases that assert sharing with third parties.
_SHARING_PATTERNS = (
    r"share[ds]?\b[^.]*\b(third part|partner|affiliate|advertis|provider)",
    r"disclos\w*\b[^.]*\b(third part|partner|provider|advertis)",
    r"(transfer\w*|provide[d]?|make[s]? .{0,30}available)\b[^.]*\b"
    r"(third part|partner|processor)",
)

# Phrases that deny sharing.
_DENIAL_PATTERNS = (
    r"(do|does|will) not (share|sell|disclose)[^.]*\b"
    r"(personal (information|data))",
    r"never (sells?|shares?|discloses?)[^.]*\b(personal data|information)",
)

# Named recipients that make a disclosure "specific".
_NAMED_RECIPIENTS = (
    "facebook", "meta platforms", "criteo", "pinterest", "google",
    "snap inc", "salesforce", "adobe", "amazon",
)

_LIST_MARKERS = (
    "following partners", "named processors", "partner list",
    "full partner list", "these named",
)

# Evidence that PII collection is acknowledged at all.
_COLLECTION_PATTERNS = (
    r"collect[^.]*\b(personal information|personal data|email address)",
    r"(ask|retain|store)[^.]*\b(email address|name|information)",
)


@dataclass(frozen=True)
class PolicyVerdict:
    """Classification of one policy document."""

    site: str
    disclosure_class: str
    acknowledges_collection: bool
    mentions_sharing: bool
    names_recipients: bool
    denies_sharing: bool


def _matches_any(text: str, patterns: Iterable[str]) -> bool:
    return any(re.search(pattern, text, re.IGNORECASE)
               for pattern in patterns)


def classify_policy(site: str, document: str) -> PolicyVerdict:
    """Classify one policy into a Table 3 disclosure class."""
    text = document.lower()
    collection = _matches_any(text, _COLLECTION_PATTERNS)
    denies = _matches_any(text, _DENIAL_PATTERNS)
    shares = _matches_any(text, _SHARING_PATTERNS)
    names = (any(marker in text for marker in _LIST_MARKERS)
             and sum(1 for name in _NAMED_RECIPIENTS if name in text) >= 2)

    # A denial wins even though the denying sentence itself mentions
    # sharing vocabulary ("we do not share ... with third parties").
    if denies:
        disclosure = POLICY_NOT_SHARED
    elif names:
        disclosure = POLICY_SPECIFIC
    elif shares:
        disclosure = POLICY_NOT_SPECIFIC
    else:
        disclosure = POLICY_NO_DESCRIPTION
    return PolicyVerdict(site=site, disclosure_class=disclosure,
                         acknowledges_collection=collection,
                         mentions_sharing=shares,
                         names_recipients=names,
                         denies_sharing=denies)


def classify_policies(documents: Dict[str, str]) -> List[PolicyVerdict]:
    """Classify a corpus of policies."""
    return [classify_policy(site, document)
            for site, document in sorted(documents.items())]


def table3(verdicts: Iterable[PolicyVerdict]) -> Dict[str, int]:
    """Aggregate verdicts into Table 3 counts."""
    counts = {policy_class: 0 for policy_class in POLICY_CLASSES}
    for verdict in verdicts:
        counts[verdict.disclosure_class] += 1
    return counts
