"""Privacy-policy transparency audit (§6, Table 3)."""

from .classifier import (
    PolicyVerdict,
    classify_policies,
    classify_policy,
    table3,
)
from .generator import generate_policy, policies_for_sites

__all__ = [
    "PolicyVerdict",
    "classify_policies",
    "classify_policy",
    "generate_policy",
    "policies_for_sites",
    "table3",
]
