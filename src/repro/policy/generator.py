"""Privacy-policy document generation (§6).

The paper reads the privacy policies of the 130 leaking first parties and
sorts their PII-sharing disclosures into four classes (Table 3).  Offline,
the policies themselves must be synthesized: this generator emits policy
documents in the four disclosure classes, with several phrasing variants
per class (real policies do not share a template), so the classifier in
:mod:`repro.policy.classifier` has realistic work to do.
"""

from __future__ import annotations

from typing import Dict, List

from ..websim.shopping import (
    POLICY_NO_DESCRIPTION,
    POLICY_NOT_SHARED,
    POLICY_NOT_SPECIFIC,
    POLICY_SPECIFIC,
)

_COLLECTION_CLAUSES = (
    "We collect personal information that you provide when you create an "
    "account, including your name, email address, telephone number and "
    "postal address.",
    "When you register with {site}, we ask for details such as your email "
    "address, your name and your date of birth, and we store this "
    "information to operate your account.",
    "Information you give us directly — for example your email address, "
    "username and delivery address — is retained for as long as your "
    "account remains active.",
)

_NOT_SPECIFIC_CLAUSES = (
    "We may share your personal information with our partners, affiliates "
    "and selected third parties for marketing and analytics purposes.",
    "Your data may be disclosed to service providers and advertising "
    "partners who assist us in operating our business.",
    "We sometimes make personal information available to trusted third "
    "parties that support our marketing activities.",
    "Personal data can be transferred to our commercial partners where we "
    "believe it improves the services offered to you.",
)

_SPECIFIC_CLAUSES = (
    "We share hashed identifiers with the following partners: Facebook "
    "(Meta Platforms), Criteo SA, Pinterest Inc. and Google LLC. A full "
    "partner list is available on this page.",
    "Your email address, in hashed form, is provided to these named "
    "processors: Facebook, Criteo, Snap Inc. and Salesforce. No other "
    "third parties receive it.",
)

_NOT_SHARED_CLAUSES = (
    "We do not share your personal information with third parties for "
    "their marketing purposes.",
    "{site} never sells or discloses your personal data to any third "
    "party. Your information stays with us.",
)

_FILLER_CLAUSES = (
    "We use cookies to remember your preferences and improve our website.",
    "You can contact our support team at any time to ask questions about "
    "your order.",
    "This policy may be updated from time to time; material changes will "
    "be announced on this page.",
    "We apply appropriate technical and organisational measures to protect "
    "the data we hold.",
)


def generate_policy(site_domain: str, policy_class: str,
                    variant: int = 0) -> str:
    """Render a policy document of the given Table 3 disclosure class."""
    paragraphs: List[str] = []
    paragraphs.append("Privacy Policy — %s" % site_domain)
    paragraphs.append(_FILLER_CLAUSES[variant % len(_FILLER_CLAUSES)])
    collection = _COLLECTION_CLAUSES[variant % len(_COLLECTION_CLAUSES)]
    paragraphs.append(collection.format(site=site_domain))

    if policy_class == POLICY_NOT_SPECIFIC:
        clause = _NOT_SPECIFIC_CLAUSES[variant % len(_NOT_SPECIFIC_CLAUSES)]
        paragraphs.append(clause)
    elif policy_class == POLICY_SPECIFIC:
        clause = _SPECIFIC_CLAUSES[variant % len(_SPECIFIC_CLAUSES)]
        paragraphs.append(clause)
    elif policy_class == POLICY_NOT_SHARED:
        clause = _NOT_SHARED_CLAUSES[variant % len(_NOT_SHARED_CLAUSES)]
        paragraphs.append(clause.format(site=site_domain))
    elif policy_class == POLICY_NO_DESCRIPTION:
        # Collects data but says nothing at all about sharing.
        pass
    else:
        raise ValueError("unknown policy class: %r" % policy_class)

    paragraphs.append(_FILLER_CLAUSES[(variant + 1) % len(_FILLER_CLAUSES)])
    return "\n\n".join(paragraphs)


def policies_for_sites(site_classes: Dict[str, str]) -> Dict[str, str]:
    """Generate one policy per site, varying phrasing deterministically."""
    documents: Dict[str, str] = {}
    for index, (domain, policy_class) in enumerate(
            sorted(site_classes.items())):
        documents[domain] = generate_policy(domain, policy_class,
                                            variant=index)
    return documents
