"""Browser countermeasure evaluation (§7.1).

Re-runs the authentication flows of the 130 leaking first parties under
each evaluated browser profile (Chrome, Opera, Safari/ITP, Firefox/ETP,
Brave/Shields) with a fresh browser state, detects the PII leakage that
still escapes, and reports the per-browser reduction against the baseline
Firefox measurement — reproducing the paper's finding that only Brave
materially reduces leakage (93.1% fewer senders, 92% fewer receivers,
eight missed receivers, and one CAPTCHA-broken sign-up flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..browser import BrowserProfile, evaluation_profiles, vanilla_firefox
from ..core.analysis import LeakAnalysis
from ..core.detector import LeakDetector
from ..core.tokens import CandidateTokenSet
from ..crawler import STATUS_CAPTCHA_FAILED, StudyCrawler
from ..websim.population import Population


@dataclass(frozen=True)
class BrowserResult:
    """Leakage measured under one browser profile."""

    profile_name: str
    senders: int
    receivers: int
    failed_signups: Tuple[str, ...]   # sites whose flow broke (CAPTCHA)

    def sender_reduction_pct(self, baseline_senders: int) -> float:
        if not baseline_senders:
            return 0.0
        return 100.0 * (baseline_senders - self.senders) / baseline_senders

    def receiver_reduction_pct(self, baseline_receivers: int) -> float:
        if not baseline_receivers:
            return 0.0
        return (100.0 * (baseline_receivers - self.receivers)
                / baseline_receivers)


@dataclass
class BrowserStudy:
    """Results across all profiles, relative to the Firefox baseline."""

    baseline: BrowserResult
    results: Dict[str, BrowserResult]
    remaining_receivers: Dict[str, Tuple[str, ...]]

    def reductions(self) -> Dict[str, Tuple[float, float]]:
        """{profile: (sender reduction %, receiver reduction %)}."""
        return {
            name: (result.sender_reduction_pct(self.baseline.senders),
                   result.receiver_reduction_pct(self.baseline.receivers))
            for name, result in self.results.items()}


class BrowserCountermeasureEvaluator:
    """Runs the §7.1 experiment over a population."""

    def __init__(self, population: Population,
                 leaking_sites: Sequence[str],
                 tokens: Optional[CandidateTokenSet] = None) -> None:
        self.population = population
        self.leaking_sites = list(leaking_sites)
        self.tokens = tokens or CandidateTokenSet(population.persona)

    def _measure(self, profile: BrowserProfile) -> Tuple[BrowserResult,
                                                         Tuple[str, ...]]:
        sites = [self.population.sites[domain]
                 for domain in self.leaking_sites]
        crawler = StudyCrawler(self.population, profile=profile)
        dataset = crawler.crawl(sites=sites)
        detector = LeakDetector(self.tokens,
                                catalog=self.population.catalog,
                                resolver=self.population.resolver())
        analysis = LeakAnalysis(detector.detect(dataset.log))
        failed = tuple(domain for domain, flow in dataset.flows.items()
                       if flow.status == STATUS_CAPTCHA_FAILED)
        result = BrowserResult(
            profile_name=profile.name,
            senders=len(analysis.senders()),
            receivers=len(analysis.receivers()),
            failed_signups=failed)
        return result, tuple(analysis.receivers())

    def run(self, profiles: Optional[Sequence[BrowserProfile]] = None) \
            -> BrowserStudy:
        """Measure the baseline and every evaluation profile."""
        baseline, _ = self._measure(vanilla_firefox())
        if profiles is None:
            profiles = evaluation_profiles(self.population.catalog)
        results: Dict[str, BrowserResult] = {}
        remaining: Dict[str, Tuple[str, ...]] = {}
        for profile in profiles:
            result, receivers = self._measure(profile)
            results[profile.name] = result
            remaining[profile.name] = receivers
        return BrowserStudy(baseline=baseline, results=results,
                            remaining_receivers=remaining)
