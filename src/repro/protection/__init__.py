"""In-browser protection evaluation (§7.1)."""

from .browsers import (
    BrowserCountermeasureEvaluator,
    BrowserResult,
    BrowserStudy,
)

__all__ = [
    "BrowserCountermeasureEvaluator",
    "BrowserResult",
    "BrowserStudy",
]
