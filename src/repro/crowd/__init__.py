"""Crowdsourced data collection (§5.2's proposed future work)."""

from .study import (
    Contributor,
    ContributorReport,
    CrowdStudy,
    CrowdStudyResult,
    make_panel,
)

__all__ = [
    "Contributor",
    "ContributorReport",
    "CrowdStudy",
    "CrowdStudyResult",
    "make_panel",
]
