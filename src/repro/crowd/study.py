"""Crowdsourced data collection (the paper's stated future work).

§5.2 ends: "our experimental evaluation could have missed some tracking
providers that appear only one time in the dataset (58 third-party
receivers). We intend to expand our dataset in future work by using
crowdsourced data collection to overcome this drawback."

This module implements that expansion.  A *panel* of contributors — each
with their own persona, browser and site sample — runs the authentication
flows independently; the coordinator merges the per-contributor leak
datasets and re-runs the §5.2 funnel on the union.  A receiver that looked
like a one-off in a single-vantage crawl becomes classifiable once two
contributors observe it with their (different) identifiers in the same
parameter.

Identifier matching across contributors is per-contributor: each
contributor's candidate token set is derived from their own persona, so no
contributor's PII needs to be shared with the coordinator — only the
derived leak events, mirroring how a privacy-preserving deployment would
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..browser import BrowserProfile, vanilla_firefox
from ..core.analysis import LeakAnalysis
from ..core.assets import CompiledStudyAssets
from ..core.leakmodel import LeakEvent
from ..core.persona import Persona
from ..crawler import StudyCrawler
from ..tracking import PersistenceAnalyzer
from ..websim.population import Population
from ..websim.site import Website


@dataclass(frozen=True)
class Contributor:
    """One crowd participant: persona + browser + assigned site sample."""

    name: str
    persona: Persona
    site_domains: Tuple[str, ...]
    profile: Optional[BrowserProfile] = None


def make_panel(site_domains: Sequence[str], n_contributors: int,
               overlap: float = 0.5) -> List[Contributor]:
    """Split sites over contributors with controlled overlap.

    Every contributor gets a private slice plus a shared slice covering
    ``overlap`` of the universe — the shared part is what turns single
    observations into cross-vantage confirmations.
    """
    if n_contributors < 1:
        raise ValueError("need at least one contributor")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be within [0, 1]")
    domains = list(site_domains)
    shared_count = int(len(domains) * overlap)
    shared, private = domains[:shared_count], domains[shared_count:]
    slices: List[List[str]] = [list(shared) for _ in range(n_contributors)]
    for index, domain in enumerate(private):
        slices[index % n_contributors].append(domain)

    contributors = []
    for index, assigned in enumerate(slices):
        # Like the default persona, the mailbox-local part avoids the
        # name/username surface forms so token categories stay disjoint.
        persona = Persona(
            email="px%02d.shopper@pmail.example" % index,
            username="crowduser%02d" % index,
            first_name="Crowd",
            last_name="User%02d" % index,
        )
        contributors.append(Contributor(
            name="contributor-%02d" % index, persona=persona,
            site_domains=tuple(assigned)))
    return contributors


@dataclass
class ContributorReport:
    """What one contributor submits to the coordinator."""

    name: str
    events: List[LeakEvent]

    def receivers(self) -> Set[str]:
        return {event.receiver for event in self.events}


@dataclass
class CrowdStudyResult:
    """Merged view over all contributors."""

    reports: List[ContributorReport]
    merged_events: List[LeakEvent]
    analysis: LeakAnalysis
    persistence_report: object

    def receivers_confirmed_by(self, min_contributors: int = 2) -> List[str]:
        """Receivers observed by at least N independent contributors."""
        seen: Dict[str, Set[str]] = {}
        for report in self.reports:
            for receiver in report.receivers():
                seen.setdefault(receiver, set()).add(report.name)
        return sorted(receiver for receiver, names in seen.items()
                      if len(names) >= min_contributors)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-able summary (what the service's result endpoint ships).

        Carries only derived aggregates — receiver domains, event
        counts, confirmation sets — never contributor personas, true to
        the module's PII-stays-local reporting model.
        """
        report = self.persistence_report
        return {
            "contributors": [
                {"name": r.name, "events": len(r.events),
                 "receivers": sorted(r.receivers())}
                for r in self.reports],
            "merged_event_count": len(self.merged_events),
            "receivers": self.analysis.receivers(),
            "confirmed_receivers": self.receivers_confirmed_by(2),
            "cross_site_receivers": list(report.cross_site_receivers),
            "persistent_receivers": list(report.persistent_receivers),
        }


class CrowdStudy:
    """Coordinates a crowdsourced crawl over one population."""

    def __init__(self, population: Population,
                 contributors: Sequence[Contributor]) -> None:
        self.population = population
        self.contributors = list(contributors)

    def _run_contributor(self, contributor: Contributor) -> ContributorReport:
        # Each contributor crawls with their own persona and fresh state.
        population = Population(
            sites=self.population.sites,
            catalog=self.population.catalog,
            persona=contributor.persona,
            zone=self.population.zone)
        sites: List[Website] = [population.sites[domain]
                                for domain in contributor.site_domains]
        crawler = StudyCrawler(
            population, profile=contributor.profile or vanilla_firefox())
        dataset = crawler.crawl(sites=sites)
        # Detection runs with the contributor's own token set (compiled
        # once per contributor): PII stays local, only leak events are
        # reported upstream.
        assets = CompiledStudyAssets.for_population(population)
        return ContributorReport(name=contributor.name,
                                 events=assets.detector().detect(dataset.log))

    def run_iter(self):
        """Yield ``(contributor, report)`` as each contributor finishes.

        The incremental twin of :meth:`run`: callers that need per-
        contributor progress (the service streams one SSE event per
        finished contributor) consume this and :meth:`merge` the
        reports themselves.
        """
        for contributor in self.contributors:
            yield contributor, self._run_contributor(contributor)

    def merge(self, reports: Sequence[ContributorReport]
              ) -> CrowdStudyResult:
        """Fold finished reports into the §5.2 funnel over the union."""
        merged: List[LeakEvent] = []
        for report in reports:
            merged.extend(report.events)
        analysis = LeakAnalysis(merged)
        persistence = PersistenceAnalyzer(merged).report()
        return CrowdStudyResult(reports=list(reports),
                                merged_events=merged,
                                analysis=analysis,
                                persistence_report=persistence)

    def run(self) -> CrowdStudyResult:
        return self.merge([report for _, report in self.run_iter()])
