"""Scripted browser engine.

Drives the synthetic web the way the paper's human operator drove Firefox:
navigates to pages, parses the returned HTML, fetches every referenced
subresource, "executes" tracker snippets via the script engine, fills and
submits forms, and maintains cookies, storage and referer semantics under
the active :class:`~repro.browser.profiles.BrowserProfile`.

Every request that leaves (or is blocked inside) the browser is recorded in
a :class:`~repro.netsim.CaptureLog` — the raw dataset all analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dnssim import Resolver
from ..netsim import (
    CaptureEntry,
    CaptureLog,
    Headers,
    HttpRequest,
    HttpResponse,
    RESOURCE_DOCUMENT,
    RESOURCE_IMAGE,
    RESOURCE_SCRIPT,
    RESOURCE_STYLESHEET,
    RESOURCE_SUBDOCUMENT,
    CookieJar,
    Url,
    encode_urlencoded,
)
from ..netsim.faults import (
    FAULT_SLOW,
    RETRYABLE_STATUSES,
    ConnectionTimeout,
    NetworkError,
)
from ..psl import default_list
from ..websim.consent import (
    CONSENT_ACCEPT_ALL,
    CONSENT_COOKIE,
    CONSENT_POLICIES,
    grants_tracking,
)
from ..websim.html import ParsedForm, ParsedPage, parse_page
from ..websim.scripts import (
    EmitRequest,
    ScriptContext,
    SetFirstPartyCookie,
    StoreTrackerState,
    baseline_actions,
    exfil_actions,
    revisit_actions,
)
from ..websim.server import WebServer
from ..websim.site import TrackerEmbed, Website
from ..websim.trackers import TrackerCatalog
from .interfaces import ContentBlocker, OutboundFirewall, ensure_protocol
from .profiles import BrowserProfile, REFERER_STRICT_ORIGIN
from .resilience import CircuitBreakerRegistry, RequestFailure, RetryPolicy

_TAG_RESOURCE_TYPES = {
    "script": RESOURCE_SCRIPT,
    "image": RESOURCE_IMAGE,
    "stylesheet": RESOURCE_STYLESHEET,
    "subdocument": RESOURCE_SUBDOCUMENT,
}

_MAX_REDIRECTS = 5


class SimClock:
    """Monotonic simulated clock; each network exchange advances it."""

    def __init__(self, start: float = 1_620_000_000.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now

    def tick(self, seconds: float = 0.05) -> float:
        self._now += seconds
        return self._now


@dataclass
class PageResult:
    """Outcome of a navigation."""

    url: Url
    status: int
    page: Optional[ParsedPage]
    html: str = ""

    @property
    def ok(self) -> bool:
        return self.status == 200


class Browser:
    """One browser instance (profile + cookie jar + storage + capture log)."""

    def __init__(self, profile: BrowserProfile, server: WebServer,
                 resolver: Resolver, catalog: TrackerCatalog,
                 clock: Optional[SimClock] = None,
                 extension: Optional[ContentBlocker] = None,
                 firewall: Optional[OutboundFirewall] = None,
                 consent_policy: str = CONSENT_ACCEPT_ALL,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreakerRegistry] = None) -> None:
        """``extension`` is an optional content blocker satisfying
        :class:`~repro.browser.interfaces.ContentBlocker` (see
        :class:`repro.blocklist.AdblockExtension`).  ``firewall`` is an
        optional outbound rewriter satisfying
        :class:`~repro.browser.interfaces.OutboundFirewall` (see
        :class:`repro.mitigation.PiiFirewall`).  ``consent_policy`` is how
        the user answers cookie banners — the paper's procedure accepts
        them all (the default).  ``retry_policy`` enables the resilient
        network path (per-request timeouts, retry with backoff + jitter);
        without it every exchange is attempted exactly once, preserving
        the historical deterministic behaviour.  ``breaker`` quarantines
        origins that keep failing at the transport level; it defaults to a
        fresh registry whenever a retry policy is supplied."""
        if consent_policy not in CONSENT_POLICIES:
            raise ValueError("unknown consent policy: %r" % consent_policy)
        ensure_protocol(extension, ContentBlocker, "extension")
        ensure_protocol(firewall, OutboundFirewall, "firewall")
        self.profile = profile
        self.server = server
        self.resolver = resolver
        self.catalog = catalog
        self.clock = clock or SimClock()
        self.extension = extension
        self.firewall = firewall
        self.consent_policy = consent_policy
        self.retry_policy = retry_policy
        if breaker is None and retry_policy is not None:
            breaker = CircuitBreakerRegistry()
        self.breaker = breaker
        #: Why the most recent exchange failed (for the flow runner).
        self.last_failure: Optional[RequestFailure] = None
        self._consent_decisions: Dict[str, str] = {}
        self.jar = CookieJar()
        self.log = CaptureLog()
        #: (site domain, service domain) -> stored identifier params.
        self.tracker_storage: Dict[Tuple[str, str], Dict[str, str]] = {}
        self._captcha_ready: Dict[str, bool] = {}
        self._current_url: Optional[Url] = None
        #: PII exposed in the current page context (set by form submission).
        self._page_pii: Dict[str, str] = {}

    # -- public navigation API ------------------------------------------

    def visit(self, site: Website, url: str, stage: str,
              keep_pii: bool = False) -> PageResult:
        """Navigate to a URL as a top-level document."""
        if not keep_pii:
            self._page_pii = {}
        return self._load_document(site, "GET", Url.parse(url), b"", None,
                                   stage)

    def submit_form(self, site: Website, form: ParsedForm,
                    values: Dict[str, str], stage: str) -> PageResult:
        """Fill a parsed form with ``values`` and submit it.

        GET forms serialize the fields into the URL (the referer-leak
        precondition); POST forms send an urlencoded body.  The submitted
        values become the page-context PII visible to tracker snippets on
        the resulting document.
        """
        if self._current_url is None:
            raise RuntimeError("no current page to submit from")
        filled: List[Tuple[str, str]] = []
        for name, kind, preset in form.fields:
            if not name:
                continue
            if name in values:
                filled.append((name, values[name]))
            elif kind == "hidden":
                value = preset
                if name == "captcha_token":
                    value = ("solved" if
                             self._captcha_ready.get(site.domain) else "")
                filled.append((name, value))
        action_url = self._current_url.join(form.action)
        self._page_pii = _pii_from_fields(dict(filled))
        if form.method == "GET":
            target = action_url.adding_query(filled)
            return self._load_document(site, "GET", target, b"", None,
                                       stage)
        body = encode_urlencoded(filled)
        return self._load_document(
            site, "POST", action_url, body,
            "application/x-www-form-urlencoded", stage)

    def click_link(self, site: Website, href: str, stage: str) -> PageResult:
        """Follow a link from the current page."""
        if self._current_url is None:
            raise RuntimeError("no current page")
        return self.visit(site, str(self._current_url.join(href)), stage)

    def snapshot_cookies(self) -> None:
        """Copy the cookie store into the capture log (end of flow)."""
        self.log.snapshot_cookies(self.jar.all_cookies())

    # -- document loading --------------------------------------------------

    def _load_document(self, site: Website, method: str, url: Url,
                       body: bytes, content_type: Optional[str],
                       stage: str) -> PageResult:
        referer = str(self._current_url) if self._current_url else None
        response, final_url = self._request(
            site, method, url, body, content_type, RESOURCE_DOCUMENT,
            initiator_chain=(), stage=stage, referer=referer,
            page_url=str(url))
        if response is None or response.status != 200:
            status = response.status if response else 0
            return PageResult(url=final_url, status=status, page=None)
        html = response.body.decode("utf-8", errors="replace")
        if not response.headers.get("Content-Type", "").startswith("text/html"):
            return PageResult(url=final_url, status=200, page=None, html=html)
        self._current_url = final_url
        page = parse_page(html)
        self._process_page(site, page, final_url, stage)
        return PageResult(url=final_url, status=200, page=page, html=html)

    def _process_page(self, site: Website, page: ParsedPage, page_url: Url,
                      stage: str) -> None:
        embeds_by_domain = {e.service.domain: e for e in site.embeds}
        for kind, tag in page.resource_tags():
            src = tag.get("src") or tag.get("href")
            if not src:
                continue
            resource_url = page_url.join(src)
            response, _ = self._request(
                site, "GET", resource_url, b"", None,
                _TAG_RESOURCE_TYPES[kind],
                initiator_chain=(page_url,), stage=stage,
                referer=self._referer_value(page_url, resource_url),
                page_url=str(page_url))
            if tag.get("data-captcha") and response is not None:
                self._captcha_ready[site.domain] = True
            if tag.get("data-cmp") and response is not None:
                self._answer_consent_banner(site, page_url, stage)
            tracker_domain = tag.get("data-tracker")
            if tracker_domain and response is not None:
                embed = embeds_by_domain.get(tracker_domain)
                if embed is not None:
                    self._run_snippet(site, embed, page_url, stage)

    def _answer_consent_banner(self, site: Website, page_url: Url,
                               stage: str) -> None:
        """Answer the site's cookie banner per the configured policy.

        Mirrors the §3.2 operator behaviour (one decision per site): the
        choice is persisted in a first-party ``euconsent`` cookie and the
        receipt is posted to the CMP.
        """
        if site.consent is None or site.domain in self._consent_decisions:
            return
        self._consent_decisions[site.domain] = self.consent_policy
        from ..netsim import Cookie, encode_json
        self.jar.set_cookie(Cookie(
            name=CONSENT_COOKIE, value=self.consent_policy,
            domain=site.domain, host_only=False,
            creation_time=self.clock.now(),
            expires=self.clock.now() + 365 * 24 * 3600))
        receipt_url = Url(scheme="https", host=site.consent.receipt_host,
                          path="/v1/receipt")
        self._request(site, "POST", receipt_url,
                      encode_json({"site": site.domain,
                                   "choice": self.consent_policy}),
                      "application/json", "xmlhttprequest",
                      initiator_chain=(page_url,), stage=stage,
                      referer=self._referer_value(page_url, receipt_url),
                      page_url=str(page_url))

    def _tracking_consented(self, site: Website) -> bool:
        """Whether the site's non-essential snippets may run."""
        banner = site.consent
        if banner is None or not banner.honors_consent:
            # No banner, or a dark-pattern site that ignores refusals.
            return True
        decision = self._consent_decisions.get(site.domain,
                                               self.consent_policy)
        return grants_tracking(decision)

    def _run_snippet(self, site: Website, embed: TrackerEmbed,
                     page_url: Url, stage: str) -> None:
        if not self._tracking_consented(site):
            return
        stored = {
            service: dict(params)
            for (stored_site, service), params in self.tracker_storage.items()
            if stored_site == site.domain}
        ctx = ScriptContext(site=site, page_url=page_url, stage=stage,
                            pii=dict(self._page_pii), stored_state=stored,
                            timestamp=self.clock.now())
        actions = list(baseline_actions(embed, ctx))
        if self._page_pii and embed.leaks:
            actions.extend(exfil_actions(embed, ctx))
        else:
            actions.extend(revisit_actions(embed, ctx))
        script_url = Url(scheme="https", host=embed.service.script_host,
                         path=embed.service.script_path)
        for action in actions:
            self._execute_action(site, action, page_url, script_url, stage)

    def _execute_action(self, site: Website, action: object, page_url: Url,
                        script_url: Url, stage: str) -> None:
        if isinstance(action, EmitRequest):
            self._request(
                site, action.method, action.url, action.body,
                action.content_type, action.resource_type,
                initiator_chain=(page_url, script_url), stage=stage,
                referer=self._referer_value(page_url, action.url),
                page_url=str(page_url))
        elif isinstance(action, SetFirstPartyCookie):
            # document.cookie write: a domain cookie on the first party.
            from ..netsim import Cookie
            self.jar.set_cookie(Cookie(
                name=action.name, value=action.value, domain=action.domain,
                host_only=False, creation_time=self.clock.now(),
                expires=self.clock.now() + 365 * 24 * 3600))
        elif isinstance(action, StoreTrackerState):
            key = (site.domain, action.service_domain)
            self.tracker_storage.setdefault(key, {}).update(
                dict(action.values))

    # -- the network path --------------------------------------------------

    def _request(self, site: Website, method: str, url: Url, body: bytes,
                 content_type: Optional[str], resource_type: str,
                 initiator_chain: Tuple[Url, ...], stage: str,
                 referer: Optional[str], page_url: str,
                 redirects: int = 0):
        """Send one request (following redirects); returns (response, url)."""
        headers = Headers([("User-Agent", self._user_agent())])
        if referer:
            headers.set("Referer", referer)
        if content_type:
            headers.set("Content-Type", content_type)
        if self.profile.automation_detectable:
            headers.set("Sec-Automation", "true")

        is_third_party = default_list().is_third_party(url.host,
                                                       site.www_host)
        partition = self._cookie_partition(site, is_third_party)
        if not self._cookies_blocked(url, site, is_third_party):
            cookie_value = self.jar.cookie_header(url, self.clock.now(),
                                                  partition)
            if cookie_value:
                headers.set("Cookie", cookie_value)

        request = HttpRequest(method=method, url=url, headers=headers,
                              body=body, resource_type=resource_type,
                              initiator_chain=initiator_chain,
                              timestamp=self.clock.tick())

        if self.firewall is not None:
            request, _ = self.firewall.scrub_request(request, site.www_host)
            url = request.url

        blocker = self._protection_verdict(url, site, is_third_party)
        if blocker is None and self.extension is not None and \
                resource_type != RESOURCE_DOCUMENT:
            blocker = self.extension.filter_request(
                str(url), resource_type, site.www_host)
        if blocker is not None:
            self.log.record(CaptureEntry(request=request, response=None,
                                         site=site.domain, stage=stage,
                                         page_url=page_url,
                                         blocked_by=blocker))
            return None, url

        response = self._exchange(request, site, stage, page_url)
        if response is None:
            return None, url
        self._store_cookies(response, url, site, is_third_party, partition)

        if response.is_redirect and response.location and \
                redirects < _MAX_REDIRECTS:
            target = url.join(response.location)
            return self._request(site, "GET", target, b"", None,
                                 resource_type, initiator_chain, stage,
                                 referer=str(url), page_url=page_url,
                                 redirects=redirects + 1)
        return response, url

    def _exchange(self, request: HttpRequest, site: Website, stage: str,
                  page_url: str) -> Optional[HttpResponse]:
        """Resolve + send one request under the resilience policy.

        Without a retry policy this is the historical single-shot path.
        With one, transport faults (timeouts, resets, DNS timeouts, slow
        responses beyond ``request_timeout``) and retryable HTTP statuses
        are retried with exponential backoff and deterministic jitter, up
        to the attempt budget; transport failures feed the per-origin
        circuit breaker, and an open breaker short-circuits every further
        exchange with that origin.  Every failed attempt is recorded in
        the capture log (``blocked_by="fault:<kind>"`` / ``"circuit-open"``)
        so no exchange silently disappears.
        """
        self.last_failure = None
        url = request.url
        origin = default_list().registrable_domain(url.host) or url.host
        policy = self.retry_policy
        max_attempts = policy.max_attempts if policy is not None else 1
        attempt = 0
        while True:
            attempt += 1
            if self.breaker is not None and self.breaker.is_open(origin):
                self.log.record(CaptureEntry(
                    request=request, response=None, site=site.domain,
                    stage=stage, page_url=page_url,
                    blocked_by="circuit-open"))
                self.last_failure = RequestFailure(
                    origin=origin, kind="circuit-open", attempts=attempt,
                    circuit_open=True)
                return None
            try:
                if not self.resolver.exists(url.host):
                    # Authoritative NXDOMAIN: permanent, never retried.
                    self.log.record(CaptureEntry(
                        request=request, response=None, site=site.domain,
                        stage=stage, page_url=page_url,
                        blocked_by="nxdomain"))
                    self.last_failure = RequestFailure(
                        origin=origin, kind="nxdomain", attempts=attempt)
                    return None
                response = self.server.handle(request)
                latency = getattr(response, "latency_seconds", None)
                if policy is not None and latency is not None and \
                        latency > policy.request_timeout:
                    raise ConnectionTimeout(origin, kind=FAULT_SLOW,
                                            latency=latency)
                if latency is not None:
                    # A tolerated slow response still costs wall-clock.
                    self.clock.tick(latency)
            except NetworkError as exc:
                if self.breaker is not None:
                    self.breaker.record_failure(origin)
                self.log.record(CaptureEntry(
                    request=request, response=None, site=site.domain,
                    stage=stage, page_url=page_url,
                    blocked_by="fault:%s" % exc.kind))
                tripped = (self.breaker is not None
                           and self.breaker.is_open(origin))
                if policy is not None and attempt < max_attempts \
                        and not tripped:
                    request = self._retry_request(request, policy, attempt,
                                                  url.host)
                    continue
                self.last_failure = RequestFailure(
                    origin=origin, kind=exc.kind, attempts=attempt,
                    circuit_open=tripped)
                return None
            self.log.record(CaptureEntry(request=request, response=response,
                                         site=site.domain, stage=stage,
                                         page_url=page_url))
            if policy is not None and attempt < max_attempts and \
                    response.status in RETRYABLE_STATUSES:
                request = self._retry_request(request, policy, attempt,
                                              url.host)
                continue
            if self.breaker is not None:
                self.breaker.record_success(origin)
            if response.status in RETRYABLE_STATUSES:
                self.last_failure = RequestFailure(
                    origin=origin, kind="http_%d" % response.status,
                    attempts=attempt)
            return response

    def _retry_request(self, request: HttpRequest, policy: RetryPolicy,
                       attempt: int, host: str) -> HttpRequest:
        """Back off, then rebuild the request with a fresh timestamp."""
        self.clock.tick(policy.backoff_delay(attempt, host))
        return HttpRequest(method=request.method, url=request.url,
                           headers=request.headers.copy(),
                           body=request.body,
                           resource_type=request.resource_type,
                           initiator_chain=request.initiator_chain,
                           timestamp=self.clock.tick())

    def _store_cookies(self, response: HttpResponse, url: Url,
                       site: Website, is_third_party: bool,
                       partition: str) -> None:
        if self._cookies_blocked(url, site, is_third_party):
            return
        for header_value in response.set_cookie_headers:
            self.jar.set_from_header(header_value, url, self.clock.now(),
                                     partition)

    def _cookies_blocked(self, url: Url, site: Website,
                         is_third_party: bool) -> bool:
        if not is_third_party:
            return False
        tracker_domain = self._effective_domain(url.host)
        return self.profile.blocks_third_party_cookie(tracker_domain)

    def _cookie_partition(self, site: Website, is_third_party: bool) -> str:
        if is_third_party and self.profile.partitions_third_party_storage:
            return site.domain
        return ""

    def _protection_verdict(self, url: Url, site: Website,
                            is_third_party: bool) -> Optional[str]:
        """Shields-style request blocking (returns blocker name or None)."""
        if not self.profile.request_blocklist:
            return None
        domain = self._effective_domain(url.host)
        if not is_third_party and self.profile.uncloaks_cname:
            # Recursively uncloak: a first-party host whose CNAME chain
            # lands in a blocked tracker zone is blocked too.
            for target in self.resolver.cname_chain(url.host):
                target_domain = self._effective_domain(target)
                if self.profile.blocks_request_to(target_domain):
                    return "shields-cname"
            return None
        if is_third_party and self.profile.blocks_request_to(domain):
            return "shields"
        return None

    def _effective_domain(self, host: str) -> str:
        service = self.catalog.attribute_host(host)
        if service is not None:
            return service.domain
        return default_list().registrable_domain(host) or host

    def _referer_value(self, page_url: Url, target: Url) -> str:
        """Referer for a subresource request under the profile's policy."""
        if self.profile.referer_policy == REFERER_STRICT_ORIGIN and \
                default_list().is_third_party(target.host, page_url.host):
            return page_url.origin + "/"
        return str(page_url)

    def _user_agent(self) -> str:
        return "Mozilla/5.0 (compatible; %s/%s; repro-study)" % (
            self.profile.name, self.profile.version)


def _pii_from_fields(fields: Dict[str, str]) -> Dict[str, str]:
    """Map submitted form fields to the PII view snippets read."""
    pii: Dict[str, str] = {}
    if fields.get("email"):
        pii["email"] = fields["email"]
    if fields.get("username"):
        pii["username"] = fields["username"]
    first = fields.get("first_name", "")
    last = fields.get("last_name", "")
    if first or last:
        pii["name"] = (" ".join(part for part in (first, last) if part))
    elif fields.get("name"):
        pii["name"] = fields["name"]
    return pii
