"""Browser engine and protection profiles."""

from .engine import Browser, PageResult, SimClock
from .interfaces import ContentBlocker, OutboundFirewall, ensure_protocol
from .resilience import CircuitBreakerRegistry, RequestFailure, RetryPolicy
from .profiles import (
    BrowserProfile,
    COOKIES_ALLOW_ALL,
    COOKIES_BLOCK_KNOWN_TRACKERS,
    COOKIES_BLOCK_THIRD_PARTY,
    COOKIES_PARTITION_THIRD_PARTY,
    REFERER_FULL_URL,
    REFERER_STRICT_ORIGIN,
    brave,
    chrome,
    evaluation_profiles,
    firefox_etp,
    opera,
    safari,
    vanilla_firefox,
)

__all__ = [
    "Browser",
    "BrowserProfile",
    "CircuitBreakerRegistry",
    "ContentBlocker",
    "OutboundFirewall",
    "RequestFailure",
    "RetryPolicy",
    "ensure_protocol",
    "COOKIES_ALLOW_ALL",
    "COOKIES_BLOCK_KNOWN_TRACKERS",
    "COOKIES_BLOCK_THIRD_PARTY",
    "COOKIES_PARTITION_THIRD_PARTY",
    "PageResult",
    "REFERER_FULL_URL",
    "REFERER_STRICT_ORIGIN",
    "SimClock",
    "brave",
    "chrome",
    "evaluation_profiles",
    "firefox_etp",
    "opera",
    "safari",
    "vanilla_firefox",
]
