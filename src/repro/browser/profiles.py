"""Browser protection profiles (§7.1).

Models the privacy posture of the five browsers the paper evaluates, as
shipped in their vanilla configurations circa 2021:

* **Chrome 93 / Opera 79** — no tracking protection by default.
* **Safari 14 (ITP)** — blocks third-party cookies and partitions
  third-party storage; does *not* block tracker requests.
* **Firefox 88 (ETP off — the measurement profile) / Firefox 73 (ETP)** —
  ETP blocks cookies for known trackers; requests still leave the browser.
* **Brave 1.29 (Shields)** — blocks requests to known tracking domains
  outright (including CNAME-uncloaked ones), with the eight published
  misses from the paper's footnote 4.

Only Brave's request blocking can stop PII exfiltration; the cookie-level
defences of the others leave the leak channels untouched — exactly the
paper's finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..websim.trackers import BRAVE_MISSED_DOMAINS, TrackerCatalog

# Cookie policies.
COOKIES_ALLOW_ALL = "allow-all"
COOKIES_BLOCK_THIRD_PARTY = "block-third-party"
COOKIES_BLOCK_KNOWN_TRACKERS = "block-known-trackers"
COOKIES_PARTITION_THIRD_PARTY = "partition-third-party"

# Referer policies (2021-era defaults).
REFERER_FULL_URL = "no-referrer-when-downgrade"
REFERER_STRICT_ORIGIN = "strict-origin-when-cross-origin"


@dataclass(frozen=True)
class BrowserProfile:
    """Privacy-relevant configuration of one browser."""

    name: str
    version: str
    cookie_policy: str = COOKIES_ALLOW_ALL
    referer_policy: str = REFERER_FULL_URL
    #: Tracker domains whose *requests* are blocked (Brave Shields).
    request_blocklist: FrozenSet[str] = frozenset()
    #: Whether CNAME chains are uncloaked before blocklist matching.
    uncloaks_cname: bool = False
    #: Known-tracker domains whose cookies are stripped (Firefox ETP).
    tracker_cookie_blocklist: FrozenSet[str] = frozenset()
    #: Whether the crawl through this browser is automation-detectable.
    automation_detectable: bool = False

    def blocks_request_to(self, domain: str) -> bool:
        """Whether Shields-style blocking suppresses requests to ``domain``."""
        return domain in self.request_blocklist

    def blocks_third_party_cookie(self, tracker_domain: str) -> bool:
        if self.cookie_policy == COOKIES_BLOCK_THIRD_PARTY:
            return True
        if self.cookie_policy == COOKIES_BLOCK_KNOWN_TRACKERS:
            return tracker_domain in self.tracker_cookie_blocklist
        return False

    @property
    def partitions_third_party_storage(self) -> bool:
        return self.cookie_policy == COOKIES_PARTITION_THIRD_PARTY


def vanilla_firefox() -> BrowserProfile:
    """Firefox 88, ETP turned off — the paper's measurement profile (§3.2)."""
    return BrowserProfile(name="firefox", version="88",
                          cookie_policy=COOKIES_ALLOW_ALL,
                          referer_policy=REFERER_FULL_URL)


def chrome() -> BrowserProfile:
    """Chrome 93 vanilla."""
    return BrowserProfile(name="chrome", version="93",
                          cookie_policy=COOKIES_ALLOW_ALL)


def opera() -> BrowserProfile:
    """Opera 79 vanilla."""
    return BrowserProfile(name="opera", version="79",
                          cookie_policy=COOKIES_ALLOW_ALL)


def safari(catalog: Optional[TrackerCatalog] = None) -> BrowserProfile:
    """Safari 14 with Intelligent Tracking Prevention defaults.

    Since ITP's "full third-party cookie blocking" (Safari 13.1) the
    third-party *cookie* jar is simply off; the partitioning applies to
    other storage, which this simulator already keys per top-level site.
    """
    return BrowserProfile(name="safari", version="14.0.3",
                          cookie_policy=COOKIES_BLOCK_THIRD_PARTY)


def firefox_etp(catalog: TrackerCatalog) -> BrowserProfile:
    """Firefox 73 with Enhanced Tracking Protection (standard)."""
    known_trackers = frozenset(
        s.domain for s in catalog.services() if s.sets_cookie)
    return BrowserProfile(name="firefox-etp", version="73",
                          cookie_policy=COOKIES_BLOCK_KNOWN_TRACKERS,
                          tracker_cookie_blocklist=known_trackers)


def brave(catalog: TrackerCatalog) -> BrowserProfile:
    """Brave 1.29.81 with Shields up.

    Blocks requests to every known tracking domain in the catalog except
    the eight services its lists missed at that version (footnote 4), and
    uncloaks CNAMEs before matching.
    """
    missed = set(BRAVE_MISSED_DOMAINS)
    blocklist = frozenset(
        s.domain for s in catalog.services()
        if s.sets_cookie and s.domain not in missed)
    # Shields also blocks the DataDome-style CAPTCHA widget, which is what
    # breaks the nykaa.com sign-up flow in the paper.
    from ..websim.server import CAPTCHA_PROVIDER
    blocklist = blocklist.union({CAPTCHA_PROVIDER})
    return BrowserProfile(name="brave", version="1.29.81",
                          cookie_policy=COOKIES_BLOCK_THIRD_PARTY,
                          request_blocklist=blocklist,
                          uncloaks_cname=True)


def evaluation_profiles(catalog: TrackerCatalog) -> Tuple[BrowserProfile, ...]:
    """The §7.1 line-up: Chrome, Opera, Safari, Firefox (ETP), Brave."""
    return (chrome(), opera(), safari(), firefox_etp(catalog),
            brave(catalog))
