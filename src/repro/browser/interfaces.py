"""Structural types for the browser's pluggable countermeasures.

The browser (and :class:`~repro.crawler.StudyCrawler`) accept two optional
collaborators: a content blocker and an outbound PII firewall.  These
Protocols pin down the exact duck type each hook must satisfy so that a
wrong object fails with a clear ``TypeError`` at the constructor call site
instead of an ``AttributeError`` deep inside a page load.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

from ..netsim import HttpRequest


@runtime_checkable
class ContentBlocker(Protocol):
    """Request-blocking extension (e.g. :class:`repro.blocklist.AdblockExtension`)."""

    def filter_request(self, url: str, resource_type: str,
                       page_host: str) -> Optional[str]:
        """Blocker name when the request must be cancelled, else None."""
        ...


@runtime_checkable
class OutboundFirewall(Protocol):
    """Outbound request scrubber (e.g. :class:`repro.mitigation.PiiFirewall`)."""

    def scrub_request(self, request: HttpRequest,
                      site_host: str) -> Tuple[HttpRequest, object]:
        """Return (possibly rewritten request, report)."""
        ...


def ensure_protocol(obj: object, protocol: type, role: str) -> None:
    """Raise TypeError unless ``obj`` is None or satisfies ``protocol``.

    ``runtime_checkable`` verifies method presence only — exactly the
    misuse we want to catch early (passing a profile as an extension,
    a blocklist as a firewall, ...).
    """
    if obj is not None and not isinstance(obj, protocol):
        raise TypeError(
            "%s must implement %s (got %s, which lacks the required "
            "methods)" % (role, protocol.__name__, type(obj).__name__))
