"""Client-side resilience: retry policy, backoff, circuit breakers.

The crawl engine's answer to :mod:`repro.netsim.faults`: every network
exchange gets an attempt budget with exponential backoff and deterministic
jitter, a per-request timeout that slow responses must beat, and a
per-origin circuit breaker that stops hammering origins that keep failing
— the repeatedly-failing site is *quarantined* and reported under the
§3.2 failure taxonomy instead of being retried forever or silently lost.

Everything is deterministic: jitter is a hash of (origin, attempt), so a
crawl replays identically and a checkpointed crawl resumes bit-identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Set


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + backoff schedule for one network exchange.

    ``max_attempts`` must exceed the fault plan's ``max_consecutive`` for
    the convergence guarantee (the defaults do: 4 > 2).
    """

    max_attempts: int = 4
    base_delay: float = 0.25        # seconds before the first retry
    backoff_factor: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.1             # +/- fraction applied to each delay
    request_timeout: float = 30.0   # responses slower than this time out

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Delay before retry number ``attempt`` (1-based), jittered.

        The jitter is a deterministic hash of ``(key, attempt)`` so a
        replayed or resumed crawl waits the exact same simulated time.
        """
        raw = min(self.base_delay * self.backoff_factor ** (attempt - 1),
                  self.max_delay)
        material = "backoff:%s:%d" % (key, attempt)
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:7], "big") / float(1 << 56)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))


@dataclass
class RequestFailure:
    """Why the last document load failed (read by the flow runner)."""

    origin: str
    kind: str                 # FAULT_* kind, "nxdomain", or "http_<status>"
    attempts: int
    circuit_open: bool = False


class CircuitBreakerRegistry:
    """Per-origin consecutive-failure counter with a trip threshold.

    Only transport-level failures count (timeouts, resets, DNS timeouts):
    an origin that keeps *answering* — even with 5xx — is degraded, not
    dead.  Once open, a breaker stays open for the rest of the crawl; the
    origin is quarantined and every further exchange is skipped.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._consecutive: Dict[str, int] = {}
        self._open: Set[str] = set()

    def record_failure(self, origin: str) -> None:
        count = self._consecutive.get(origin, 0) + 1
        self._consecutive[origin] = count
        if count >= self.threshold:
            self._open.add(origin)

    def record_success(self, origin: str) -> None:
        self._consecutive[origin] = 0

    def is_open(self, origin: str) -> bool:
        return origin in self._open

    def open_origins(self) -> List[str]:
        """Quarantined origins, sorted for stable reporting."""
        return sorted(self._open)
