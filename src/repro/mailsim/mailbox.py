"""Simulated e-mail infrastructure (§3.2 and §4.2.3).

The paper's persona inbox plays two roles: it receives account-confirmation
links needed to finish sign-up on 68 sites, and it accumulates first-party
marketing mail (2,172 inbox messages, 141 spam) whose sender domains the
paper audits — finding *no* mail from the PII-receiving third parties,
which supports the tracking (rather than e-mail marketing) interpretation
of the leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

FOLDER_INBOX = "inbox"
FOLDER_SPAM = "spam"

KIND_CONFIRMATION = "confirmation"
KIND_MARKETING = "marketing"


@dataclass(frozen=True)
class EmailMessage:
    """One received message."""

    sender_domain: str
    recipient: str
    subject: str
    kind: str
    folder: str = FOLDER_INBOX
    confirm_url: Optional[str] = None


class Mailbox:
    """The persona's mail account."""

    def __init__(self, address: str) -> None:
        self.address = address
        self._messages: List[EmailMessage] = []

    def deliver(self, message: EmailMessage) -> None:
        if message.recipient != self.address:
            raise ValueError("message for %r delivered to %r"
                             % (message.recipient, self.address))
        self._messages.append(message)

    def deliver_confirmation(self, site_domain: str, confirm_url: str) -> None:
        self.deliver(EmailMessage(
            sender_domain=site_domain, recipient=self.address,
            subject="Confirm your account at %s" % site_domain,
            kind=KIND_CONFIRMATION, confirm_url=confirm_url))

    def deliver_marketing(self, site_domain: str, count: int = 1,
                          spam: bool = False) -> None:
        folder = FOLDER_SPAM if spam else FOLDER_INBOX
        for index in range(count):
            self.deliver(EmailMessage(
                sender_domain=site_domain, recipient=self.address,
                subject="Offers from %s (#%d)" % (site_domain, index + 1),
                kind=KIND_MARKETING, folder=folder))

    def absorb(self, other: "Mailbox") -> None:
        """Append every message of ``other`` (same address) to this box.

        Used when merging per-shard crawl results back into one mailbox;
        messages keep their relative order.  Raises :class:`ValueError`
        if the two mailboxes belong to different addresses.
        """
        if other.address != self.address:
            raise ValueError("cannot merge mailbox for %r into %r"
                             % (other.address, self.address))
        self._messages.extend(other._messages)

    # -- queries ---------------------------------------------------------

    def messages(self, folder: Optional[str] = None,
                 kind: Optional[str] = None) -> List[EmailMessage]:
        return [m for m in self._messages
                if (folder is None or m.folder == folder)
                and (kind is None or m.kind == kind)]

    def latest_confirmation(self, site_domain: str) -> Optional[EmailMessage]:
        """Most recent confirmation mail from a site, if any."""
        for message in reversed(self._messages):
            if message.kind == KIND_CONFIRMATION and \
                    message.sender_domain == site_domain:
                return message
        return None

    def sender_domains(self, folder: Optional[str] = None) -> List[str]:
        """Distinct sender domains (insertion order)."""
        seen: List[str] = []
        for message in self.messages(folder):
            if message.sender_domain not in seen:
                seen.append(message.sender_domain)
        return seen

    def counts(self) -> Dict[str, int]:
        """{'inbox': n, 'spam': m} message counts."""
        return {
            FOLDER_INBOX: len(self.messages(FOLDER_INBOX)),
            FOLDER_SPAM: len(self.messages(FOLDER_SPAM)),
        }

    def __len__(self) -> int:
        return len(self._messages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mailbox):
            return NotImplemented
        return (self.address == other.address
                and self._messages == other._messages)


class ConfirmationMailHook:
    """Pickleable ``MailHook`` delivering confirmation links to a mailbox.

    The crawl engine needs its mail hook to survive checkpoint
    serialization, which a closure over the mailbox cannot; this small
    callable object can.
    """

    def __init__(self, mailbox: Mailbox) -> None:
        self.mailbox = mailbox

    def __call__(self, site_domain: str, email: str, url: str) -> None:
        self.mailbox.deliver_confirmation(site_domain, url)
