"""Simulated mailbox: confirmation links and marketing mail."""

from .mailbox import (
    FOLDER_INBOX,
    FOLDER_SPAM,
    KIND_CONFIRMATION,
    KIND_MARKETING,
    EmailMessage,
    Mailbox,
)

__all__ = [
    "EmailMessage",
    "FOLDER_INBOX",
    "FOLDER_SPAM",
    "KIND_CONFIRMATION",
    "KIND_MARKETING",
    "Mailbox",
]
