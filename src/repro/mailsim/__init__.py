"""Simulated mailbox: confirmation links and marketing mail."""

from .mailbox import (
    FOLDER_INBOX,
    FOLDER_SPAM,
    KIND_CONFIRMATION,
    KIND_MARKETING,
    ConfirmationMailHook,
    EmailMessage,
    Mailbox,
)

__all__ = [
    "ConfirmationMailHook",
    "EmailMessage",
    "FOLDER_INBOX",
    "FOLDER_SPAM",
    "KIND_CONFIRMATION",
    "KIND_MARKETING",
    "Mailbox",
]
