"""repro — reproduction of "Alternative to third-party cookies:
Investigating persistent PII leakage-based web tracking" (CoNEXT 2021).

Public API tour
===============

End-to-end (the paper's whole methodology in three lines)::

    from repro import Study
    result = Study.calibrated().run()
    print(result.analysis.headline(total_sites=307))

The pieces, individually:

* :mod:`repro.core` — persona (§3.1), candidate-token precomputation,
  four-channel leak detection (§4.1), aggregation (§4.2), pipeline.
* :mod:`repro.websim` / :mod:`repro.dnssim` / :mod:`repro.netsim` — the
  synthetic web, DNS (CNAME cloaking) and HTTP substrates.
* :mod:`repro.browser` / :mod:`repro.crawler` — the measurement browser,
  protection profiles and the §3.2 authentication-flow runner.
* :mod:`repro.tracking` — §5 persistent-tracking analysis.
* :mod:`repro.policy` — §6 privacy-policy audit.
* :mod:`repro.protection` / :mod:`repro.blocklist` — §7 browser and
  filter-list countermeasure studies.
* :mod:`repro.reporting` — paper-layout table/figure renderers.
* :mod:`repro.datasets` — the paper's published numbers for comparison.
"""

from .core import (
    CandidateTokenSet,
    DEFAULT_PERSONA,
    LeakAnalysis,
    LeakDetector,
    LeakEvent,
    Persona,
    CrawlOutcome,
    Study,
    StudyConfig,
    StudyResult,
    TokenSetConfig,
)

__version__ = "1.0.0"

__all__ = [
    "CandidateTokenSet",
    "DEFAULT_PERSONA",
    "LeakAnalysis",
    "LeakDetector",
    "LeakEvent",
    "Persona",
    "CrawlOutcome",
    "Study",
    "StudyConfig",
    "StudyResult",
    "TokenSetConfig",
    "__version__",
]
