"""Study job specs and their execution.

A *job* is one study run submitted over HTTP: a :class:`JobSpec`
(parsed and validated from the ``POST /studies`` JSON body) plus the
lifecycle state the service tracks for it.  The spec is deliberately
plain, immutable data — it is written to disk, travels through the
runner queue, and may cross a process boundary, so the PKL301–303
pickle-safety rules apply to this module (it is inside the statan
pickle scope).

Execution goes through :class:`JobRun`, which drives the same engines
the CLI does — :class:`~repro.crawler.ParallelCrawler` for the crawl
(so per-shard checkpoints, supervision, and the resumable
``study-manifest.json`` all work unchanged) and
:meth:`~repro.core.pipeline.Study.analyze` for the downstream funnel.
Because the crawl is wrapped in the identical ``crawl`` stage span and
the dataset fingerprint is engine-invariant, a job's served result is
bit-identical to the same spec run via ``Study.crawl()`` on the CLI
(asserted in ``tests/test_service_http.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..obs import Recorder
from ..obs.progress import HeartbeatEvent

#: Schema version of submitted job specs; bump on incompatible changes.
SPEC_SCHEMA_VERSION = 1

#: Schema version of result.json documents.
RESULT_SCHEMA_VERSION = 1

#: Job lifecycle states (queued -> running -> complete|partial|failed).
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_COMPLETE = "complete"
STATE_PARTIAL = "partial"
STATE_FAILED = "failed"

JOB_STATES = (STATE_QUEUED, STATE_RUNNING, STATE_COMPLETE, STATE_PARTIAL,
              STATE_FAILED)

#: States a job can never leave.
TERMINAL_STATES = (STATE_COMPLETE, STATE_PARTIAL, STATE_FAILED)

_KINDS = ("study", "crowd")
_POPULATIONS = ("generated", "calibrated")


class SpecError(ValueError):
    """A submitted job spec is invalid (HTTP 400, never enqueued)."""


@dataclass(frozen=True)
class JobSpec:
    """One validated study submission (plain picklable data).

    ``population`` selects the synthetic web: ``"generated"`` builds a
    seeded random population from the ``seed``/``sites``/``trackers``/
    probability knobs (:mod:`repro.websim.generator`); ``"calibrated"``
    is the paper-calibrated 404-site shopping web (the generator knobs
    are rejected).  ``kind`` selects the pipeline: ``"study"`` is the
    full §3–§6 funnel; ``"crowd"`` the crowdsourced panel expansion
    (``contributors``/``overlap``).  ``workers``/``shards`` mirror
    :class:`~repro.core.pipeline.StudyConfig`; ``fault_rate``/
    ``fault_seed`` inject the seeded network-fault plan.
    """

    kind: str = "study"
    population: str = "generated"
    seed: int = 0
    sites: int = 12
    trackers: int = 4
    leak_probability: float = 0.5
    confirmation_probability: float = 0.2
    workers: int = 1
    shards: Optional[int] = None
    fault_rate: Optional[float] = None
    fault_seed: int = 0
    contributors: int = 3
    overlap: float = 0.5
    label: str = ""

    # -- parsing ---------------------------------------------------------

    @classmethod
    def from_dict(cls, document: object) -> "JobSpec":
        """Parse and validate a ``POST /studies`` body.

        Raises :class:`SpecError` — with a message that names the bad
        field — for anything that is not a valid spec.  Unknown keys
        are rejected rather than ignored so a typo (``worker`` for
        ``workers``) fails loudly instead of silently running the
        default.
        """
        if not isinstance(document, dict):
            raise SpecError("spec must be a JSON object, not %s"
                            % type(document).__name__)
        known = {
            "kind": str, "population": str, "seed": int, "sites": int,
            "trackers": int, "leak_probability": float,
            "confirmation_probability": float, "workers": int,
            "shards": int, "fault_rate": float, "fault_seed": int,
            "contributors": int, "overlap": float, "label": str,
        }
        unknown = sorted(set(document) - set(known) - {"schema"})
        if unknown:
            raise SpecError("unknown spec field(s): %s (known: %s)"
                            % (", ".join(unknown),
                               ", ".join(sorted(known))))
        schema = document.get("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise SpecError("spec schema %r is not supported (this "
                            "service reads %d)"
                            % (schema, SPEC_SCHEMA_VERSION))
        values: Dict[str, object] = {}
        for name, value in document.items():
            if name == "schema":
                continue
            expected = known[name]
            if value is None and name in ("shards", "fault_rate"):
                values[name] = None
                continue
            if expected is float and isinstance(value, int) and \
                    not isinstance(value, bool):
                value = float(value)
            if not isinstance(value, expected) or isinstance(value, bool):
                raise SpecError("field %r must be %s, got %r"
                                % (name, expected.__name__, value))
            values[name] = value
        spec = cls(**values)  # type: ignore[arg-type]
        spec.validate()
        return spec

    def validate(self) -> None:
        """Range-check every field; raises :class:`SpecError`."""
        if self.kind not in _KINDS:
            raise SpecError("kind must be one of %s, got %r"
                            % ("/".join(_KINDS), self.kind))
        if self.population not in _POPULATIONS:
            raise SpecError("population must be one of %s, got %r"
                            % ("/".join(_POPULATIONS), self.population))
        if self.workers < 1:
            raise SpecError("workers must be >= 1, got %d" % self.workers)
        if self.shards is not None and self.shards < 1:
            raise SpecError("shards must be >= 1, got %d" % self.shards)
        if self.sites < 1:
            raise SpecError("sites must be >= 1, got %d" % self.sites)
        if self.trackers < 1:
            raise SpecError("trackers must be >= 1, got %d" % self.trackers)
        for name in ("leak_probability", "confirmation_probability",
                     "overlap"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SpecError("%s must be within [0, 1], got %r"
                                % (name, value))
        if self.fault_rate is not None and \
                not 0.0 <= self.fault_rate <= 1.0:
            raise SpecError("fault_rate must be within [0, 1], got %r"
                            % self.fault_rate)
        if self.contributors < 1:
            raise SpecError("contributors must be >= 1, got %d"
                            % self.contributors)
        if len(self.label) > 200:
            raise SpecError("label must be at most 200 characters")

    def as_dict(self) -> Dict[str, object]:
        """The canonical JSON form (round-trips through from_dict)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "population": self.population,
            "seed": self.seed,
            "sites": self.sites,
            "trackers": self.trackers,
            "leak_probability": self.leak_probability,
            "confirmation_probability": self.confirmation_probability,
            "workers": self.workers,
            "shards": self.shards,
            "fault_rate": self.fault_rate,
            "fault_seed": self.fault_seed,
            "contributors": self.contributors,
            "overlap": self.overlap,
            "label": self.label,
        }

    def describe(self) -> str:
        """One-line human-readable identity (logs, status documents)."""
        if self.population == "calibrated":
            base = "calibrated population"
        else:
            base = ("generated population (seed=%d, sites=%d)"
                    % (self.seed, self.sites))
        return "%s %s, workers=%d" % (self.kind, base, self.workers)

    # -- engine recipes --------------------------------------------------

    def population_spec(self):
        """The picklable population recipe this spec describes."""
        from ..crawler.parallel import (CalibratedPopulationSpec,
                                        GeneratedPopulationSpec)
        if self.population == "calibrated":
            return CalibratedPopulationSpec()
        from ..websim.generator import GeneratorConfig
        config = GeneratorConfig(
            n_sites=self.sites, n_trackers=self.trackers,
            leak_probability=self.leak_probability,
            confirmation_probability=self.confirmation_probability)
        return GeneratedPopulationSpec(seed=self.seed, config=config)

    def fault_plan(self):
        """The seeded network FaultPlan, or ``None`` for a clean crawl."""
        if self.fault_rate is None:
            return None
        from ..netsim.faults import FaultPlan
        return FaultPlan(seed=self.fault_seed,
                         transient_rate=self.fault_rate)

    def study_config(self, recorder: Optional[Recorder] = None,
                     progress: Optional[object] = None):
        """The equivalent :class:`~repro.core.pipeline.StudyConfig`.

        This is the exact config under which ``Study.crawl()`` on the
        CLI reproduces a served job's fingerprint bit for bit.
        """
        from ..core.pipeline import StudyConfig
        return StudyConfig(workers=self.workers, num_shards=self.shards,
                           fault_plan=self.fault_plan(),
                           recorder=recorder, progress=progress)


@dataclass
class JobOutcome:
    """What one :meth:`JobRun.execute` produced."""

    state: str
    result: Optional[Dict[str, object]] = None
    recorder: Optional[Recorder] = None
    error: str = ""
    resumable: bool = False
    fingerprint: str = ""
    supervision: Optional[Dict[str, object]] = None
    incomplete_shards: Tuple[int, ...] = ()


def supervision_summary(outcome) -> Optional[Dict[str, object]]:
    """A JSON-able digest of a :class:`SupervisionOutcome` (or None)."""
    if outcome is None:
        return None
    return {
        "complete": outcome.complete,
        "interrupted": outcome.interrupted,
        "event_counts": outcome.event_counts(),
        "quarantined_shards": sorted(outcome.quarantined),
        "unfinished_shards": sorted(set(outcome.unfinished)),
    }


def study_result_document(spec: JobSpec, result,
                          total_sites: int) -> Dict[str, object]:
    """The Table-2-style attribution document ``GET .../result`` serves.

    Built from a :class:`~repro.core.pipeline.StudyResult`; contains no
    raw PII — receivers, senders and parameter names are domains and
    keys, and the fingerprint is a digest, never the persona.
    """
    persistence = result.persistence
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "kind": "study",
        "spec": spec.as_dict(),
        "fingerprint": result.dataset.fingerprint(),
        "total_sites": total_sites,
        "headline": result.analysis.headline(total_sites=total_sites),
        "leaking_request_count": result.leaking_request_count,
        "suspected_leak_count": len(result.suspected_leaks),
        "statuses": result.dataset.status_counts(),
        "quarantined_sites": result.quarantined_sites(),
        "marketing_mail": result.marketing_mail_counts(),
        "table2": {
            "cross_site_receivers": list(persistence.cross_site_receivers),
            "persistent_receivers": list(persistence.persistent_receivers),
            "rows": [
                {"receiver": row.receiver, "senders": row.senders,
                 "methods": row.methods, "encoding": row.encoding,
                 "parameters": row.parameters}
                for row in persistence.rows
            ],
        },
        "policy": result.table3_counts,
    }


def crowd_result_document(spec: JobSpec, crowd_result) -> Dict[str, object]:
    """The merged crowd-study document (no dataset, no fingerprint)."""
    document: Dict[str, object] = {
        "schema": RESULT_SCHEMA_VERSION,
        "kind": "crowd",
        "spec": spec.as_dict(),
    }
    document.update(crowd_result.as_dict())
    return document


class JobRun:
    """One executing job: builds the engine, runs crawl + analysis.

    The service's runner threads drive this; ``request_shutdown``
    forwards a graceful drain to the supervised crawl engine (the
    PR-6 shutdown path), so a SIGTERM'd service leaves the job
    ``partial`` with a resumable ``study-manifest.json`` in its
    checkpoint directory.  ``progress`` is the standard heartbeat sink;
    ``supervision_sink`` receives every
    :class:`~repro.crawler.SupervisionEvent` live (the service fans
    them out over SSE).
    """

    def __init__(self, spec: JobSpec,
                 checkpoint_dir: Optional[str] = None,
                 progress: Optional[Callable[[HeartbeatEvent], None]] = None,
                 supervision_sink: Optional[Callable] = None,
                 resources: bool = True) -> None:
        self.spec = spec
        self.checkpoint_dir = checkpoint_dir
        self.progress = progress
        self.supervision_sink = supervision_sink
        #: Per-shard CPU/RSS/GC accounting, on by default for served
        #: jobs: samples ride the heartbeat channel (never the recorder),
        #: so the trace and fingerprint stay identical to a CLI run
        #: without telemetry.
        self.resources = resources
        self._engine: Optional[object] = None

    def request_shutdown(self, reason: str = "requested") -> None:
        """Gracefully drain the in-flight crawl (idempotent, thread-safe).

        A no-op before the crawl engine exists, after it finished, and
        on the serial in-process path (which runs to completion — its
        per-site checkpoints stay durable either way).
        """
        engine = self._engine
        if engine is not None:
            engine.request_shutdown(reason)

    def execute(self) -> JobOutcome:
        """Run the job to a terminal :class:`JobOutcome` (never raises)."""
        try:
            if self.spec.kind == "crowd":
                return self._execute_crowd()
            return self._execute_study()
        except Exception as exc:  # noqa: BLE001 — reported, not dropped
            return JobOutcome(state=STATE_FAILED,
                              error="%s: %s" % (type(exc).__name__, exc))

    # -- internals -------------------------------------------------------

    def _execute_study(self) -> JobOutcome:
        from ..core.pipeline import Study, StudyConfig
        from ..crawler import ParallelCrawler
        recorder = Recorder()
        pspec = self.spec.population_spec()
        engine = ParallelCrawler(
            pspec, workers=self.spec.workers, num_shards=self.spec.shards,
            fault_plan=self.spec.fault_plan(),
            checkpoint_dir=self.checkpoint_dir, recorder=recorder,
            progress=self.progress, resources=self.resources,
            supervision_sink=self.supervision_sink)
        self._engine = engine
        try:
            # The identical stage span Study.crawl() opens, so a served
            # trace diffs clean against a CLI-run one for the same spec.
            with recorder.span("crawl", kind="stage"):
                result = engine.run()
        finally:
            self._engine = None
        supervision = supervision_summary(result.supervision)
        if not result.complete:
            interrupted = (result.supervision is not None
                           and result.supervision.interrupted)
            return JobOutcome(
                state=STATE_PARTIAL, recorder=recorder,
                error="crawl incomplete: shards %s missing (%s)"
                      % (", ".join(str(index) for index
                                   in result.incomplete_shards),
                         "interrupted" if interrupted else "quarantined"),
                resumable=self.checkpoint_dir is not None,
                supervision=supervision,
                incomplete_shards=result.incomplete_shards)
        study = Study(engine.population(),
                      config=StudyConfig(recorder=recorder),
                      population_spec=pspec)
        analysis = study.analyze(result.dataset)
        document = study_result_document(
            self.spec, analysis, total_sites=len(engine.population().sites))
        return JobOutcome(state=STATE_COMPLETE, result=document,
                          recorder=recorder,
                          fingerprint=str(document["fingerprint"]),
                          supervision=supervision)

    def _execute_crowd(self) -> JobOutcome:
        from ..crowd.study import CrowdStudy, make_panel
        population = self.spec.population_spec().build()
        panel = make_panel(sorted(population.sites),
                           n_contributors=self.spec.contributors,
                           overlap=self.spec.overlap)
        study = CrowdStudy(population, panel)
        reports = []
        total = len(panel)
        for index, (contributor, report) in enumerate(study.run_iter()):
            reports.append(report)
            if self.progress is not None:
                # One heartbeat per finished contributor: the shared SSE
                # schema, with the panel standing in for the shard axis.
                self.progress(HeartbeatEvent(
                    shard=0, crawled=index + 1, total=total,
                    domain=contributor.name, status="contributor",
                    final=index + 1 == total))
        crowd_result = study.merge(reports)
        document = crowd_result_document(self.spec, crowd_result)
        return JobOutcome(state=STATE_COMPLETE, result=document)


__all__ = [
    "JOB_STATES", "JobOutcome", "JobRun", "JobSpec",
    "RESULT_SCHEMA_VERSION", "SPEC_SCHEMA_VERSION", "STATE_COMPLETE",
    "STATE_FAILED", "STATE_PARTIAL", "STATE_QUEUED", "STATE_RUNNING",
    "SpecError", "TERMINAL_STATES", "crowd_result_document",
    "study_result_document", "supervision_summary",
]
