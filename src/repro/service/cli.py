"""``repro-serve`` — the study-as-a-service front end.

Runs a :class:`~repro.service.server.StudyService` until SIGTERM or
SIGINT, then drains gracefully: in-flight supervised crawls stop
through the supervisor's shutdown path (leaving resumable manifests),
and the next ``repro-serve`` over the same ``--jobs-dir`` resumes them.

Also mounted as ``repro-study serve`` so the single-binary workflow
keeps working; both entry points share this module.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import Optional, Sequence

from .server import ServiceConfig, StudyService


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro-serve`` flags (shared with ``repro-study serve``)."""
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642,
                        help="bind port; 0 picks an ephemeral port "
                             "(default: 8642)")
    parser.add_argument("--jobs-dir", default="jobs",
                        help="artifact root: one directory per job "
                             "(default: ./jobs)")
    parser.add_argument("--runners", type=int, default=1,
                        help="bounded study-runner pool size (default: 1)")
    parser.add_argument("--queue-size", type=int, default=8,
                        help="bounded submission queue; a full queue "
                             "returns 503 + Retry-After (default: 8)")
    parser.add_argument("--retry-after", type=int, default=5,
                        help="Retry-After seconds on a 503 (default: 5)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds to wait for in-flight studies on "
                             "shutdown (default: 30)")


def serve(args: argparse.Namespace) -> int:
    """Run the service from parsed arguments until a signal lands."""
    try:
        config = ServiceConfig(
            host=args.host, port=args.port, jobs_dir=args.jobs_dir,
            runners=args.runners, queue_size=args.queue_size,
            retry_after=args.retry_after,
            drain_timeout=args.drain_timeout)
    except ValueError as exc:
        raise SystemExit("repro-serve: error: %s" % exc)
    service = StudyService(config)
    try:
        service.start()
    except OSError as exc:
        raise SystemExit("repro-serve: error: cannot bind %s:%d (%s)"
                         % (config.host, config.port, exc))
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, service.handle_signal)
        except (ValueError, OSError):
            pass  # non-main thread (embedded use); rely on close()
    print("repro-serve: listening on http://%s:%d (jobs in %s, "
          "%d runner(s), queue %d)"
          % (config.host, service.port, config.jobs_dir,
             config.runners, config.queue_size), file=sys.stderr)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.begin_shutdown("keyboard interrupt")
    print("repro-serve: draining in-flight studies...", file=sys.stderr)
    drained = service.wait_stopped(timeout=config.drain_timeout)
    service.close()
    if not drained:
        print("repro-serve: drain timeout; interrupted jobs stay "
              "resumable in %s" % config.jobs_dir, file=sys.stderr)
    print("repro-serve: stopped", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="HTTP study service: submit StudyConfig-shaped JSON "
                    "specs, stream live SSE progress, download "
                    "Table-2-style results and traces.")
    add_serve_arguments(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    return serve(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
