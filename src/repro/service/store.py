"""Per-job artifact directories, status persistence, and recovery.

Every job owns one directory under the store root::

    jobs/job-000001/
        spec.json          # the validated submission, canonical form
        status.json        # lifecycle state + progress/supervision digest
        progress.jsonl     # machine-readable heartbeat log (append-only)
        trace.jsonl        # merged observability trace (complete jobs)
        result.json        # Table-2-style attribution output (complete)
        checkpoints/       # per-shard checkpoints + study-manifest.json

The directory is the durable truth: a service restart rebuilds its
whole view from disk (:meth:`JobStore.recover`), requeues anything that
was queued or mid-run, and resumes interrupted crawls from the PR-6
``study-manifest.json`` + per-shard checkpoints — the service process
itself holds no state a crash can lose beyond the in-memory SSE replay
buffer, which is rebuilt from ``progress.jsonl``.

Job ids are sequential (``job-%06d``), assigned under a lock by
scanning the store — deterministic and collision-free without OS
entropy, keeping the module clean under the DET103 rule.
"""

from __future__ import annotations

import json
import os
import re
import threading
from typing import Dict, List, Optional

from ..crawler.checkpoint import atomic_write_text
from ..obs.progress import read_progress_log
from .jobs import (
    JOB_STATES,
    JobSpec,
    STATE_PARTIAL,
    STATE_QUEUED,
    STATE_RUNNING,
    TERMINAL_STATES,
)
from .sse import EventLog

#: Artifact file names inside a job directory.
SPEC_NAME = "spec.json"
STATUS_NAME = "status.json"
RESULT_NAME = "result.json"
TRACE_NAME = "trace.jsonl"
PROGRESS_NAME = "progress.jsonl"
CHECKPOINTS_DIR = "checkpoints"

#: Schema version of status.json documents.
STATUS_SCHEMA_VERSION = 1

_JOB_DIR_RE = re.compile(r"^job-(\d{6})$")


class StoreError(RuntimeError):
    """A job directory exists but cannot be read back."""


class JobRecord:
    """The service's runtime view of one job.

    Wraps the durable directory with the live pieces the HTTP layer
    needs: the SSE :class:`~repro.service.sse.EventLog`, the running
    :class:`~repro.service.jobs.JobRun` (for graceful drain), and the
    live :class:`~repro.obs.ProgressAggregator` (for status snapshots).
    Parent-side only — never pickled, never crosses a process boundary.
    """

    def __init__(self, job_id: str, spec: JobSpec, directory: str,
                 state: str = STATE_QUEUED) -> None:
        self.id = job_id
        self.spec = spec
        self.directory = directory
        self.state = state
        self.error = ""
        self.resumable = False
        self.fingerprint = ""
        self.attempts = 0           # times a runner picked this job up
        self.recovered = False      # requeued by a restart's recover()
        self.progress_snapshot: Optional[Dict[str, object]] = None
        self.supervision: Optional[Dict[str, object]] = None
        self.log = EventLog()
        self.run: Optional[object] = None          # live JobRun
        self.aggregator: Optional[object] = None   # live ProgressAggregator

    # -- paths -----------------------------------------------------------

    @property
    def spec_path(self) -> str:
        return os.path.join(self.directory, SPEC_NAME)

    @property
    def status_path(self) -> str:
        return os.path.join(self.directory, STATUS_NAME)

    @property
    def result_path(self) -> str:
        return os.path.join(self.directory, RESULT_NAME)

    @property
    def trace_path(self) -> str:
        return os.path.join(self.directory, TRACE_NAME)

    @property
    def progress_path(self) -> str:
        return os.path.join(self.directory, PROGRESS_NAME)

    @property
    def checkpoint_dir(self) -> str:
        return os.path.join(self.directory, CHECKPOINTS_DIR)

    # -- views -----------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def progress_view(self) -> Optional[Dict[str, object]]:
        """The freshest progress snapshot available (live or stored)."""
        aggregator = self.aggregator
        if aggregator is not None:
            return aggregator.snapshot()
        return self.progress_snapshot

    def status_document(self) -> Dict[str, object]:
        """The JSON body ``GET /studies/{id}`` serves (and status.json)."""
        return {
            "schema": STATUS_SCHEMA_VERSION,
            "id": self.id,
            "state": self.state,
            "kind": self.spec.kind,
            "label": self.spec.label,
            "description": self.spec.describe(),
            "spec": self.spec.as_dict(),
            "error": self.error,
            "resumable": self.resumable,
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "progress": self.progress_view(),
            "supervision": self.supervision,
        }

    def summary(self) -> Dict[str, object]:
        """The compact row ``GET /studies`` lists."""
        return {"id": self.id, "state": self.state,
                "kind": self.spec.kind, "label": self.spec.label}


class JobStore:
    """Creates, persists, lists and recovers :class:`JobRecord`\\ s."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        # Guards id assignment and the record cache; service-side only,
        # never pickled with the store.
        self._lock = threading.Lock()  # statan: ignore[PKL303] -- service-side only, never pickled
        self._records: Dict[str, JobRecord] = {}

    # -- creation --------------------------------------------------------

    def create(self, spec: JobSpec) -> JobRecord:
        """Allocate the next job id, write spec + status, cache the record."""
        with self._lock:
            job_id = "job-%06d" % self._next_index_locked()
            directory = os.path.join(self.root, job_id)
            os.makedirs(directory)
            record = JobRecord(job_id, spec, directory)
            self._records[job_id] = record
        atomic_write_text(record.spec_path,
                          _dumps(spec.as_dict()))
        self.write_status(record)
        return record

    def _next_index_locked(self) -> int:
        highest = 0
        for name in os.listdir(self.root):
            match = _JOB_DIR_RE.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    # -- lookup ----------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        """The cached record, or one loaded from disk, or ``None``."""
        with self._lock:
            record = self._records.get(job_id)
        if record is not None:
            return record
        if not _JOB_DIR_RE.match(job_id):
            return None
        directory = os.path.join(self.root, job_id)
        if not os.path.isdir(directory):
            return None
        record = self._load(job_id, directory)
        with self._lock:
            return self._records.setdefault(job_id, record)

    def list(self) -> List[JobRecord]:
        """Every job in the store, id order (loads any not yet cached)."""
        for name in sorted(os.listdir(self.root)):
            if _JOB_DIR_RE.match(name):
                self.get(name)
        with self._lock:
            return [self._records[job_id]
                    for job_id in sorted(self._records)]

    def live_records(self) -> List[JobRecord]:
        """Cached records only (no disk scan) — for shutdown fan-out."""
        with self._lock:
            return list(self._records.values())

    # -- persistence -----------------------------------------------------

    def write_status(self, record: JobRecord) -> None:
        atomic_write_text(record.status_path,
                          _dumps(record.status_document()))

    def write_result(self, record: JobRecord,
                     document: Dict[str, object]) -> None:
        atomic_write_text(record.result_path, _dumps(document))

    def read_result(self, record: JobRecord) -> Optional[Dict[str, object]]:
        if not os.path.exists(record.result_path):
            return None
        with open(record.result_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- recovery --------------------------------------------------------

    def recover(self) -> List[JobRecord]:
        """Rebuild records from disk; return the ones to requeue.

        Jobs found ``queued`` or ``running`` (the process died under
        them) and ``partial`` jobs marked resumable (a graceful drain
        interrupted them) are reset to ``queued`` and returned for the
        service to requeue — their per-shard checkpoints and study
        manifest make the rerun a resume, not a restart.  Terminal
        non-resumable jobs are cached for serving only.
        """
        requeue: List[JobRecord] = []
        for record in self.list():
            if record.state in (STATE_QUEUED, STATE_RUNNING) or \
                    (record.state == STATE_PARTIAL and record.resumable):
                if record.log.closed:
                    # The terminal load closed the replay log; reopen it
                    # (history intact) so the rerun can keep appending.
                    record.log = self._replay_log(record)
                record.state = STATE_QUEUED
                record.recovered = True
                self.write_status(record)
                requeue.append(record)
        return requeue

    def _replay_log(self, record: JobRecord) -> EventLog:
        """A fresh, open event log preloaded with the durable history."""
        log = EventLog()
        if os.path.exists(record.progress_path):
            for event in read_progress_log(record.progress_path):
                log.append(event)
        return log

    def _load(self, job_id: str, directory: str) -> JobRecord:
        spec_path = os.path.join(directory, SPEC_NAME)
        status_path = os.path.join(directory, STATUS_NAME)
        try:
            with open(spec_path, "r", encoding="utf-8") as handle:
                spec = JobSpec.from_dict(json.load(handle))
        except (OSError, ValueError) as exc:
            raise StoreError("%s has no readable spec.json (%s)"
                             % (directory, exc)) from exc
        record = JobRecord(job_id, spec, directory)
        if os.path.exists(status_path):
            try:
                with open(status_path, "r", encoding="utf-8") as handle:
                    status = json.load(handle)
            except (OSError, ValueError) as exc:
                raise StoreError("%s is not readable (%s)"
                                 % (status_path, exc)) from exc
            state = status.get("state")
            if state in JOB_STATES:
                record.state = str(state)
            record.error = str(status.get("error", ""))
            record.resumable = bool(status.get("resumable", False))
            record.fingerprint = str(status.get("fingerprint", ""))
            record.attempts = int(status.get("attempts", 0))
            progress = status.get("progress")
            if isinstance(progress, dict):
                record.progress_snapshot = progress
            supervision = status.get("supervision")
            if isinstance(supervision, dict):
                record.supervision = supervision
        # Rebuild the SSE replay buffer from the durable heartbeat log.
        if os.path.exists(record.progress_path):
            for event in read_progress_log(record.progress_path):
                record.log.append(event)
        if record.terminal:
            record.log.append({"type": "end", "job": record.id,
                               "state": record.state,
                               "fingerprint": record.fingerprint,
                               "error": record.error})
            record.log.close()
        return record


def _dumps(document: Dict[str, object]) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


__all__ = ["CHECKPOINTS_DIR", "JobRecord", "JobStore", "PROGRESS_NAME",
           "RESULT_NAME", "SPEC_NAME", "STATUS_NAME",
           "STATUS_SCHEMA_VERSION", "StoreError", "TRACE_NAME"]
