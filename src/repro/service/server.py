"""The stdlib HTTP server and the bounded study-runner pool.

:class:`StudyService` is the whole service: a :class:`JobStore` rooted
at ``jobs_dir``, a bounded submission queue (full queue → HTTP 503 +
``Retry-After``, the explicit backpressure contract), ``runners``
worker *threads* that execute jobs via
:class:`~repro.service.jobs.JobRun` (the crawl itself still fans out
over supervised worker *processes* when ``workers > 1``), and a
:class:`ThreadingHTTPServer` front end.

Graceful shutdown (SIGTERM/SIGINT → :meth:`StudyService.begin_shutdown`)
drains, never drops: submissions start getting 503, every in-flight
crawl is asked to stop through the supervisor's existing drain path
(which writes the resumable ``study-manifest.json``), runner threads
exit after their current job lands in a terminal-or-resumable state,
and a restart's :meth:`JobStore.recover` requeues whatever was cut
short.

Threads, conditions and the listening socket are service-side state
that never crosses a process boundary; the ``PKL303`` suppressions
below mark those storage points, and the single wall-clock read in the
drain wait carries its ``DET101`` marker — liveness deadlines are the
one legitimate host-clock use, exactly as in the supervisor.
"""

from __future__ import annotations

import json
import os
import queue as queue_module
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from .. import __version__
from ..obs.progress import ProgressAggregator
from ..obs.runtime import RuntimeMetrics, wall_now
from .jobs import (
    JOB_STATES,
    JobRun,
    JobSpec,
    STATE_FAILED,
    STATE_RUNNING,
    SpecError,
)
from .routes import Router
from .store import JobRecord, JobStore

#: Schema version of the GET /healthz document; bump on shape changes.
HEALTH_SCHEMA_VERSION = 2


class QueueFullError(RuntimeError):
    """The bounded submission queue is full (HTTP 503 + Retry-After)."""

    def __init__(self, message: str, retry_after: int = 5) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (plain picklable data).

    ``runners`` is the bounded study-runner pool size (``0`` accepts
    jobs without executing them — useful for tests and for a
    queue-only front end).  ``queue_size`` bounds the backlog;
    ``retry_after`` is the seconds hint a 503 carries.
    ``drain_timeout`` is how long :meth:`StudyService.close` waits for
    runner threads after a shutdown request before giving up on the
    join (the jobs themselves stay resumable either way).
    """

    host: str = "127.0.0.1"
    port: int = 8642
    jobs_dir: str = "jobs"
    runners: int = 1
    queue_size: int = 8
    retry_after: int = 5
    poll_interval: float = 0.1
    drain_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.runners < 0:
            raise ValueError("runners must be >= 0")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if self.retry_after < 0:
            raise ValueError("retry_after must be >= 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")


class StudyService:
    """Queue, runner pool, artifact store, and HTTP front end."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.store = JobStore(self.config.jobs_dir)
        self.router = Router(self)
        #: Runtime ops telemetry, served by GET /metrics.  Counters and
        #: histograms accumulate on every request/job transition; the
        #: point-in-time gauges are refreshed at scrape time.
        self.metrics = RuntimeMetrics()
        # Seed the subscriber gauge so the series renders (at 0) even
        # before the first SSE client connects; the ± accounting lives
        # in the stream wrapper.
        self.metrics.add_gauge("repro_service_sse_subscribers", 0,
                               help="SSE event streams currently "
                                    "connected.")
        self._started = wall_now()
        self._queue: "queue_module.Queue[JobRecord]" = \
            queue_module.Queue(maxsize=self.config.queue_size)
        # The service never crosses a pickle boundary itself — only job
        # specs/events do — so parent-side thread primitives are fine.
        self._submit_lock = threading.Lock()   # statan: ignore[PKL303] -- parent-side only, never pickled
        self._stopping = threading.Event()     # statan: ignore[PKL303] -- parent-side only, never pickled
        self._accepting = False
        self._runners: List[threading.Thread] = []
        self._server: Optional[_ServiceHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Recover the store, start the runner pool, bind the socket.

        After ``start()`` the bound port is available as :attr:`port`
        (useful with ``port=0`` for an ephemeral port); call
        :meth:`serve_forever` (blocking) or :meth:`start_in_thread`.
        """
        for record in self.store.recover():
            try:
                self._queue.put_nowait(record)
            except queue_module.Full:
                # More interrupted jobs than queue slots: they stay
                # 'queued' on disk and a later restart (or a larger
                # queue) picks them up — recovery never drops a job.
                print("repro-serve: queue full at recovery; %s stays "
                      "queued on disk" % record.id, file=sys.stderr)
        for index in range(self.config.runners):
            thread = threading.Thread(target=self._runner_loop,
                                      name="repro-serve-runner-%d" % index,
                                      daemon=True)
            thread.start()
            self._runners.append(thread)
        self._server = _ServiceHTTPServer(
            (self.config.host, self.config.port), _Handler, service=self)
        # Publish under the submit lock: submit() reads _accepting under
        # it, and the lock's release/acquire pair is what makes the
        # runner pool + server setup above visible to submitting threads.
        with self._submit_lock:
            self._accepting = True

    @property
    def port(self) -> int:
        """The actually-bound port (resolves ``port=0``)."""
        if self._server is None:
            return self.config.port
        return self._server.server_address[1]

    def serve_forever(self) -> None:
        """Serve HTTP until :meth:`begin_shutdown` (blocking)."""
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        self._server.serve_forever(poll_interval=self.config.poll_interval)

    def start_in_thread(self) -> None:
        """``start()`` + serve on a background thread (tests, examples)."""
        self.start()
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve-http", daemon=True)
        thread.start()
        self._server_thread = thread

    def stopping(self) -> bool:
        """True once a shutdown has been requested (SSE streams check)."""
        return self._stopping.is_set()

    def handle_signal(self, signum: int, frame: object = None) -> None:
        """Signal-handler entry point: begin the graceful drain."""
        self.begin_shutdown("signal %d" % signum)

    def begin_shutdown(self, reason: str = "requested") -> None:
        """Stop accepting, drain in-flight studies (idempotent).

        Safe to call from a signal handler: everything here is either
        an Event set, a flag write, or delegated to another thread.
        """
        if self._stopping.is_set():
            return
        # Deliberately lock-free: a signal handler taking _submit_lock
        # could deadlock against the submit() it interrupted.  The write
        # is a monotonic one-way flip (True -> False) and _stopping.set()
        # below publishes it; worst case one in-flight submit() is
        # accepted during the drain, which the drain handles anyway.
        self._accepting = False  # statan: ignore[CON401] -- signal-safe one-way flip; taking the lock here could self-deadlock
        self._stopping.set()
        for record in self.store.live_records():
            run = record.run
            if run is not None:
                run.request_shutdown(reason)
        if self._server is not None:
            # shutdown() blocks until the serve loop exits, so it must
            # run off the serving thread (which a signal interrupts).
            threading.Thread(target=self._server.shutdown,
                             name="repro-serve-shutdown",
                             daemon=True).start()

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        """Join the runner pool; True when every runner exited."""
        deadline = None
        if timeout is not None:
            # Drain bookkeeping only — job results never see this read.
            deadline = time.monotonic() + timeout  # statan: ignore[DET101] -- liveness deadline, never fingerprinted
        for thread in self._runners:
            remaining = None
            if deadline is not None:
                remaining = max(
                    0.0,
                    deadline - time.monotonic())  # statan: ignore[DET101] -- liveness deadline, never fingerprinted
            thread.join(remaining)
        return not any(thread.is_alive() for thread in self._runners)

    def close(self) -> None:
        """Full stop: drain, join runners, release the socket."""
        self.begin_shutdown("close")
        self.wait_stopped(timeout=self.config.drain_timeout)
        if self._server is not None:
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)

    def __enter__(self) -> "StudyService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- submission ------------------------------------------------------

    def submit(self, document: object) -> JobRecord:
        """Validate, persist, and enqueue one submission.

        Raises :class:`~repro.service.jobs.SpecError` on a bad spec
        (400) and :class:`QueueFullError` when the bounded queue has no
        slot or the service is draining (503 + Retry-After).
        """
        started = wall_now()
        try:
            spec = JobSpec.from_dict(document)
            with self._submit_lock:
                if not self._accepting or self._stopping.is_set():
                    raise QueueFullError(
                        "service is shutting down; retry against the next "
                        "instance", retry_after=self.config.retry_after)
                if self._queue.full():
                    raise QueueFullError(
                        "job queue is full (%d queued); retry later"
                        % self.config.queue_size,
                        retry_after=self.config.retry_after)
                record = self.store.create(spec)
                # Cannot overflow: submissions are serialized by the lock
                # and runners only ever drain the queue.
                self._queue.put_nowait(record)
        except SpecError:
            self._count_submission("invalid")
            raise
        except QueueFullError:
            self._count_submission("rejected")
            raise
        self._count_submission("accepted")
        self.metrics.observe("repro_service_submit_seconds",
                             wall_now() - started,
                             help="Submission latency (validate + persist "
                                  "+ enqueue), seconds.")
        return record

    def _count_submission(self, outcome: str) -> None:
        self.metrics.inc("repro_service_submissions_total",
                         labels={"outcome": outcome},
                         help="Study submissions by outcome.")

    def health(self) -> Dict[str, object]:
        """The ``GET /healthz`` document."""
        states: Dict[str, int] = {}
        for record in self.store.live_records():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "service": "repro-serve",
            "schema": HEALTH_SCHEMA_VERSION,
            "version": __version__,
            "accepting": self._accepting and not self._stopping.is_set(),
            "draining": self._stopping.is_set(),
            "uptime_seconds": round(wall_now() - self._started, 3),
            "queue": {"depth": self._queue.qsize(),
                      "capacity": self.config.queue_size},
            "runners": self.config.runners,
            "states": states,
        }

    def refresh_runtime_gauges(self) -> None:
        """Recompute the point-in-time gauges (called at scrape time)."""
        metrics = self.metrics
        metrics.set_gauge("repro_service_queue_depth",
                          self._queue.qsize(),
                          help="Jobs waiting in the bounded queue.")
        metrics.set_gauge("repro_service_queue_capacity",
                          self.config.queue_size,
                          help="Bounded queue capacity.")
        metrics.set_gauge("repro_service_uptime_seconds",
                          round(wall_now() - self._started, 3),
                          help="Seconds since the service started.")
        metrics.set_gauge("repro_service_accepting",
                          1.0 if (self._accepting
                                  and not self._stopping.is_set()) else 0.0,
                          help="1 while accepting submissions, 0 while "
                               "draining.")
        states: Dict[str, int] = {}
        for record in self.store.list():
            states[record.state] = states.get(record.state, 0) + 1
        # Known states always render (a zero is a signal too); any
        # state the store invents later still shows up.
        for state in sorted(set(JOB_STATES) | set(states)):
            metrics.set_gauge("repro_service_jobs", states.get(state, 0),
                              labels={"state": state},
                              help="Jobs by state.")

    # -- the runner pool -------------------------------------------------

    def _runner_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                record = self._queue.get(
                    timeout=self.config.poll_interval)
            except queue_module.Empty:
                continue
            try:
                self._run_job(record)
            except Exception as exc:  # noqa: BLE001 — a runner never dies
                record.state = STATE_FAILED
                record.error = "%s: %s" % (type(exc).__name__, exc)
                self.store.write_status(record)
                if not record.log.closed:
                    record.log.append({"type": "end", "job": record.id,
                                       "state": record.state,
                                       "fingerprint": "",
                                       "error": record.error})
                    record.log.close()

    def _run_job(self, record: JobRecord) -> None:
        resuming = record.recovered and \
            os.path.exists(record.progress_path)
        record.attempts += 1
        record.state = STATE_RUNNING
        record.log.append({"type": "state", "job": record.id,
                           "state": STATE_RUNNING,
                           "attempt": record.attempts})
        self.store.write_status(record)
        # The durable heartbeat log appends across resumes so the SSE
        # replay (rebuilt from it after a restart) keeps the full
        # history of every attempt.
        aggregator = ProgressAggregator(jsonl_path=record.progress_path,
                                        append=resuming)
        log = record.log
        unsubscribe = aggregator.subscribe(
            lambda event: log.append(event.as_dict()))
        record.aggregator = aggregator
        run = JobRun(
            record.spec, checkpoint_dir=record.checkpoint_dir,
            progress=aggregator,
            supervision_sink=lambda event: log.append(
                dict(event.as_dict(), type="supervision")))
        record.run = run
        run_started = wall_now()
        try:
            outcome = run.execute()
        finally:
            record.run = None
            unsubscribe()
            record.progress_snapshot = aggregator.snapshot()
            record.aggregator = None
            aggregator.close()
        self.metrics.observe("repro_service_job_run_seconds",
                             wall_now() - run_started,
                             help="Wall-clock study execution time, "
                                  "seconds.")
        self.metrics.inc("repro_service_jobs_finished_total",
                         labels={"state": outcome.state},
                         help="Finished job executions by terminal "
                              "state.")
        record.state = outcome.state
        record.error = outcome.error
        record.resumable = outcome.resumable
        record.fingerprint = outcome.fingerprint
        record.supervision = outcome.supervision
        if outcome.result is not None:
            self.store.write_result(record, outcome.result)
        if outcome.recorder is not None and outcome.recorder.span_count():
            from ..obs import write_trace
            write_trace(outcome.recorder, record.trace_path)
        self.store.write_status(record)
        record.log.append({"type": "end", "job": record.id,
                           "state": record.state,
                           "fingerprint": record.fingerprint,
                           "error": record.error})
        record.log.close()


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`StudyService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler_class, service: StudyService
                 ) -> None:
        self.service = service
        super().__init__(address, handler_class)


class _Handler(BaseHTTPRequestHandler):
    """Reads the request, delegates to the router, writes the response.

    HTTP/1.0 on purpose: every response closes the connection, so
    Content-Length is optional on the SSE stream and there is no
    keep-alive state to manage — the simplest thing that is correct
    for both JSON bodies and long-lived event streams.
    """

    server_version = "repro-serve/" + __version__

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        service = self.server.service  # type: ignore[attr-defined]
        metrics = service.metrics
        headers = {key.lower(): value
                   for key, value in self.headers.items()}
        try:
            response = service.router.route(method, self.path, body,
                                            headers=headers)
        except Exception as exc:  # noqa: BLE001 — surfaced as a 500
            payload = json.dumps(
                {"error": "internal error: %s: %s"
                          % (type(exc).__name__, exc)}).encode("utf-8")
            self._count_request(method, 500, len(payload))
            self.send_response(500)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        for name, value in response.headers:
            self.send_header(name, value)
        if response.stream is None:
            self._count_request(method, response.status,
                                len(response.body))
            self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
            self.wfile.write(response.body)
            return
        self._count_request(method, response.status, 0)
        self.end_headers()
        try:
            for chunk in response.stream:
                self.wfile.write(chunk)
                self.wfile.flush()
                metrics.inc("repro_http_bytes_sent_total", len(chunk),
                            help="Response payload bytes written.")
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client hung up; nothing to clean beyond the socket

    def _count_request(self, method: str, status: int,
                       body_bytes: int) -> None:
        metrics = self.server.service.metrics  # type: ignore[attr-defined]
        metrics.inc("repro_http_requests_total",
                    labels={"method": method, "status": str(status)},
                    help="HTTP requests served, by method and status.")
        if body_bytes:
            metrics.inc("repro_http_bytes_sent_total", body_bytes,
                        help="Response payload bytes written.")

    def log_message(self, format: str, *args: object) -> None:
        # Quiet by default: the service's own status lines go to
        # stderr; per-request logs are the platform's job (see
        # docs/SERVICE.md deployment notes).
        pass


__all__ = ["QueueFullError", "ServiceConfig", "StudyService"]
