"""HTTP routing: (method, path) → handler → :class:`Response`.

Deliberately framework-free: the router is a plain object that maps a
parsed request onto the :class:`~repro.service.server.StudyService` and
returns a :class:`Response` value the server layer writes out.  Keeping
the mapping out of the socket code makes every endpoint testable
without a listening port (``tests/test_service_http.py`` drives both).

Endpoints (full reference with examples in docs/SERVICE.md)::

    GET  /healthz               service + queue health
    GET  /metrics               Prometheus text exposition
    POST /studies               submit a job spec       202 | 400 | 503
    GET  /studies               list jobs
    GET  /studies/{id}          status + supervision    200 | 404
    GET  /studies/{id}/result   attribution output      200 | 404 | 409
    GET  /studies/{id}/trace    JSONL trace download    200 | 404 | 409
    GET  /studies/{id}/events   SSE progress stream     200 | 404
                                (honors Last-Event-ID reconnects)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..obs.exposition import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..obs.exposition import render_prometheus
from .jobs import STATE_COMPLETE, SpecError
from .sse import stream_log
from .store import JobRecord


@dataclass
class Response:
    """One HTTP response, body or stream (never both)."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()
    #: When set, the server writes these chunks as they come (SSE) and
    #: sends no Content-Length; ``body`` must stay empty.
    stream: Optional[Iterator[bytes]] = None


def json_response(status: int, document: Dict[str, object],
                  headers: Tuple[Tuple[str, str], ...] = ()) -> Response:
    body = (json.dumps(document, indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")
    return Response(status=status, body=body, headers=headers)


def error_response(status: int, message: str,
                   headers: Tuple[Tuple[str, str], ...] = (),
                   **extra: object) -> Response:
    document: Dict[str, object] = {"error": message}
    document.update(extra)
    return json_response(status, document, headers=headers)


class Router:
    """Maps requests onto a :class:`StudyService`."""

    def __init__(self, service) -> None:
        self.service = service

    def route(self, method: str, path: str, body: bytes = b"",
              headers: Optional[Mapping[str, str]] = None) -> Response:
        headers = headers or {}
        parts = [part for part in path.split("?", 1)[0].split("/") if part]
        if not parts or parts == ["healthz"]:
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._health()
        if parts == ["metrics"]:
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._metrics()
        if parts[0] != "studies" or len(parts) > 3:
            return error_response(404, "no such resource: /%s"
                                  % "/".join(parts))
        if len(parts) == 1:
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return self._list()
            return self._method_not_allowed("GET, POST")
        record = self.service.store.get(parts[1])
        if record is None:
            return error_response(404, "no such job: %s" % parts[1])
        if method != "GET":
            return self._method_not_allowed("GET")
        if len(parts) == 2:
            return json_response(200, record.status_document())
        tail = parts[2]
        if tail == "result":
            return self._result(record)
        if tail == "trace":
            return self._trace(record)
        if tail == "events":
            return self._events(record, headers)
        return error_response(404, "no such resource under %s: %s"
                              % (record.id, tail))

    # -- handlers --------------------------------------------------------

    def _method_not_allowed(self, allow: str) -> Response:
        return error_response(405, "method not allowed",
                              headers=(("Allow", allow),))

    def _health(self) -> Response:
        return json_response(200, self.service.health())

    def _metrics(self) -> Response:
        # Gauges (queue depth, jobs by state, uptime) are refreshed at
        # scrape time; counters and histograms accumulate at every
        # request/job transition.
        self.service.refresh_runtime_gauges()
        body = render_prometheus(self.service.metrics).encode("utf-8")
        return Response(status=200, body=body,
                        content_type=METRICS_CONTENT_TYPE)

    def _list(self) -> Response:
        return json_response(200, {
            "jobs": [record.summary()
                     for record in self.service.store.list()],
        })

    def _submit(self, body: bytes) -> Response:
        from .server import QueueFullError
        try:
            document = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as exc:
            return error_response(400, "request body is not JSON: %s" % exc)
        try:
            record = self.service.submit(document)
        except SpecError as exc:
            return error_response(400, str(exc))
        except QueueFullError as exc:
            # Explicit backpressure: the queue is bounded, and a full
            # queue is the client's signal to come back, not a reason
            # for the service to buffer without limit.
            return error_response(
                503, str(exc),
                headers=(("Retry-After", str(exc.retry_after)),),
                retry_after=exc.retry_after)
        return json_response(202, {
            "id": record.id,
            "state": record.state,
            "location": "/studies/%s" % record.id,
            "events": "/studies/%s/events" % record.id,
        }, headers=(("Location", "/studies/%s" % record.id),))

    def _result(self, record: JobRecord) -> Response:
        if record.state != STATE_COMPLETE:
            return error_response(
                409, "job %s has no result (state: %s)"
                     % (record.id, record.state),
                state=record.state, job_error=record.error,
                resumable=record.resumable)
        document = self.service.store.read_result(record)
        if document is None:
            return error_response(404, "result.json is missing for %s"
                                  % record.id)
        return json_response(200, document)

    def _trace(self, record: JobRecord) -> Response:
        if not record.terminal:
            return error_response(
                409, "job %s is still %s; the trace is written when it "
                     "finishes" % (record.id, record.state),
                state=record.state)
        if not os.path.exists(record.trace_path):
            return error_response(404, "job %s recorded no trace"
                                  % record.id)
        with open(record.trace_path, "rb") as handle:
            body = handle.read()
        return Response(status=200, body=body,
                        content_type="application/x-ndjson")

    def _events(self, record: JobRecord,
                headers: Mapping[str, str]) -> Response:
        # SSE reconnect: frame ids are event-log indexes, so a client
        # that last saw id N resumes at N + 1.  A garbage or negative
        # header degrades to a full replay — never an error, per the
        # EventSource contract.
        start_index = 0
        last_id = headers.get("last-event-id", "").strip()
        if last_id:
            try:
                start_index = max(0, int(last_id) + 1)
            except ValueError:
                start_index = 0
        stream = stream_log(record.log,
                            should_stop=self.service.stopping,
                            start_index=start_index)
        return Response(
            status=200, content_type="text/event-stream",
            headers=(("Cache-Control", "no-cache"),
                     ("Connection", "close")),
            stream=self._gauge_subscribers(stream))

    def _gauge_subscribers(self, stream: Iterator[bytes]
                           ) -> Iterator[bytes]:
        """Track live SSE followers in the runtime metrics."""
        metrics = self.service.metrics
        metrics.add_gauge("repro_service_sse_subscribers", 1,
                          help="SSE event streams currently connected.")
        try:
            for chunk in stream:
                yield chunk
        finally:
            metrics.add_gauge("repro_service_sse_subscribers", -1)


__all__ = ["Response", "Router", "error_response", "json_response"]
