"""Study-as-a-service: the dependency-free HTTP service layer.

Turns the batch pipeline into the ROADMAP's service: studies submitted
as JSON over ``POST /studies``, executed on a bounded runner pool by
the same supervised engines the CLI uses, with live progress streamed
over Server-Sent Events and every artifact (spec, manifest, progress
log, trace, result) durable in a per-job directory.

Layering (request → queue → supervisor → SSE; full picture in
docs/ARCHITECTURE.md, operations guide in docs/SERVICE.md):

* :mod:`~repro.service.jobs` — the validated :class:`JobSpec` and its
  execution via :class:`~repro.crawler.ParallelCrawler` +
  :meth:`~repro.core.pipeline.Study.analyze`;
* :mod:`~repro.service.store` — per-job artifact directories, status
  persistence, crash/restart recovery;
* :mod:`~repro.service.sse` — the append-only event log with
  gap-free replay-then-follow streaming;
* :mod:`~repro.service.routes` — the framework-free endpoint table;
* :mod:`~repro.service.server` — the stdlib HTTP server, the bounded
  queue (503 + Retry-After backpressure), the runner pool, graceful
  SIGTERM drain;
* :mod:`~repro.service.cli` — the ``repro-serve`` console script.

Everything is stdlib (``http.server``, ``threading``, ``queue``); the
module sits inside the statan determinism and pickle scopes, with the
wall-clock/socket edge marked by explicit suppressions.
"""

from .jobs import (
    JOB_STATES,
    JobOutcome,
    JobRun,
    JobSpec,
    RESULT_SCHEMA_VERSION,
    SPEC_SCHEMA_VERSION,
    STATE_COMPLETE,
    STATE_FAILED,
    STATE_PARTIAL,
    STATE_QUEUED,
    STATE_RUNNING,
    SpecError,
    TERMINAL_STATES,
    crowd_result_document,
    study_result_document,
    supervision_summary,
)
from .routes import Response, Router
from .server import QueueFullError, ServiceConfig, StudyService
from .sse import EventLog, format_sse, stream_log
from .store import JobRecord, JobStore, StoreError

__all__ = [
    "EventLog",
    "JOB_STATES",
    "JobOutcome",
    "JobRecord",
    "JobRun",
    "JobSpec",
    "JobStore",
    "QueueFullError",
    "RESULT_SCHEMA_VERSION",
    "Response",
    "Router",
    "SPEC_SCHEMA_VERSION",
    "STATE_COMPLETE",
    "STATE_FAILED",
    "STATE_PARTIAL",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "ServiceConfig",
    "SpecError",
    "StoreError",
    "StudyService",
    "TERMINAL_STATES",
    "crowd_result_document",
    "format_sse",
    "stream_log",
    "study_result_document",
    "supervision_summary",
]
