"""Server-Sent Events plumbing: the per-job event log and the stream.

``GET /studies/{id}/events`` must *replay* everything the job already
emitted (the ``progress.jsonl`` history) and then *follow* live events
with no gap and no duplicate in between.  The mechanism is a single
append-only :class:`EventLog` per job: replay is "read from index 0",
follow is "wait for the next index" — one monotonically increasing
sequence, so the replay/follow boundary cannot lose or repeat an event
no matter when the client connects.

Everything here is parent-side service state (condition variables,
generators); none of it ever crosses a process boundary — the statan
``PKL303`` suppressions below mark exactly those lines.
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class EventLog:
    """Append-only journal of one job's events, with replay-then-follow.

    Writers (the runner thread) :meth:`append` JSON-able dicts and
    :meth:`close` the log when the job reaches a terminal state;
    readers (SSE handler threads) page through :meth:`events_after` and
    block on :meth:`wait_for`.  Closing wakes every waiting reader, so
    streams terminate promptly when the job does.
    """

    def __init__(self) -> None:
        # Service-side only: the log never crosses the process boundary
        # (jobs ship plain JobSpec data; events are plain dicts).
        self._cond = threading.Condition()  # statan: ignore[PKL303] -- service-side only, never pickled
        self._events: List[Dict[str, object]] = []
        self._closed = False

    def append(self, event: Dict[str, object]) -> None:
        """Append one event and wake all followers.

        Raises :class:`RuntimeError` on a closed log — a terminal job
        emitting further events is a service bug, not a race to paper
        over.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("event log is closed")
            self._events.append(dict(event))
            self._cond.notify_all()

    def close(self) -> None:
        """Mark the log terminal and wake all followers (idempotent)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def events_after(self, index: int
                     ) -> Tuple[List[Dict[str, object]], bool]:
        """``(events[index:], closed)`` as one atomic snapshot."""
        with self._cond:
            return list(self._events[index:]), self._closed

    def wait_for(self, index: int, timeout: float) -> bool:
        """Block until an event past ``index`` exists or the log closes.

        Returns True when there is something new to read (or the log is
        closed), False on timeout — followers poll again either way, so
        the return value is advisory.
        """
        with self._cond:
            # wait_for re-checks the predicate around every wakeup, so
            # a spurious wakeup or a timeout can never report an event
            # that is not actually there (CON404's failure mode).
            return self._cond.wait_for(
                lambda: len(self._events) > index or self._closed,
                timeout)


def format_sse(seq: int, event: Dict[str, object]) -> bytes:
    """One SSE frame: ``id:`` / ``event:`` / ``data:`` + blank line.

    The event name is the dict's ``type`` field (``heartbeat``,
    ``state``, ``supervision``, ``end``), the data line its compact
    JSON — the schema documented in docs/SERVICE.md.
    """
    name = str(event.get("type", "message"))
    data = json.dumps(event, sort_keys=True, separators=(",", ":"))
    return ("id: %d\nevent: %s\ndata: %s\n\n" % (seq, name, data)
            ).encode("utf-8")


def stream_log(log: EventLog, poll_interval: float = 0.25,
               should_stop: Optional[Callable[[], bool]] = None,
               start_index: int = 0) -> Iterator[bytes]:
    """Yield SSE frames: replay from ``start_index``, then follow.

    ``start_index`` is the reconnect hook: a client that saw frame ids
    up to N resumes with ``start_index=N + 1`` (the route derives it
    from the ``Last-Event-ID`` request header) and receives no
    duplicates — frame ids are the log's own indexes, so the sequence
    continues exactly where the dropped connection stopped.  An index
    at or past the end of a closed log yields nothing and ends
    immediately; on a live log it simply waits for the next event.

    ``should_stop`` (e.g. the service's shutdown flag) ends the stream
    early so a draining server does not hold follower sockets open for
    jobs that will never finish in this process.
    """
    index = max(0, start_index)
    while True:
        events, closed = log.events_after(index)
        for event in events:
            yield format_sse(index, event)
            index += 1
        if closed:
            return
        if should_stop is not None and should_stop():
            return
        log.wait_for(index, timeout=poll_interval)


__all__ = ["EventLog", "format_sse", "stream_log"]
