"""HTTP Archive (HAR 1.2) export.

Serializes a :class:`~repro.netsim.har.CaptureLog` into the standard HAR
format so captured crawls can be inspected with browser devtools, HAR
viewers, or fed to external analysis tooling.  Only the fields the
simulator populates are emitted; the structure follows the HAR 1.2 spec
(log/creator/pages/entries with request/response/timings objects).
"""

from __future__ import annotations

import datetime
import json
from typing import Dict, List, Optional

from .har import CaptureEntry, CaptureLog

_HAR_VERSION = "1.2"
_CREATOR = {"name": "repro", "version": "1.0.0",
            "comment": "CoNEXT'21 PII-leakage reproduction"}


def _iso_time(timestamp: float) -> str:
    moment = datetime.datetime.fromtimestamp(timestamp,
                                             tz=datetime.timezone.utc)
    return moment.isoformat().replace("+00:00", "Z")


def _headers(items) -> List[Dict[str, str]]:
    return [{"name": name, "value": value} for name, value in items]


def _query(entry: CaptureEntry) -> List[Dict[str, str]]:
    return [{"name": name, "value": value}
            for name, value in entry.request.url.query]


def _request_object(entry: CaptureEntry) -> Dict[str, object]:
    request = entry.request
    obj: Dict[str, object] = {
        "method": request.method,
        "url": str(request.url),
        "httpVersion": "HTTP/1.1",
        "headers": _headers(request.headers.items()),
        "queryString": _query(entry),
        "cookies": [],
        "headersSize": -1,
        "bodySize": len(request.body),
    }
    if request.body:
        obj["postData"] = {
            "mimeType": request.headers.get("Content-Type",
                                            "application/octet-stream"),
            "text": request.body.decode("utf-8", errors="replace"),
        }
    return obj


def _response_object(entry: CaptureEntry) -> Dict[str, object]:
    response = entry.response
    if response is None:
        # Blocked/cancelled requests use HAR's conventional status 0.
        return {
            "status": 0, "statusText": entry.blocked_by or "blocked",
            "httpVersion": "HTTP/1.1", "headers": [], "cookies": [],
            "content": {"size": 0, "mimeType": "x-unknown"},
            "redirectURL": "", "headersSize": -1, "bodySize": 0,
        }
    return {
        "status": response.status,
        "statusText": "",
        "httpVersion": "HTTP/1.1",
        "headers": _headers(response.headers.items()),
        "cookies": [],
        "content": {
            "size": len(response.body),
            "mimeType": response.headers.get("Content-Type",
                                             "application/octet-stream"),
        },
        "redirectURL": response.location or "",
        "headersSize": -1,
        "bodySize": len(response.body),
    }


def to_har(log: CaptureLog) -> Dict[str, object]:
    """Convert a capture log to a HAR 1.2 dictionary."""
    pages: Dict[str, Dict[str, object]] = {}
    entries = []
    for entry in log:
        page_id = "%s:%s" % (entry.site, entry.stage)
        if page_id not in pages:
            pages[page_id] = {
                "startedDateTime": _iso_time(entry.request.timestamp),
                "id": page_id,
                "title": entry.page_url,
                "pageTimings": {},
            }
        entries.append({
            "startedDateTime": _iso_time(entry.request.timestamp),
            "time": 0,
            "request": _request_object(entry),
            "response": _response_object(entry),
            "cache": {},
            "timings": {"send": 0, "wait": 0, "receive": 0},
            "pageref": page_id,
            "_site": entry.site,
            "_stage": entry.stage,
            "_blockedBy": entry.blocked_by,
        })
    return {
        "log": {
            "version": _HAR_VERSION,
            "creator": dict(_CREATOR),
            "pages": list(pages.values()),
            "entries": entries,
        }
    }


def to_har_json(log: CaptureLog, indent: Optional[int] = 2) -> str:
    """Serialize a capture log as HAR JSON text."""
    return json.dumps(to_har(log), indent=indent, sort_keys=False)
