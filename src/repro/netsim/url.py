"""URL model with ordered query parameters.

The leak detector needs byte-accurate access to every component of a request
URL — scheme, host, path, and the query string as an *ordered multimap*
(trackers routinely repeat parameter names, and parameter order is part of
the observable fingerprint).  The standard library flattens some of these
distinctions, so the model is implemented from scratch, including RFC 3986
percent-encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Tuple

_UNRESERVED = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~")
_HEX_DIGITS = "0123456789ABCDEF"


def percent_encode(text: str, safe: str = "") -> str:
    """RFC 3986 percent-encoding; ``safe`` characters pass through."""
    keep = _UNRESERVED.union(safe)
    pieces: List[str] = []
    for byte in text.encode("utf-8"):
        char = chr(byte)
        if char in keep:
            pieces.append(char)
        else:
            pieces.append("%%%c%c" % (_HEX_DIGITS[byte >> 4],
                                      _HEX_DIGITS[byte & 0xF]))
    return "".join(pieces)


@lru_cache(maxsize=8192)
def percent_decode(text: str) -> str:
    """Inverse of :func:`percent_encode`; tolerates malformed escapes.

    Memoised: the detector percent-decodes every path/referer of every
    captured request, and a crawl revisits the same few thousand
    strings constantly.  Decoding is pure, so the cache is invisible.
    """
    if "%" not in text and "+" not in text:
        return text
    out = bytearray()
    index = 0
    while index < len(text):
        char = text[index]
        if char == "%" and index + 2 < len(text) + 1:
            hex_pair = text[index + 1:index + 3]
            try:
                out.append(int(hex_pair, 16))
                index += 3
                continue
            except ValueError:
                pass
        if char == "+":
            out.append(0x20)
        else:
            out.extend(char.encode("utf-8"))
        index += 1
    return out.decode("utf-8", errors="replace")


def encode_query(params: Iterable[Tuple[str, str]]) -> str:
    """Serialize ordered (key, value) pairs as a query string."""
    return "&".join(
        "%s=%s" % (percent_encode(key), percent_encode(value))
        for key, value in params)


def decode_query(query: str) -> List[Tuple[str, str]]:
    """Parse a query string into ordered (key, value) pairs."""
    pairs: List[Tuple[str, str]] = []
    if not query:
        return pairs
    for chunk in query.split("&"):
        if not chunk:
            continue
        key, _, value = chunk.partition("=")
        pairs.append((percent_decode(key), percent_decode(value)))
    return pairs


@dataclass(frozen=True)
class Url:
    """An absolute http(s) URL with ordered query parameters."""

    scheme: str = "https"
    host: str = ""
    path: str = "/"
    query: Tuple[Tuple[str, str], ...] = ()
    fragment: str = ""
    port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scheme not in ("http", "https"):
            raise ValueError("unsupported scheme: %r" % self.scheme)
        if not self.host:
            raise ValueError("URL requires a host")
        if not self.path.startswith("/"):
            object.__setattr__(self, "path", "/" + self.path)

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse an absolute URL string."""
        scheme, sep, rest = text.partition("://")
        if not sep:
            raise ValueError("not an absolute URL: %r" % text)
        rest, _, fragment = rest.partition("#")
        rest, _, query = rest.partition("?")
        slash = rest.find("/")
        if slash == -1:
            authority, path = rest, "/"
        else:
            authority, path = rest[:slash], rest[slash:]
        host, _, port_text = authority.partition(":")
        port = int(port_text) if port_text else None
        return cls(scheme=scheme.lower(), host=host.lower(), path=path,
                   query=tuple(decode_query(query)), fragment=fragment,
                   port=port)

    @property
    def origin(self) -> str:
        """scheme://host[:port] — the same-origin tuple rendered as text."""
        if self.port is None:
            return "%s://%s" % (self.scheme, self.host)
        return "%s://%s:%d" % (self.scheme, self.host, self.port)

    @property
    def query_string(self) -> str:
        return encode_query(self.query)

    def query_get(self, key: str) -> Optional[str]:
        """First value for ``key``, or None."""
        for name, value in self.query:
            if name == key:
                return value
        return None

    def query_all(self, key: str) -> List[str]:
        """All values for ``key``, in order."""
        return [value for name, value in self.query if name == key]

    def query_dict(self) -> Dict[str, str]:
        """Last-writer-wins view of the query (convenience for tests)."""
        return dict(self.query)

    def with_query(self, params: Iterable[Tuple[str, str]]) -> "Url":
        """A copy with the query replaced."""
        return replace(self, query=tuple(params))

    def adding_query(self, params: Iterable[Tuple[str, str]]) -> "Url":
        """A copy with parameters appended after the existing ones."""
        return replace(self, query=self.query + tuple(params))

    def with_path(self, path: str) -> "Url":
        """A copy with the path replaced."""
        return replace(self, path=path)

    def without_query(self) -> "Url":
        """A copy with the query and fragment stripped."""
        return replace(self, query=(), fragment="")

    def join(self, reference: str) -> "Url":
        """Resolve an absolute or path-absolute reference against this URL."""
        if "://" in reference:
            return Url.parse(reference)
        if reference.startswith("/"):
            path, _, query = reference.partition("?")
            return replace(self, path=path, query=tuple(decode_query(query)),
                           fragment="")
        # Relative path: resolve against the current directory.
        base_dir = self.path.rsplit("/", 1)[0]
        path, _, query = reference.partition("?")
        return replace(self, path="%s/%s" % (base_dir, path),
                       query=tuple(decode_query(query)), fragment="")

    def __str__(self) -> str:
        text = "%s://%s" % (self.scheme, self.host)
        if self.port is not None:
            text += ":%d" % self.port
        text += self.path
        if self.query:
            text += "?" + self.query_string
        if self.fragment:
            text += "#" + self.fragment
        return text
