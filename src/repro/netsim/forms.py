"""Form and payload encoders used by sites and trackers.

Sign-up forms submit as ``application/x-www-form-urlencoded`` (or multipart),
first parties and trackers POST JSON bodies, and some trackers ship
base64-wrapped JSON blobs (the ``data=`` pattern of bluecore/klaviyo/zendesk
in Table 2).  Decoders are provided for all of these because the leak
detector must scan payload bodies in every shape they appear.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Dict, List, Optional, Sequence, Tuple

from .url import decode_query, encode_query

FORM_URLENCODED = "application/x-www-form-urlencoded"
FORM_MULTIPART = "multipart/form-data"
CONTENT_JSON = "application/json"
CONTENT_TEXT = "text/plain"

_MULTIPART_BOUNDARY = "----reproformboundary7MA4YWxkTrZu0gW"


def encode_urlencoded(fields: Sequence[Tuple[str, str]]) -> bytes:
    """Encode fields as ``application/x-www-form-urlencoded``."""
    return encode_query(fields).encode("ascii")


def decode_urlencoded(body: bytes) -> List[Tuple[str, str]]:
    """Decode an urlencoded payload into ordered (key, value) pairs."""
    return decode_query(body.decode("utf-8", errors="replace"))


def encode_multipart(fields: Sequence[Tuple[str, str]]) -> Tuple[bytes, str]:
    """Encode fields as multipart/form-data; returns (body, content_type)."""
    lines: List[str] = []
    for name, value in fields:
        lines.append("--%s" % _MULTIPART_BOUNDARY)
        lines.append('Content-Disposition: form-data; name="%s"' % name)
        lines.append("")
        lines.append(value)
    lines.append("--%s--" % _MULTIPART_BOUNDARY)
    lines.append("")
    body = "\r\n".join(lines).encode("utf-8")
    content_type = '%s; boundary=%s' % (FORM_MULTIPART, _MULTIPART_BOUNDARY)
    return body, content_type


def decode_multipart(body: bytes, content_type: str) -> List[Tuple[str, str]]:
    """Decode a multipart/form-data payload (text fields only)."""
    _, _, boundary = content_type.partition("boundary=")
    boundary = boundary.strip()
    if not boundary:
        return []
    fields: List[Tuple[str, str]] = []
    text = body.decode("utf-8", errors="replace")
    for part in text.split("--" + boundary):
        part = part.strip("\r\n")
        if not part or part == "--":
            continue
        header_block, _, value = part.partition("\r\n\r\n")
        name = None
        for header_line in header_block.split("\r\n"):
            if header_line.lower().startswith("content-disposition"):
                for token in header_line.split(";"):
                    token = token.strip()
                    if token.startswith('name="') and token.endswith('"'):
                        name = token[len('name="'):-1]
        if name is not None:
            fields.append((name, value))
    return fields


def encode_json(payload: Dict[str, object]) -> bytes:
    """Deterministic JSON encoding (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_json(body: bytes) -> Optional[Dict[str, object]]:
    """Parse a JSON object payload; None when not a JSON object."""
    try:
        value = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return value if isinstance(value, dict) else None


def encode_base64_json(payload: Dict[str, object]) -> bytes:
    """The ``data=<base64(JSON)>`` wrapper seen in Table 2 trackers."""
    return base64.b64encode(encode_json(payload))


def decode_base64_json(blob: bytes) -> Optional[Dict[str, object]]:
    """Inverse of :func:`encode_base64_json`; None when not decodable."""
    try:
        raw = base64.b64decode(blob, validate=True)
    except (binascii.Error, ValueError):
        return None
    return decode_json(raw)


def flatten_json(value: object, prefix: str = "") -> List[Tuple[str, str]]:
    """Flatten nested JSON into dotted-key string pairs for scanning."""
    pairs: List[Tuple[str, str]] = []
    if isinstance(value, dict):
        for key, child in value.items():
            child_prefix = "%s.%s" % (prefix, key) if prefix else str(key)
            pairs.extend(flatten_json(child, child_prefix))
    elif isinstance(value, list):
        for index, child in enumerate(value):
            child_prefix = "%s[%d]" % (prefix, index)
            pairs.extend(flatten_json(child, child_prefix))
    else:
        pairs.append((prefix, "" if value is None else str(value)))
    return pairs
