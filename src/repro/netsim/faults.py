"""Deterministic fault injection for the synthetic network (§3.2).

The live web the paper crawled was flaky — 22 of 348 candidate sites were
unreachable and others failed mid-flow — yet the synthetic web is perfectly
reliable.  :class:`FaultPlan` restores that hostility on purpose: a seeded,
fully deterministic schedule of transient failures (connection timeouts,
resets, HTTP 429/5xx, slow responses, flaky DNS) and permanent ones (dead
origins) that the server wrapper (:class:`repro.websim.faults.FaultyServer`)
and resolver wrapper (:class:`repro.dnssim.flaky.FlakyResolver`) consult on
every exchange.

Determinism contract
--------------------
Every decision is a pure function of ``(seed, namespace, origin, n)`` where
``n`` is a per-origin request counter.  Two crawls with the same seed see
the identical fault sequence; a crawl checkpointed mid-run and resumed
continues the same sequence because the counters travel with the plan.

Convergence contract
--------------------
A single *streak* counter per registrable origin is shared by the DNS gate
and the HTTP gate, because one client request consults both.  At most
``max_consecutive`` faults are injected back-to-back per origin across the
two gates combined; once the cap is hit both gates force pass-through until
an HTTP exchange completes (only the HTTP gate — the end of a full
exchange — resets the streak).  A request therefore fails at most
``max_consecutive`` times before succeeding, so a client whose retry budget
exceeds ``max_consecutive`` and whose circuit-breaker threshold also
exceeds it is *guaranteed* to converge to the fault-free crawl's results
on any origin that is not dead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

# Fault kinds.
FAULT_TIMEOUT = "timeout"            # connect/read timeout
FAULT_RESET = "reset"                # connection reset by peer
FAULT_HTTP_429 = "http_429"          # rate limited
FAULT_HTTP_500 = "http_500"          # origin bug
FAULT_HTTP_503 = "http_503"          # origin overloaded
FAULT_SLOW = "slow_response"         # response slower than client patience
FAULT_DNS = "dns_timeout"            # resolver did not answer in time
FAULT_DEAD = "dead_origin"           # origin permanently gone

#: Transient kinds the plan draws from (uniformly, seeded).
TRANSIENT_FAULT_KINDS = (
    FAULT_TIMEOUT,
    FAULT_RESET,
    FAULT_HTTP_429,
    FAULT_HTTP_500,
    FAULT_HTTP_503,
    FAULT_SLOW,
)

#: HTTP statuses a resilient client treats as retryable.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})

_HTTP_FAULT_STATUS = {
    FAULT_HTTP_429: 429,
    FAULT_HTTP_500: 500,
    FAULT_HTTP_503: 503,
}


def http_fault_status(kind: str) -> Optional[int]:
    """The HTTP status an injected fault surfaces as (None = no response)."""
    return _HTTP_FAULT_STATUS.get(kind)


class NetworkError(Exception):
    """A transport-level failure: no HTTP response came back.

    From the client's point of view every transport failure looks
    transient — permanence can only be *inferred*, by repeated failure
    (which is what the crawl engine's circuit breaker does).
    """

    def __init__(self, origin: str, kind: str = FAULT_TIMEOUT,
                 latency: float = 0.0) -> None:
        super().__init__("%s talking to %s" % (kind, origin))
        self.origin = origin
        self.kind = kind
        self.latency = latency


class ConnectionTimeout(NetworkError):
    """The origin did not answer within the client's patience."""


class ConnectionReset(NetworkError):
    """The origin dropped the connection mid-exchange."""

    def __init__(self, origin: str, kind: str = FAULT_RESET,
                 latency: float = 0.0) -> None:
        super().__init__(origin, kind=kind, latency=latency)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (the ground-truth failure log)."""

    origin: str      # registrable domain (or DNS name) the fault hit
    kind: str        # one of the FAULT_* kinds
    sequence: int    # per-origin exchange counter at injection time


class FaultPlan:
    """Seeded, reproducible fault schedule over the synthetic network.

    ``transient_rate`` is the per-exchange probability of a transient
    fault; ``dns_rate`` the per-lookup probability of a resolver timeout
    (defaults to half the transient rate).  Dead origins come from
    ``dead_origins`` (explicit) plus a seeded ``dead_rate`` draw per
    origin.  All randomness is a hash of ``(seed, namespace, key, n)`` —
    there is no hidden RNG state beyond the per-origin counters, and those
    are pickled with the plan so a resumed crawl continues the stream.
    """

    def __init__(self, seed: int = 0, transient_rate: float = 0.1,
                 dead_rate: float = 0.0, dns_rate: Optional[float] = None,
                 max_consecutive: int = 2, slow_seconds: float = 45.0,
                 dead_origins: Iterable[str] = ()) -> None:
        if not 0.0 <= transient_rate < 1.0:
            raise ValueError("transient_rate must be in [0, 1)")
        if not 0.0 <= dead_rate < 1.0:
            raise ValueError("dead_rate must be in [0, 1)")
        if max_consecutive < 0:
            raise ValueError("max_consecutive must be >= 0")
        self.seed = seed
        self.transient_rate = transient_rate
        self.dead_rate = dead_rate
        self.dns_rate = (transient_rate / 2.0 if dns_rate is None
                         else dns_rate)
        self.max_consecutive = max_consecutive
        self.slow_seconds = slow_seconds
        self.dead_origins: FrozenSet[str] = frozenset(dead_origins)
        #: (namespace, key) -> exchanges seen so far.
        self._counters: Dict[Tuple[str, str], int] = {}
        #: origin -> consecutive faults injected so far, shared across the
        #: DNS and HTTP gates (the convergence contract's streak counter).
        self._streaks: Dict[str, int] = {}
        self.events: List[FaultEvent] = []

    # -- decisions -------------------------------------------------------

    def is_dead(self, origin: str) -> bool:
        """Whether ``origin`` is permanently gone under this plan."""
        if origin in self.dead_origins:
            return True
        if self.dead_rate <= 0.0:
            return False
        return self._ratio("dead", origin, 0) < self.dead_rate

    def next_fault(self, origin: str) -> Optional[str]:
        """Fault decision for the next HTTP exchange with ``origin``.

        The HTTP gate is the end of a complete exchange: any pass —
        forced or natural — resets the origin's fault streak.
        """
        seq = self._advance("http", origin)
        if self.is_dead(origin):
            self.events.append(FaultEvent(origin, FAULT_DEAD, seq))
            return FAULT_DEAD
        streak = self._streaks.get(origin, 0)
        if streak >= self.max_consecutive:
            # Forced pass-through: bounds every fault burst so retrying
            # clients provably converge (see module docstring).
            self._streaks[origin] = 0
            return None
        if (self.transient_rate > 0.0
                and self._ratio("http", origin, seq) < self.transient_rate):
            kind = TRANSIENT_FAULT_KINDS[
                int(self._ratio("http:kind", origin, seq)
                    * len(TRANSIENT_FAULT_KINDS))]
            self._streaks[origin] = streak + 1
            self.events.append(FaultEvent(origin, kind, seq))
            return kind
        self._streaks[origin] = 0
        return None

    def next_dns_fault(self, host: str,
                       origin: Optional[str] = None) -> Optional[str]:
        """Fault decision for the next DNS lookup of ``host``.

        ``origin`` (the host's registrable domain) keys the shared fault
        streak; a DNS pass does *not* reset the streak — the exchange is
        not complete until the HTTP gate answers — which is what keeps the
        two gates' bursts jointly bounded by ``max_consecutive``.
        """
        key = origin or host
        seq = self._advance("dns", key)
        streak = self._streaks.get(key, 0)
        if streak >= self.max_consecutive:
            return None
        if (self.dns_rate > 0.0
                and self._ratio("dns", key, seq) < self.dns_rate):
            self._streaks[key] = streak + 1
            self.events.append(FaultEvent(key, FAULT_DNS, seq))
            return FAULT_DNS
        return None

    # -- lifecycle -------------------------------------------------------

    def fresh_copy(self) -> "FaultPlan":
        """A new plan with this plan's configuration and zero history.

        Same seed, rates and dead origins; empty counters, streaks and
        event log.  This is how a parallel crawl hands each shard its own
        plan: fault decisions are a pure function of ``(seed, namespace,
        origin, n)``, so every shard that starts its counters from zero
        draws the identical per-origin fault stream no matter which
        worker process executes it (or in which order).
        """
        return FaultPlan(seed=self.seed, transient_rate=self.transient_rate,
                         dead_rate=self.dead_rate, dns_rate=self.dns_rate,
                         max_consecutive=self.max_consecutive,
                         slow_seconds=self.slow_seconds,
                         dead_origins=self.dead_origins)

    # -- observability ---------------------------------------------------

    def failure_log(self) -> Tuple[FaultEvent, ...]:
        """Every fault injected so far, in order."""
        return tuple(self.events)

    def fault_counts(self) -> Dict[str, int]:
        """{fault kind: injections so far}."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- internals -------------------------------------------------------

    def _advance(self, namespace: str, key: str) -> int:
        slot = (namespace, key)
        seq = self._counters.get(slot, 0)
        self._counters[slot] = seq + 1
        return seq

    def _ratio(self, namespace: str, key: str, n: int) -> float:
        """Deterministic uniform draw in [0, 1)."""
        material = "%d:%s:%s:%d" % (self.seed, namespace, key, n)
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:7], "big") / float(1 << 56)
