"""HTTP/1.1 wire format: serialize and parse raw messages.

The capture pipeline works with structured request/response objects; this
module renders them to (and re-reads them from) the actual bytes that
would cross a socket — useful for exporting reproducible traces, feeding
external HTTP tooling, and as the authoritative answer to "what exactly
did the browser transmit".

Implements the message framing of RFC 9112 for the subset the simulator
produces: request-line/status-line, header fields, and Content-Length
bodies (the simulator never emits chunked encoding).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .headers import Headers
from .messages import HttpRequest, HttpResponse
from .url import Url

_CRLF = b"\r\n"

_STATUS_REASONS = {
    200: "OK", 204: "No Content", 301: "Moved Permanently", 302: "Found",
    303: "See Other", 304: "Not Modified", 307: "Temporary Redirect",
    308: "Permanent Redirect", 400: "Bad Request", 401: "Unauthorized",
    403: "Forbidden", 404: "Not Found", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class WireFormatError(ValueError):
    """Raised for malformed raw HTTP messages."""


def _render_headers(headers: Headers, body: bytes,
                    host: Optional[str]) -> List[bytes]:
    lines: List[bytes] = []
    names_present = {name.lower() for name, _ in headers.items()}
    if host is not None and "host" not in names_present:
        lines.append(b"Host: " + host.encode("ascii"))
    for name, value in headers.items():
        lines.append(("%s: %s" % (name, value)).encode("latin-1"))
    if body and "content-length" not in names_present:
        lines.append(("Content-Length: %d" % len(body)).encode("ascii"))
    return lines


def serialize_request(request: HttpRequest) -> bytes:
    """Render a request as RFC 9112 bytes (origin-form target)."""
    url = request.url
    target = url.path
    if url.query:
        target += "?" + url.query_string
    request_line = ("%s %s HTTP/1.1" % (request.method,
                                        target)).encode("ascii")
    lines = [request_line]
    lines.extend(_render_headers(request.headers, request.body, url.host))
    return _CRLF.join(lines) + _CRLF * 2 + request.body


def serialize_response(response: HttpResponse) -> bytes:
    """Render a response as RFC 9112 bytes."""
    reason = _STATUS_REASONS.get(response.status, "Unknown")
    status_line = ("HTTP/1.1 %d %s" % (response.status,
                                       reason)).encode("ascii")
    lines = [status_line]
    lines.extend(_render_headers(response.headers, response.body, None))
    return _CRLF.join(lines) + _CRLF * 2 + response.body


def _split_message(raw: bytes) -> Tuple[bytes, Headers, bytes]:
    head, separator, remainder = raw.partition(_CRLF * 2)
    if not separator:
        raise WireFormatError("missing header/body separator")
    lines = head.split(_CRLF)
    start_line = lines[0]
    headers = Headers()
    for line in lines[1:]:
        if not line:
            continue
        name, colon, value = line.partition(b":")
        if not colon:
            raise WireFormatError("malformed header field: %r" % line)
        headers.add(name.decode("latin-1").strip(),
                    value.decode("latin-1").strip())
    length_text = headers.get("Content-Length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise WireFormatError("bad Content-Length: %r" % length_text)
        if length > len(remainder):
            raise WireFormatError("truncated body")
        body = remainder[:length]
    else:
        body = remainder
    return start_line, headers, body


def parse_request(raw: bytes, scheme: str = "https") -> HttpRequest:
    """Parse raw request bytes back into an :class:`HttpRequest`.

    The authority comes from the ``Host`` header (origin-form targets).
    """
    start_line, headers, body = _split_message(raw)
    parts = start_line.split(b" ")
    if len(parts) != 3 or not parts[2].startswith(b"HTTP/"):
        raise WireFormatError("malformed request line: %r" % start_line)
    method = parts[0].decode("ascii")
    target = parts[1].decode("ascii")
    host = headers.get("Host")
    if host is None:
        raise WireFormatError("missing Host header")
    headers.remove("Host")
    headers.remove("Content-Length")
    url = Url.parse("%s://%s%s" % (scheme, host, target))
    return HttpRequest(method=method, url=url, headers=headers, body=body)


def parse_response(raw: bytes) -> HttpResponse:
    """Parse raw response bytes back into an :class:`HttpResponse`."""
    start_line, headers, body = _split_message(raw)
    parts = start_line.split(b" ", 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        raise WireFormatError("malformed status line: %r" % start_line)
    try:
        status = int(parts[1])
    except ValueError:
        raise WireFormatError("bad status code: %r" % parts[1])
    headers.remove("Content-Length")
    return HttpResponse(status=status, headers=headers, body=body)
