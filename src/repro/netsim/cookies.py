"""RFC 6265 cookie model and cookie jar.

The jar implements the pieces of RFC 6265 that the study observes: domain
matching (host-only vs domain cookies), path matching, secure-only delivery,
expiry against a simulated clock, and the sort order for the ``Cookie``
header.  It also supports *partitioned* storage — keyed by the top-level
site — which is how Safari's ITP and Brave's Shields isolate third-party
state in the browser-countermeasure experiments (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .url import Url


@dataclass
class Cookie:
    """One cookie as stored by the user agent."""

    name: str
    value: str
    domain: str
    path: str = "/"
    secure: bool = False
    http_only: bool = False
    host_only: bool = True
    expires: Optional[float] = None  # simulated epoch seconds; None=session
    creation_time: float = 0.0

    def is_expired(self, now: float) -> bool:
        return self.expires is not None and self.expires <= now

    def domain_matches(self, host: str) -> bool:
        """RFC 6265 §5.1.3 domain-match, honouring host-only cookies."""
        host = host.lower()
        if self.host_only:
            return host == self.domain
        if host == self.domain:
            return True
        return host.endswith("." + self.domain)

    def path_matches(self, request_path: str) -> bool:
        """RFC 6265 §5.1.4 path-match."""
        cookie_path = self.path
        if request_path == cookie_path:
            return True
        if request_path.startswith(cookie_path):
            if cookie_path.endswith("/"):
                return True
            return request_path[len(cookie_path):].startswith("/")
        return False


def parse_set_cookie(header_value: str, request_url: Url,
                     now: float = 0.0) -> Optional[Cookie]:
    """Parse one ``Set-Cookie`` header in the context of ``request_url``.

    Returns ``None`` for unparseable or rejected cookies (e.g. a ``Domain``
    attribute that does not cover the request host).
    """
    parts = header_value.split(";")
    name, sep, value = parts[0].partition("=")
    name = name.strip()
    if not sep or not name:
        return None

    cookie = Cookie(name=name, value=value.strip(),
                    domain=request_url.host.lower(),
                    creation_time=now)
    for attribute in parts[1:]:
        attr_name, _, attr_value = attribute.partition("=")
        attr_name = attr_name.strip().lower()
        attr_value = attr_value.strip()
        if attr_name == "domain" and attr_value:
            domain = attr_value.lstrip(".").lower()
            host = request_url.host.lower()
            if host != domain and not host.endswith("." + domain):
                return None  # domain attribute does not cover the host
            cookie.domain = domain
            cookie.host_only = False
        elif attr_name == "path" and attr_value.startswith("/"):
            cookie.path = attr_value
        elif attr_name == "secure":
            cookie.secure = True
        elif attr_name == "httponly":
            cookie.http_only = True
        elif attr_name == "max-age":
            try:
                cookie.expires = now + int(attr_value)
            except ValueError:
                pass
        elif attr_name == "expires" and cookie.expires is None:
            # The simulator emits Max-Age; raw Expires dates are treated as
            # far-future persistent cookies rather than parsed as RFC 1123.
            cookie.expires = now + 365 * 24 * 3600.0
    if not cookie.path.startswith("/"):
        cookie.path = "/"
    return cookie


class CookieJar:
    """User-agent cookie store with optional per-site partitioning."""

    def __init__(self) -> None:
        # (partition, domain, path, name) -> Cookie
        self._cookies: Dict[Tuple[str, str, str, str], Cookie] = {}

    def set_cookie(self, cookie: Cookie, partition: str = "") -> None:
        """Store (or overwrite) a cookie, optionally in a partition."""
        key = (partition, cookie.domain, cookie.path, cookie.name)
        existing = self._cookies.get(key)
        if existing is not None:
            cookie.creation_time = existing.creation_time
        self._cookies[key] = cookie

    def set_from_header(self, header_value: str, request_url: Url,
                        now: float = 0.0, partition: str = "") -> Optional[Cookie]:
        """Parse a ``Set-Cookie`` header and store the result."""
        cookie = parse_set_cookie(header_value, request_url, now)
        if cookie is not None:
            self.set_cookie(cookie, partition=partition)
        return cookie

    def cookies_for(self, url: Url, now: float = 0.0,
                    partition: str = "") -> List[Cookie]:
        """Cookies to attach to a request for ``url`` (RFC 6265 §5.4 order)."""
        matches = []
        for (cookie_partition, _, _, _), cookie in self._cookies.items():
            if cookie_partition != partition:
                continue
            if cookie.is_expired(now):
                continue
            if not cookie.domain_matches(url.host):
                continue
            if not cookie.path_matches(url.path):
                continue
            if cookie.secure and url.scheme != "https":
                continue
            matches.append(cookie)
        matches.sort(key=lambda c: (-len(c.path), c.creation_time))
        return matches

    def cookie_header(self, url: Url, now: float = 0.0,
                      partition: str = "") -> str:
        """Render the ``Cookie`` request header value ('' if no cookies)."""
        return "; ".join("%s=%s" % (c.name, c.value)
                         for c in self.cookies_for(url, now, partition))

    def all_cookies(self) -> List[Cookie]:
        """Every stored cookie (for instrumentation snapshots)."""
        return list(self._cookies.values())

    def clear_expired(self, now: float) -> int:
        """Drop expired cookies; returns how many were removed."""
        expired = [key for key, cookie in self._cookies.items()
                   if cookie.is_expired(now)]
        for key in expired:
            del self._cookies[key]
        return len(expired)

    def clear(self) -> None:
        """Empty the jar (fresh browser profile)."""
        self._cookies.clear()

    def __len__(self) -> int:
        return len(self._cookies)
