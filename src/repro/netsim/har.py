"""HAR-style capture log.

The paper records, for every step of every authentication flow: HTTP
requests (URL, headers, payload body), HTTP responses (URL, headers) and
cookies.  :class:`CaptureLog` is that recording — the single artifact the
whole analysis pipeline (leak detection, tracking analysis, blocklist
evaluation) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from .cookies import Cookie
from .messages import HttpRequest, HttpResponse

# Stages of the paper's manual authentication flow (§3.2).
STAGE_HOMEPAGE = "homepage"
STAGE_SIGNUP = "signup"
STAGE_CONFIRM = "confirm"
STAGE_SIGNIN = "signin"
STAGE_RELOAD = "reload"
STAGE_SUBPAGE = "subpage"

FLOW_STAGES = (
    STAGE_HOMEPAGE,
    STAGE_SIGNUP,
    STAGE_CONFIRM,
    STAGE_SIGNIN,
    STAGE_RELOAD,
    STAGE_SUBPAGE,
)

#: Stages in which the user has just typed PII into a form ("authentication
#: flow" pages in the paper's terminology, as opposed to ordinary subpages).
AUTH_STAGES = frozenset({STAGE_SIGNUP, STAGE_CONFIRM, STAGE_SIGNIN,
                         STAGE_RELOAD})


@dataclass
class CaptureEntry:
    """One request/response exchange with its page context."""

    request: HttpRequest
    response: Optional[HttpResponse]
    site: str                      # registrable domain of the visited site
    stage: str                     # one of FLOW_STAGES
    page_url: str                  # document URL active when request fired
    blocked_by: Optional[str] = None  # protection that suppressed it, if any

    @property
    def was_blocked(self) -> bool:
        return self.blocked_by is not None


@dataclass
class CaptureLog:
    """Ordered log of all exchanges observed during a crawl."""

    entries: List[CaptureEntry] = field(default_factory=list)
    stored_cookies: List[Cookie] = field(default_factory=list)

    def record(self, entry: CaptureEntry) -> None:
        self.entries.append(entry)

    def snapshot_cookies(self, cookies: List[Cookie]) -> None:
        """Store a copy of the browser's cookie store (end-of-flow state)."""
        self.stored_cookies = list(cookies)

    def requests(self, include_blocked: bool = False) -> List[HttpRequest]:
        """All requests that actually left the browser (by default)."""
        return [e.request for e in self.entries
                if include_blocked or not e.was_blocked]

    def filter(self, predicate: Callable[[CaptureEntry], bool]) -> List[CaptureEntry]:
        return [e for e in self.entries if predicate(e)]

    def by_stage(self, stage: str) -> List[CaptureEntry]:
        return [e for e in self.entries if e.stage == stage]

    def by_site(self, site: str) -> List[CaptureEntry]:
        return [e for e in self.entries if e.site == site]

    def extend(self, other: "CaptureLog") -> None:
        """Merge another log (used when aggregating across sites)."""
        self.entries.extend(other.entries)
        self.stored_cookies.extend(other.stored_cookies)

    def __iter__(self) -> Iterator[CaptureEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
