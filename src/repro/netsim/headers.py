"""Case-insensitive ordered header multimap (RFC 9110 field semantics)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Headers:
    """HTTP header collection.

    Lookups are case-insensitive; insertion order and original casing are
    preserved for serialization, and repeated fields (``Set-Cookie``) are
    kept as separate entries.
    """

    def __init__(self, items: Iterable[Tuple[str, str]] = ()) -> None:
        self._items: List[Tuple[str, str]] = []
        for name, value in items:
            self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header field (repeats allowed)."""
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace all fields named ``name`` with a single value."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        """Drop all fields named ``name`` (case-insensitive)."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value for ``name``, or ``default``."""
        lowered = name.lower()
        for n, v in self._items:
            if n.lower() == lowered:
                return v
        return default

    def get_all(self, name: str) -> List[str]:
        """All values for ``name``, in insertion order."""
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def items(self) -> List[Tuple[str, str]]:
        """All (name, value) pairs in insertion order."""
        return list(self._items)

    def copy(self) -> "Headers":
        return Headers(self._items)

    def as_dict(self) -> Dict[str, str]:
        """Lower-cased first-value-wins view (convenience for tests)."""
        out: Dict[str, str] = {}
        for name, value in self._items:
            out.setdefault(name.lower(), value)
        return out

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        return "Headers(%r)" % (self._items,)
