"""HTTP request/response models as captured by the instrumented browser.

These are observation-side objects: every field the paper inspects when
detecting PII leakage is first-class — the full URL, the ``Referer`` header,
the ``Cookie`` header, the payload body, plus the *request initiator chain*
(used when matching blocklists in §7.2) and the resource type (used when
applying ``$script``/``$image`` filter options).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .headers import Headers
from .url import Url

#: Resource types mirroring the Chromium/ABP taxonomy used by blocklists.
RESOURCE_DOCUMENT = "document"
RESOURCE_SUBDOCUMENT = "subdocument"
RESOURCE_SCRIPT = "script"
RESOURCE_IMAGE = "image"
RESOURCE_STYLESHEET = "stylesheet"
RESOURCE_XHR = "xmlhttprequest"
RESOURCE_PING = "ping"

RESOURCE_TYPES = (
    RESOURCE_DOCUMENT,
    RESOURCE_SUBDOCUMENT,
    RESOURCE_SCRIPT,
    RESOURCE_IMAGE,
    RESOURCE_STYLESHEET,
    RESOURCE_XHR,
    RESOURCE_PING,
)


@dataclass
class HttpRequest:
    """One outgoing HTTP request."""

    method: str
    url: Url
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    resource_type: str = RESOURCE_DOCUMENT
    #: URLs that caused this request, outermost first (document, script, ...).
    initiator_chain: Tuple[Url, ...] = ()
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if self.resource_type not in RESOURCE_TYPES:
            raise ValueError("unknown resource type: %r" % self.resource_type)

    @property
    def referer(self) -> Optional[str]:
        return self.headers.get("Referer")

    @property
    def cookie_header(self) -> Optional[str]:
        return self.headers.get("Cookie")

    def body_text(self) -> str:
        """Payload decoded as UTF-8 (lossy) for substring scanning."""
        return self.body.decode("utf-8", errors="replace")


@dataclass
class HttpResponse:
    """One incoming HTTP response."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""

    @property
    def set_cookie_headers(self) -> List[str]:
        return self.headers.get_all("Set-Cookie")

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("Location")

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308)
