"""Published paper numbers (calibration targets + comparison columns)."""

from . import paper

__all__ = ["paper"]
