"""Dataset-release exporter.

The paper publishes its dataset — "the lists of PII leakage URLs,
first-party senders, and third-party receivers" — at
github.com/fukuda-lab/PII_leakage.  This module produces the same release
artifacts from a :class:`~repro.core.pipeline.StudyResult`:

* ``senders.csv``      — sender domain, receiver count, channels, policy class
* ``receivers.csv``    — receiver domain, sender count, trackid params,
  cross-site / persistent flags
* ``leak_urls.csv``    — one row per leaking request observation
* ``summary.json``     — headline statistics

Everything is plain CSV/JSON, written with :func:`write_release`.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Dict, List

from ..core.pipeline import StudyResult
from ..tracking import TrackIdAnalyzer


def senders_csv(result: StudyResult) -> str:
    """The first-party senders table."""
    analysis = result.analysis
    policy = {verdict.site: verdict.disclosure_class
              for verdict in result.policy_verdicts}
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["sender", "receivers", "channels", "encodings",
                     "pii_types", "policy_class"])
    for sender in analysis.senders():
        relationships = analysis.relationships_of_sender(sender)
        receivers = sorted({rel.receiver for rel in relationships})
        channels = sorted({c for rel in relationships
                           for c in rel.channels})
        encodings = sorted({e for rel in relationships
                            for e in rel.encodings})
        pii_types = sorted({p for rel in relationships
                            for p in rel.pii_types})
        writer.writerow([sender, len(receivers), "|".join(channels),
                         "|".join(encodings), "|".join(pii_types),
                         policy.get(sender, "")])
    return buffer.getvalue()


def receivers_csv(result: StudyResult) -> str:
    """The third-party receivers table."""
    analysis = result.analysis
    persistence = result.persistence
    trackids = TrackIdAnalyzer(result.events)
    params: Dict[str, List[str]] = {}
    for parameter in trackids.parameters():
        params.setdefault(parameter.receiver, []).append(
            parameter.parameter)
    cross_site = set(persistence.cross_site_receivers)
    persistent = set(persistence.persistent_receivers)

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["receiver", "senders", "trackid_params",
                     "cross_site", "persistent"])
    degrees = analysis.receiver_degree()
    for receiver in analysis.receivers():
        writer.writerow([
            receiver, degrees.get(receiver, 0),
            "|".join(sorted(set(params.get(receiver, [])))),
            "yes" if receiver in cross_site else "no",
            "yes" if receiver in persistent else "no"])
    return buffer.getvalue()


def leak_urls_csv(result: StudyResult) -> str:
    """One row per leak observation (the paper's PII-leakage URL list)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["sender", "receiver", "stage", "channel", "encoding",
                     "pii_type", "parameter", "url"])
    for event in result.events:
        writer.writerow([event.sender, event.receiver, event.stage,
                         event.channel, event.encoding_label,
                         event.pii_type, event.parameter or "", event.url])
    return buffer.getvalue()


def summary_json(result: StudyResult, total_sites: int = 307) -> str:
    """Headline statistics as JSON."""
    stats = result.analysis.headline(total_sites=total_sites)
    stats["leaking_requests"] = result.leaking_request_count
    stats["persistent_providers"] = result.persistence.provider_count
    stats["cross_site_receivers"] = len(
        result.persistence.cross_site_receivers)
    stats["policy_disclosures"] = result.table3_counts
    stats["marketing_mail"] = result.marketing_mail_counts()
    return json.dumps(stats, indent=2, sort_keys=True)


def write_release(result: StudyResult, directory: str,
                  total_sites: int = 307) -> List[str]:
    """Write the full dataset release; returns the created file paths."""
    base = pathlib.Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    artifacts = {
        "senders.csv": senders_csv(result),
        "receivers.csv": receivers_csv(result),
        "leak_urls.csv": leak_urls_csv(result),
        "summary.json": summary_json(result, total_sites=total_sites),
    }
    written = []
    for name, content in artifacts.items():
        path = base / name
        path.write_text(content)
        written.append(str(path))
    return written
