"""Published numbers from the paper, used two ways:

* as **calibration targets** for the synthetic shopping population — the
  study's published dataset statistics define how many sites leak what to
  whom, and the generator constructs a concrete web realizing them;
* as the **comparison column** in EXPERIMENTS.md and the benchmark output
  ("paper vs. measured").

Nothing here ever flows directly into a result table: every measured number
is produced by crawling the synthetic web and running the real detection
pipeline over the captured traffic.
"""

from __future__ import annotations

from typing import Dict, Tuple

# --------------------------------------------------------------------------
# §3.2 data acquisition population.
# --------------------------------------------------------------------------

TRANCO_SHOPPING_SITES = 404
UNREACHABLE_SITES = 22
NO_AUTH_SITES = 19
SIGNUP_BLOCKED_SITES = 56           # total blocked
SIGNUP_BLOCKED_PHONE = 47
SIGNUP_BLOCKED_IDENTITY = 6
SIGNUP_BLOCKED_REGION = 3
SUCCESSFUL_FLOWS = 307
EMAIL_CONFIRMATION_SITES = 68
BOT_DETECTION_SITES = 43

# --------------------------------------------------------------------------
# §4.2 headline results.
# --------------------------------------------------------------------------

LEAKING_SENDERS = 130
LEAK_RECEIVERS = 100
LEAKING_REQUESTS = 1522
PCT_SITES_LEAKING = 42.3
MEAN_RECEIVERS_PER_SENDER = 2.97
PCT_SENDERS_WITH_3PLUS_RECEIVERS = 46.15
MAX_RECEIVERS_PER_SENDER = 16
MAX_RECEIVERS_SENDER_DOMAIN = "loccitane.com"
SINGLE_APPEARANCE_RECEIVERS = 58
CROSS_SITE_ID_RECEIVERS = 34        # same ID from more than one sender
PERSISTENT_TRACKING_PROVIDERS = 20  # ID also present on subpages

# Figure 2: facebook.com receives PII from 60% of the 130 senders.
FACEBOOK_SENDER_PCT = 60.0
FACEBOOK_SENDERS = 78

# --------------------------------------------------------------------------
# Table 1a: breakdown by method — (senders, receivers).
# --------------------------------------------------------------------------

TABLE1A: Dict[str, Tuple[int, int]] = {
    "referer": (3, 7),
    "uri": (118, 78),
    "payload": (43, 17),
    "cookie": (5, 1),
    "combined": (27, 8),
}

# --------------------------------------------------------------------------
# Table 1b: breakdown by encoding/hashing — (senders, receivers).
# --------------------------------------------------------------------------

TABLE1B: Dict[str, Tuple[int, int]] = {
    "plaintext": (42, 56),
    "base64": (19, 20),
    "md5": (35, 24),
    "sha1": (9, 6),
    "sha256": (91, 30),
    "sha256 of md5": (2, 1),
    "combined": (21, 14),
}

# --------------------------------------------------------------------------
# Table 1c: breakdown by PII type — (senders, receivers).
# --------------------------------------------------------------------------

TABLE1C: Dict[str, Tuple[int, int]] = {
    "email": (116, 94),
    "username": (1, 1),
    "email,username": (3, 6),
    "email,name": (29, 12),
}

# --------------------------------------------------------------------------
# Table 2: the twenty persistent tracking providers.
# Rows: receiver -> list of (senders, methods, encoding, trackid params).
# --------------------------------------------------------------------------

TABLE2: Dict[str, Tuple[Tuple[int, str, str, str], ...]] = {
    "facebook.com": (
        (72, "uri/payload", "sha256", "udff[em]/ud[em]"),
        (2, "uri", "md5", "ud[em]"),
    ),
    "criteo.com": (
        (26, "uri", "md5", "p0/p1"),
        (4, "uri", "sha256", "p0"),
        (5, "uri", "plaintext", "p0/p1"),
        (2, "uri", "sha256 of md5", "p0/p1"),
    ),
    "pinterest.com": (
        (25, "uri", "sha256", "pd"),
        (8, "uri", "md5", "pd"),
    ),
    "snapchat.com": (
        (18, "uri/payload", "sha256", "u_hem"),
        (2, "payload", "md5", "u_hem"),
    ),
    "cquotient.com": ((7, "uri", "sha256", "emailId"),),
    "bluecore.com": ((5, "payload", "base64", "data"),),
    "klaviyo.com": ((4, "uri", "base64", "data"),),
    "oracleinfinity.io": ((4, "uri", "sha256", "email_hash/ora*"),),
    "rlcdn.com": ((4, "uri", "sha1", "s"),),
    "omtrdc.net": ((3, "uri", "sha256", "v*"),),   # "adobe_cname"
    "castle.io": ((2, "uri", "plaintext", "up"),),
    "custora.com": ((2, "uri/cookie", "sha1", "uid/_custrack1_identified*"),),
    "dotomi.com": ((2, "uri", "sha256", "dtm_email_hash"),),
    "inside-graph.com": ((2, "payload", "plaintext", "md"),),
    "krxd.net": ((2, "uri", "sha256", "_kua_email_sha256"),),
    "pxf.io": ((2, "payload", "sha1", "custemail"),),
    "taboola.com": ((2, "uri", "sha256", "eflp"),),
    "thebrighttag.com": ((2, "uri", "sha256", "_cb_bt_data"),),
    "yahoo.com": ((2, "uri", "sha256", "he"),),
    "zendesk.com": ((2, "uri", "base64", "data"),),
}


def table2_sender_count(receiver: str) -> int:
    """Total Table 2 senders for a provider."""
    return sum(row[0] for row in TABLE2[receiver])


# --------------------------------------------------------------------------
# §4.2.3 e-mail observations.
# --------------------------------------------------------------------------

MARKETING_INBOX_EMAILS = 2172
MARKETING_SPAM_EMAILS = 141
THIRD_PARTY_EMAILS = 0

# --------------------------------------------------------------------------
# Table 3: privacy-policy disclosures of the 130 senders.
# --------------------------------------------------------------------------

TABLE3: Dict[str, int] = {
    "disclose_not_specific": 102,
    "disclose_specific": 9,
    "no_description": 15,
    "explicitly_not_shared": 4,
}

# --------------------------------------------------------------------------
# §7.1 browser countermeasures.
# --------------------------------------------------------------------------

BRAVE_SENDER_REDUCTION_PCT = 93.1
BRAVE_RECEIVER_REDUCTION_PCT = 92.0
BRAVE_REMAINING_RECEIVERS = 8
BRAVE_CAPTCHA_FAILURE_SITE = "nykaa.com"
BRAVE_MISSED = ("aliyun.com", "cartsync.io", "gravatar.com",
                "herokuapp.com", "intercom.io", "lmcdn.ru",
                "okta-emea.com", "zendesk.com")

# --------------------------------------------------------------------------
# Table 4: blocklist coverage — {list: {method: (blocked, pct)}}.
# --------------------------------------------------------------------------

TABLE4_SENDERS: Dict[str, Dict[str, Tuple[int, float]]] = {
    "easylist": {
        "referer": (0, 0.0), "uri": (1, 0.8), "payload": (0, 0.0),
        "cookie": (0, 0.0), "combined": (0, 0.0), "total": (1, 0.8),
    },
    "easyprivacy": {
        "referer": (2, 66.7), "uri": (89, 75.4), "payload": (38, 88.4),
        "cookie": (5, 100.0), "combined": (24, 88.9), "total": (95, 73.1),
    },
    "combined": {
        "referer": (2, 66.7), "uri": (97, 82.2), "payload": (38, 88.4),
        "cookie": (5, 100.0), "combined": (24, 88.9), "total": (102, 78.5),
    },
}

TABLE4_RECEIVERS: Dict[str, Dict[str, Tuple[int, float]]] = {
    "easylist": {
        "referer": (1, 14.3), "uri": (7, 9.0), "payload": (0, 0.0),
        "cookie": (0, 0.0), "combined": (0, 0.0), "total": (8, 8.0),
    },
    "easyprivacy": {
        "referer": (6, 85.7), "uri": (51, 65.4), "payload": (12, 70.6),
        "cookie": (1, 100.0), "combined": (6, 75.0), "total": (65, 65.0),
    },
    "combined": {
        "referer": (6, 85.7), "uri": (58, 74.4), "payload": (12, 70.6),
        "cookie": (1, 100.0), "combined": (6, 75.0), "total": (72, 72.0),
    },
}

BLOCKLIST_MISSED_PROVIDERS = ("custora.com", "taboola.com", "zendesk.com")
