"""Command-line interface.

Exposes the main experiments as subcommands::

    repro-study study                # headline + Tables 1-3 + Figure 2
    repro-study study --workers 4    # same study, parallel sharded crawl
    repro-study study --trace t.jsonl  # same study, with structured tracing
    repro-study browsers             # §7.1 browser comparison
    repro-study blocklists           # §7.2 Table 4
    repro-study crowd --seed 21      # crowdsourced expansion demo
    repro-study tokens               # candidate-token set statistics
    repro-study scan URL [URL...]    # scan URLs for the persona's PII

All experiments run fully offline against the synthetic web.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import __version__
from .core import CandidateTokenSet, LeakDetector, Study
from .core.persona import DEFAULT_PERSONA


def _fault_plan(args: argparse.Namespace):
    """Build the seeded FaultPlan requested by --faults/--seed (or None)."""
    if getattr(args, "faults", None) is None:
        return None
    from .netsim.faults import FaultPlan
    try:
        return FaultPlan(seed=args.seed, transient_rate=args.faults)
    except ValueError as exc:
        raise SystemExit("repro-study: error: --faults: %s" % exc)


def _study_for_args(args: argparse.Namespace, study_config) -> Study:
    """The calibrated study the CLI flags describe.

    Applies ``--workers``/``--shards``; ``--trace`` enables
    observability on the config so the crawl and the analysis record
    into one recorder; ``--progress``/``--progress-log`` attach a live
    :class:`~repro.obs.ProgressAggregator` heartbeat sink.
    """
    config = study_config.replace(
        workers=getattr(args, "workers", 1) or 1,
        num_shards=getattr(args, "shards", None))
    if getattr(args, "trace", None):
        config = config.with_observability()
    progress = _progress_sink(args)
    if progress is not None:
        config = config.replace(progress=progress)
    if getattr(args, "resources", False):
        if progress is None:
            raise SystemExit(
                "repro-study: error: --resources rides the heartbeat "
                "channel; pass --progress and/or --progress-log too")
        config = config.replace(resources=True)
    config = _apply_supervision_args(args, config)
    return Study.calibrated(config)


def _apply_supervision_args(args: argparse.Namespace, config):
    """Fold --chaos and the supervision knobs into the study config."""
    chaos_specs = getattr(args, "chaos", None)
    if chaos_specs:
        from .crawler import ChaosError, parse_chaos_plan
        if config.workers < 2:
            raise SystemExit(
                "repro-study: error: --chaos requires --workers >= 2 "
                "(faults kill or hang worker processes; with one worker "
                "that process is the study itself)")
        try:
            config = config.replace(chaos=parse_chaos_plan(chaos_specs))
        except ChaosError as exc:
            raise SystemExit("repro-study: error: %s" % exc)
    knobs = {}
    deadline = getattr(args, "watchdog_deadline", None)
    if deadline is not None:
        knobs["heartbeat_deadline"] = deadline
    retries = getattr(args, "max_shard_retries", None)
    if retries is not None:
        knobs["max_retries"] = retries
    drain = getattr(args, "drain_timeout", None)
    if drain is not None:
        knobs["drain_timeout"] = drain
    if knobs:
        from .crawler import SupervisorConfig
        try:
            config = config.replace(supervision=SupervisorConfig(**knobs))
        except ValueError as exc:
            raise SystemExit("repro-study: error: %s" % exc)
    return config


def _progress_sink(args: argparse.Namespace):
    """The ProgressAggregator ``--progress``/``--progress-log`` ask for.

    Status lines render to stderr (stdout stays reserved for the
    study's tables); the JSONL sink is the machine-readable twin.
    Returns ``None`` when neither flag was given.
    """
    render = getattr(args, "progress", False)
    log_path = getattr(args, "progress_log", None)
    if not render and not log_path:
        return None
    from .obs import ProgressAggregator
    try:
        return ProgressAggregator(stream=sys.stderr if render else None,
                                  jsonl_path=log_path)
    except OSError as exc:
        raise SystemExit("repro-study: error: --progress-log: %s" % exc)


def _crawl_study(args: argparse.Namespace, study_config):
    """The shared resilient-crawl front half of the crawling subcommands.

    Builds the calibrated :class:`Study` and runs its single crawl
    entry point — :meth:`Study.crawl` dispatches on ``--workers`` and
    honors ``--checkpoint``/``--resume`` for both engines.  Returns
    ``(study, outcome)`` so callers analyze with the same study (and
    recorder) that crawled.
    """
    from .crawler import CheckpointError
    study = _study_for_args(args, study_config)
    resume = getattr(args, "resume", None)
    if resume:
        if study.config.workers > 1:
            print("Resuming %d-worker crawl from %s/..."
                  % (study.config.workers, resume), file=sys.stderr)
        else:
            print("Resuming crawl from %s..." % resume, file=sys.stderr)
    try:
        outcome = study.crawl(checkpoint=getattr(args, "checkpoint", None),
                              resume=resume)
    except CheckpointError as exc:
        raise SystemExit("repro-study: error: --resume: %s" % exc)
    except OSError as exc:
        if resume:
            raise SystemExit("repro-study: error: --resume: %s" % exc)
        raise
    finally:
        progress = study.config.progress
        if progress is not None and hasattr(progress, "close"):
            progress.close()    # flush the --progress-log JSONL sink
    return study, outcome


def _require_complete(args: argparse.Namespace, outcome) -> None:
    """Refuse to analyze a partial crawl; exit with the resume recipe.

    A SIGINT/SIGTERM'd supervised crawl drains, checkpoints, and
    returns an outcome marked incomplete; analysis over the salvaged
    shards would produce tables that look authoritative but are not.
    Exit 130 (interrupted) with the exact resume invocation instead.
    Quarantined poison shards exit 1 — re-running will not fix those.
    """
    if outcome.complete:
        return
    supervision = outcome.supervision
    interrupted = supervision is not None and supervision.interrupted
    missing = ", ".join(str(index) for index in outcome.incomplete_shards)
    target = getattr(args, "resume", None) or getattr(args, "checkpoint",
                                                      None)
    if interrupted:
        hint = (" ; resume with: repro-study %s --workers %d --resume %s"
                % (args.command, getattr(args, "workers", 1), target)
                if target else
                " (no --checkpoint directory was set, so the progress "
                "was not persisted)")
        print("repro-study: crawl interrupted before completion; "
              "shard(s) %s unfinished%s" % (missing, hint),
              file=sys.stderr)
        raise SystemExit(130)
    print("repro-study: crawl incomplete: shard(s) %s quarantined after "
          "repeated worker failures (see the study manifest%s)"
          % (missing, " in %s" % target if target else ""),
          file=sys.stderr)
    raise SystemExit(1)


def _write_trace(args: argparse.Namespace, study: Study) -> None:
    """Write the study recorder to ``--trace`` (JSONL) if requested."""
    path = getattr(args, "trace", None)
    recorder = study.config.recorder
    if not path or recorder is None:
        return
    from .obs import write_trace
    try:
        write_trace(recorder, path)
    except OSError as exc:
        raise SystemExit("repro-study: error: --trace: %s" % exc)
    print("trace: %d spans -> %s (summarize with: repro-trace summarize %s)"
          % (recorder.span_count(), path, path), file=sys.stderr)


def _cmd_study(args: argparse.Namespace) -> int:
    from .core import StudyConfig
    from .reporting import (
        render_crawl_health,
        render_figure2,
        render_headline,
        render_table1,
        render_table2,
        render_table3,
    )
    plan = _fault_plan(args)
    print("Running the calibrated study (about 20 seconds)...",
          file=sys.stderr)
    study, outcome = _crawl_study(args, StudyConfig(fault_plan=plan))
    _require_complete(args, outcome)
    dataset, plan = outcome.dataset, outcome.fault_plan
    result = study.analyze(dataset)
    print(render_headline(result.analysis, total_sites=307,
                          leaking_requests=result.leaking_request_count))
    print()
    print(render_table1(result.analysis, compare=not args.no_compare))
    print()
    print(render_figure2(result.analysis, compare=not args.no_compare))
    print()
    print(render_table2(result.persistence, compare=not args.no_compare))
    print()
    print(render_table3(result.table3_counts, compare=not args.no_compare))
    if plan is not None:
        print()
        print(render_crawl_health(dataset, plan))
    _write_trace(args, study)
    return 0


def _cmd_browsers(args: argparse.Namespace) -> int:
    from .protection import BrowserCountermeasureEvaluator
    from .websim.shopping import build_study_population
    spec = build_study_population()
    print("Re-crawling the 130 leaking senders under every browser "
          "profile (about a minute)...", file=sys.stderr)
    study = BrowserCountermeasureEvaluator(
        spec.population, spec.leaking_domains).run()
    print("baseline: %d senders / %d receivers"
          % (study.baseline.senders, study.baseline.receivers))
    for name, result in study.results.items():
        sender_pct, receiver_pct = study.reductions()[name]
        print("%-14s %4d senders (-%5.1f%%)  %4d receivers (-%5.1f%%)  %s"
              % (name, result.senders, sender_pct, result.receivers,
                 receiver_pct, ",".join(result.failed_signups)))
    return 0


def _cmd_blocklists(args: argparse.Namespace) -> int:
    from .blocklist import BlocklistEvaluator
    from .crawler import StudyCrawler
    from .reporting import render_table4
    from .websim.shopping import build_study_population
    spec = build_study_population()
    print("Crawling and matching against EasyList/EasyPrivacy...",
          file=sys.stderr)
    dataset = StudyCrawler(spec.population,
                           fault_plan=_fault_plan(args)).crawl()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=spec.catalog,
                            resolver=spec.population.resolver())
    report = BlocklistEvaluator(detector).evaluate(dataset.log)
    print(render_table4(report, compare=not args.no_compare))
    return 0


def _cmd_crowd(args: argparse.Namespace) -> int:
    from .crowd import CrowdStudy, make_panel
    from .websim.generator import GeneratorConfig, generate_population
    population = generate_population(
        seed=args.seed,
        config=GeneratorConfig(n_sites=args.sites, n_trackers=8,
                               leak_probability=0.6))
    panel = make_panel(list(population.sites), args.contributors,
                       overlap=args.overlap)
    single = CrowdStudy(population, panel[:1]).run()
    merged = CrowdStudy(population, panel).run()
    print("single vantage : %3d receivers, %2d cross-site"
          % (len(single.analysis.receivers()),
             len(single.persistence_report.cross_site_receivers)))
    print("%d contributors: %3d receivers, %2d cross-site"
          % (args.contributors, len(merged.analysis.receivers()),
             len(merged.persistence_report.cross_site_receivers)))
    confirmed = merged.receivers_confirmed_by(2)
    print("receivers confirmed by >= 2 contributors: %d" % len(confirmed))
    return 0


def _cmd_selection(args: argparse.Namespace) -> int:
    """Print the §3.2 data-acquisition funnel."""
    from .websim.shopping import build_study_population
    from .websim.tranco import select_study_sites
    spec = build_study_population()
    selected = select_study_sites(spec.tranco, spec.categories)
    sites = spec.population.sites
    with_auth = [d for d in selected if sites[d].auth.has_auth]
    reachable = [d for d in selected if not sites[d].auth.unreachable]
    crawlable = [d for d in selected if sites[d].is_crawlable]
    print("Tranco top-10k universe:          %6d sites" % len(spec.tranco))
    print("shopping category (FortiGuard):   %6d sites" % len(selected))
    print("  with authentication flows:      %6d (%.1f%%)"
          % (len(with_auth), 100.0 * len(with_auth) / len(selected)))
    print("  reachable:                      %6d" % len(reachable))
    print("  sign-up possible (crawlable):   %6d" % len(crawlable))
    print("  leaking PII to third parties:   %6d"
          % len(spec.leaking_domains))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run the study and write the dataset release + HAR + tables."""
    import pathlib

    from .core import StudyConfig
    from .datasets.export import write_release
    from .netsim import to_har_json
    from .reporting import (
        render_crawl_health,
        render_figure2,
        render_headline,
        render_table1,
        render_table2,
        render_table3,
    )
    plan = _fault_plan(args)
    print("Running the calibrated study...", file=sys.stderr)
    study, outcome = _crawl_study(args, StudyConfig(fault_plan=plan))
    _require_complete(args, outcome)
    dataset, plan = outcome.dataset, outcome.fault_plan
    result = study.analyze(dataset)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = write_release(result, str(out_dir))
    sections = [
        render_headline(result.analysis, total_sites=307,
                        leaking_requests=result.leaking_request_count),
        render_table1(result.analysis),
        render_figure2(result.analysis),
        render_table2(result.persistence),
        render_table3(result.table3_counts),
    ]
    if plan is not None:
        sections.append(render_crawl_health(dataset, plan))
    tables = "\n\n".join(sections)
    tables_path = out_dir / "tables.txt"
    tables_path.write_text(tables + "\n")
    written.append(str(tables_path))
    if args.har:
        har_path = out_dir / "crawl.har"
        har_path.write_text(to_har_json(result.dataset.log))
        written.append(str(har_path))
    for path in written:
        print(path)
    _write_trace(args, study)
    return 0


def _cmd_tokens(args: argparse.Namespace) -> int:
    from .reporting import redact_email
    tokens = CandidateTokenSet(DEFAULT_PERSONA)
    email = (DEFAULT_PERSONA.email if args.show_pii
             else redact_email(DEFAULT_PERSONA.email))
    print("persona email: %s" % email)  # statan: ignore[PII201] -- redacted unless the user passed --show-pii explicitly
    print("candidate tokens: %d" % tokens.token_count)
    by_depth: dict = {}
    for token in tokens.tokens():
        for origin in tokens.origins_of(token):
            by_depth[len(origin.chain)] = by_depth.get(len(origin.chain),
                                                       0) + 1
    for depth in sorted(by_depth):
        label = "plaintext" if depth == 0 else "depth %d" % depth
        print("  %-10s %6d token origins" % (label, by_depth[depth]))
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from .reporting import redact_spans
    tokens = CandidateTokenSet(DEFAULT_PERSONA)
    exit_code = 0
    for url in args.urls:
        matches = tokens.scan(url)
        if not matches:
            print("%s: clean" % url)
            continue
        exit_code = 1
        if args.show_pii:
            shown = url
        else:
            # The URL embeds the leaked tokens (possibly plaintext PII)
            # — mask exactly the matched spans before echoing it.
            shown = redact_spans(url, [(m.start, m.end) for m in matches])
        seen = []
        for match in matches:
            if match.payload in seen:
                continue
            seen.append(match.payload)
            print("%s: LEAK pii=%s encoding=%s"
                  % (shown, match.payload.pii_type,
                     match.payload.encoding_label))
    return exit_code


def _add_fault_args(sub: argparse.ArgumentParser) -> None:
    """--seed/--faults: seeded fault injection for the resilient crawl."""
    sub.add_argument("--faults", type=float, default=None, metavar="RATE",
                     help="inject seeded transient network faults at this "
                          "per-exchange rate (e.g. 0.1) and crawl "
                          "resiliently")
    sub.add_argument("--seed", type=int, default=0,
                     help="fault-plan seed (default: 0); the same seed "
                          "reproduces the identical failure log")


def _add_resume_args(sub: argparse.ArgumentParser) -> None:
    """--checkpoint/--resume: interruptible-crawl persistence."""
    sub.add_argument("--checkpoint", metavar="PATH",
                     help="save a resumable crawl checkpoint to PATH after "
                          "every site (with --workers > 1: a directory of "
                          "per-shard checkpoints)")
    sub.add_argument("--resume", metavar="PATH",
                     help="resume a crawl from a checkpoint written by "
                          "--checkpoint (fault plan travels with it; with "
                          "--workers > 1: the checkpoint directory)")


def _add_parallel_args(sub: argparse.ArgumentParser) -> None:
    """--workers/--shards: the parallel sharded crawl engine."""
    sub.add_argument("--workers", type=int, default=1, metavar="N",
                     help="crawl with N worker processes (default: 1, the "
                          "serial engine); the merged dataset fingerprint "
                          "is identical for every N")
    sub.add_argument("--shards", type=int, default=None, metavar="M",
                     help="partition the site list into M deterministic "
                          "shards (default: automatic, independent of "
                          "--workers)")


def _add_supervision_args(sub: argparse.ArgumentParser) -> None:
    """--chaos + supervised-executor knobs (workers > 1 only)."""
    sub.add_argument("--chaos", action="append", metavar="SPEC",
                     default=None,
                     help="inject a deterministic worker fault (repeatable; "
                          "requires --workers >= 2): "
                          "KIND:SHARD[:AFTER_SITES[:ATTEMPTS]] with KIND "
                          "kill|hang|slow, e.g. 'kill:0' or 'hang:2:1'; "
                          "the supervisor must retry or quarantine the "
                          "shard, and the merged fingerprint is unchanged")
    sub.add_argument("--watchdog-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="declare a worker lost after this many seconds "
                          "without a heartbeat (default: 60)")
    sub.add_argument("--max-shard-retries", type=int, default=None,
                     metavar="N",
                     help="retry a lost shard at most N times before "
                          "quarantining it (default: 2)")
    sub.add_argument("--drain-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="on SIGINT/SIGTERM, give in-flight shards this "
                          "long to finish before killing them (default: "
                          "10; per-site checkpoints survive either way)")


def _add_trace_arg(sub: argparse.ArgumentParser) -> None:
    """--trace: structured-tracing export (repro.obs)."""
    sub.add_argument("--trace", metavar="PATH",
                     help="record structured spans/metrics for the whole "
                          "pipeline and write them to PATH as JSONL "
                          "(inspect with `repro-trace summarize PATH`, "
                          "compare runs with `repro-trace diff A B`); "
                          "tracing never changes the dataset fingerprint")


def _add_progress_args(sub: argparse.ArgumentParser) -> None:
    """--progress/--progress-log: live per-site crawl heartbeats."""
    sub.add_argument("--progress", action="store_true",
                     help="render a live line-oriented progress stream "
                          "(sites crawled, failures, retries, "
                          "circuit-breaker quarantines) to stderr; "
                          "never changes the dataset fingerprint")
    sub.add_argument("--progress-log", metavar="PATH",
                     help="append every crawl heartbeat to PATH as JSONL "
                          "(the machine-readable twin of --progress)")
    sub.add_argument("--resources", action="store_true",
                     help="attach per-shard CPU/RSS/GC samples to every "
                          "heartbeat (lands in --progress-log and the "
                          "study manifest; requires --progress or "
                          "--progress-log; never changes the dataset "
                          "fingerprint)")


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape a running repro-serve's /metrics endpoint.

    One-shot by default (prints the raw Prometheus exposition, pipeable
    into promtool or a file); ``--live`` renders a one-line ops ticker
    from the scraped series every ``--interval`` seconds instead.
    """
    import time
    import urllib.error
    import urllib.request

    from .obs.exposition import parse_exposition
    from .obs.runtime import render_ticker

    url = args.url.rstrip("/") + "/metrics"

    def scrape() -> str:
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.read().decode("utf-8")
        except (OSError, ValueError, urllib.error.URLError) as exc:
            raise SystemExit("repro-study: error: cannot scrape %s: %s"
                             % (url, exc))

    if not args.live:
        sys.stdout.write(scrape())
        return 0
    iterations = 0
    try:
        while True:
            print(render_ticker(parse_exposition(scrape())), flush=True)
            iterations += 1
            if args.count and iterations >= args.count:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _add_show_pii_arg(sub: argparse.ArgumentParser) -> None:
    """--show-pii: print persona PII / leaked tokens unredacted."""
    sub.add_argument("--show-pii", action="store_true",
                     help="print PII values unredacted (default: mask "
                          "them; see repro.reporting.redact)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="CoNEXT'21 PII-leakage tracking study, offline.")
    parser.add_argument("--version", action="version",
                        version="repro %s" % __version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    study = subparsers.add_parser("study", help="full §3-§6 pipeline")
    study.add_argument("--no-compare", action="store_true",
                       help="omit the paper comparison columns")
    _add_fault_args(study)
    _add_resume_args(study)
    _add_parallel_args(study)
    _add_supervision_args(study)
    _add_trace_arg(study)
    _add_progress_args(study)
    study.set_defaults(func=_cmd_study)

    browsers = subparsers.add_parser("browsers",
                                     help="§7.1 browser comparison")
    browsers.set_defaults(func=_cmd_browsers)

    blocklists = subparsers.add_parser("blocklists", help="§7.2 Table 4")
    blocklists.add_argument("--no-compare", action="store_true")
    _add_fault_args(blocklists)
    blocklists.set_defaults(func=_cmd_blocklists)

    crowd = subparsers.add_parser("crowd",
                                  help="crowdsourced expansion demo")
    crowd.add_argument("--seed", type=int, default=21)
    crowd.add_argument("--sites", type=int, default=24)
    crowd.add_argument("--contributors", type=int, default=3)
    crowd.add_argument("--overlap", type=float, default=0.2)
    crowd.set_defaults(func=_cmd_crowd)

    selection = subparsers.add_parser(
        "selection", help="§3.2 data-acquisition funnel")
    selection.set_defaults(func=_cmd_selection)

    report = subparsers.add_parser(
        "report", help="write the dataset release (CSV/JSON [+HAR])")
    report.add_argument("--out", default="release",
                        help="output directory (default: ./release)")
    report.add_argument("--har", action="store_true",
                        help="also export the full crawl as HAR 1.2")
    _add_fault_args(report)
    _add_resume_args(report)
    _add_parallel_args(report)
    _add_supervision_args(report)
    _add_trace_arg(report)
    _add_progress_args(report)
    report.set_defaults(func=_cmd_report)

    tokens = subparsers.add_parser("tokens",
                                   help="candidate-token statistics")
    _add_show_pii_arg(tokens)
    tokens.set_defaults(func=_cmd_tokens)

    scan = subparsers.add_parser(
        "scan", help="scan URLs for the persona's PII tokens")
    scan.add_argument("urls", nargs="+")
    _add_show_pii_arg(scan)
    scan.set_defaults(func=_cmd_scan)

    metrics = subparsers.add_parser(
        "metrics", help="scrape a running repro-serve's /metrics")
    metrics.add_argument("--url", default="http://127.0.0.1:8642",
                         metavar="URL",
                         help="service base URL (default: "
                              "http://127.0.0.1:8642)")
    metrics.add_argument("--live", action="store_true",
                         help="render a one-line ops ticker repeatedly "
                              "instead of dumping the raw exposition")
    metrics.add_argument("--interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="--live refresh period (default: 2.0)")
    metrics.add_argument("--count", type=int, default=0, metavar="N",
                         help="--live: stop after N ticks (default: "
                              "run until interrupted)")
    metrics.set_defaults(func=_cmd_metrics)

    serve = subparsers.add_parser(
        "serve", help="run the study-as-a-service HTTP API "
                      "(alias for repro-serve)")
    # Imported here so `import repro.cli` stays service-free.
    from .service.cli import add_serve_arguments, serve as _cmd_serve
    add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
