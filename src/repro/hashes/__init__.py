"""Hash, encoding and checksum corpus for PII obfuscation detection.

Implements every transform in the paper's appendix ("Supported hash
functions and encodings for leak detection") behind a uniform registry, so
both the simulated tracker scripts and the leak detector derive obfuscated
PII tokens from the exact same functions.
"""

from .registry import (
    KIND_CHECKSUM,
    KIND_COMPRESSION,
    KIND_ENCODING,
    KIND_HASH,
    OBSERVED_CHAIN_ALPHABET,
    Transform,
    all_transforms,
    apply_chain,
    chain_label,
    clear_chain_cache,
    get,
    has,
    transform_names,
)

__all__ = [
    "KIND_CHECKSUM",
    "KIND_COMPRESSION",
    "KIND_ENCODING",
    "KIND_HASH",
    "OBSERVED_CHAIN_ALPHABET",
    "Transform",
    "all_transforms",
    "apply_chain",
    "chain_label",
    "clear_chain_cache",
    "get",
    "has",
    "transform_names",
]
