"""Uniform registry of the paper's appendix transforms.

The paper pre-computes a candidate token set by applying "all supported
encodings, hashes, and checksums" to each PII value, chaining up to three
layers deep.  This module gives every transform a canonical
``bytes -> ASCII bytes`` form so chains compose the way trackers compose
them in practice (e.g. ``sha256`` of the *hex digest string* of ``md5``):

* hashes and checksums render as lowercase hex digests;
* encodings render as their encoded text;
* compressions render as base64 of the compressed stream (the only
  URL-safe way trackers ship compressed identifiers).

Use :func:`apply_chain` to reproduce an obfuscation such as
``apply_chain("foo@mydom.com", ["md5", "sha256"])`` — the paper's
"SHA256 of MD5" form.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from . import crc, encoders, md2, md4, ripemd, snefru, whirlpool

KIND_HASH = "hash"
KIND_ENCODING = "encoding"
KIND_CHECKSUM = "checksum"
KIND_COMPRESSION = "compression"


@dataclass(frozen=True)
class Transform:
    """A named obfuscation step.

    ``apply`` maps raw bytes to canonical ASCII bytes.  ``faithful`` is False
    for algorithms whose published constant tables had to be substituted
    (see :mod:`repro.hashes.md2` and :mod:`repro.hashes.snefru`).
    """

    name: str
    kind: str
    apply: Callable[[bytes], bytes] = field(repr=False)
    faithful: bool = True

    def apply_text(self, text: str) -> str:
        """Apply the transform to a text value, returning text."""
        return self.apply(text.encode("utf-8")).decode("ascii")


def _hex_hash(func: Callable[[bytes], "hashlib._Hash"]) -> Callable[[bytes], bytes]:
    def apply(data: bytes) -> bytes:
        return func(data).hexdigest().encode("ascii")
    return apply


def _hex_raw(func: Callable[[bytes], bytes]) -> Callable[[bytes], bytes]:
    def apply(data: bytes) -> bytes:
        return func(data).hex().encode("ascii")
    return apply


def _hex_int(func: Callable[[bytes], str]) -> Callable[[bytes], bytes]:
    def apply(data: bytes) -> bytes:
        return func(data).encode("ascii")
    return apply


def _compressed(func: Callable[[bytes], bytes]) -> Callable[[bytes], bytes]:
    def apply(data: bytes) -> bytes:
        return encoders.base64_encode(func(data))
    return apply


def _build_registry() -> Dict[str, Transform]:
    transforms: List[Transform] = [
        # -- encodings -----------------------------------------------------
        Transform("base16", KIND_ENCODING, encoders.base16_encode),
        Transform("base32", KIND_ENCODING, encoders.base32_encode),
        Transform("base32hex", KIND_ENCODING, encoders.base32hex_encode),
        Transform("base58", KIND_ENCODING, encoders.base58_encode),
        Transform("base64", KIND_ENCODING, encoders.base64_encode),
        Transform("base64url", KIND_ENCODING, encoders.base64url_encode),
        Transform("rot13", KIND_ENCODING, encoders.rot13_encode),
        # -- compressions --------------------------------------------------
        Transform("gz", KIND_COMPRESSION, _compressed(encoders.gzip_encode)),
        Transform("bzip2", KIND_COMPRESSION, _compressed(encoders.bzip2_encode)),
        Transform("deflate", KIND_COMPRESSION,
                  _compressed(encoders.deflate_encode)),
        # -- hashes --------------------------------------------------------
        Transform("md2", KIND_HASH, _hex_raw(md2.md2_digest), faithful=False),
        Transform("md4", KIND_HASH, _hex_raw(md4.md4_digest)),
        Transform("md5", KIND_HASH, _hex_hash(hashlib.md5)),
        Transform("sha1", KIND_HASH, _hex_hash(hashlib.sha1)),
        Transform("sha224", KIND_HASH, _hex_hash(hashlib.sha224)),
        Transform("sha256", KIND_HASH, _hex_hash(hashlib.sha256)),
        Transform("sha384", KIND_HASH, _hex_hash(hashlib.sha384)),
        Transform("sha512", KIND_HASH, _hex_hash(hashlib.sha512)),
        Transform("sha3_224", KIND_HASH, _hex_hash(hashlib.sha3_224)),
        Transform("sha3_256", KIND_HASH, _hex_hash(hashlib.sha3_256)),
        Transform("sha3_384", KIND_HASH, _hex_hash(hashlib.sha3_384)),
        Transform("sha3_512", KIND_HASH, _hex_hash(hashlib.sha3_512)),
        Transform("blake2b", KIND_HASH, _hex_hash(hashlib.blake2b)),
        Transform("ripemd128", KIND_HASH, _hex_raw(ripemd.ripemd128_digest)),
        Transform("ripemd160", KIND_HASH, _hex_raw(ripemd.ripemd160_digest)),
        Transform("ripemd256", KIND_HASH, _hex_raw(ripemd.ripemd256_digest)),
        Transform("ripemd320", KIND_HASH, _hex_raw(ripemd.ripemd320_digest)),
        Transform("whirlpool", KIND_HASH, _hex_raw(whirlpool.whirlpool_digest)),
        Transform("snefru128", KIND_HASH, _hex_raw(snefru.snefru128_digest),
                  faithful=False),
        Transform("snefru256", KIND_HASH, _hex_raw(snefru.snefru256_digest),
                  faithful=False),
        # -- checksums -----------------------------------------------------
        Transform("crc16", KIND_CHECKSUM, _hex_int(crc.crc16_hexdigest)),
        Transform("crc32", KIND_CHECKSUM, _hex_int(crc.crc32_hexdigest)),
        Transform("adler32", KIND_CHECKSUM, _hex_int(crc.adler32_hexdigest)),
    ]
    return {transform.name: transform for transform in transforms}


_REGISTRY = _build_registry()

#: Transforms that the paper actually observed in the wild (Table 1b and
#: Table 2): the default alphabet for chain enumeration beyond depth 1.
OBSERVED_CHAIN_ALPHABET: Tuple[str, ...] = ("base64", "md5", "sha1", "sha256")


def get(name: str) -> Transform:
    """Look up a transform by name.  Raises ``KeyError`` for unknown names."""
    return _REGISTRY[name]


def has(name: str) -> bool:
    """Whether ``name`` is a registered transform."""
    return name in _REGISTRY


def all_transforms() -> List[Transform]:
    """All registered transforms in deterministic (insertion) order."""
    return list(_REGISTRY.values())


def transform_names(kinds: Iterable[str] = ()) -> List[str]:
    """Names of registered transforms, optionally filtered by kind."""
    wanted = set(kinds)
    return [t.name for t in _REGISTRY.values()
            if not wanted or t.kind in wanted]


@lru_cache(maxsize=65536)
def _apply_chain_cached(value: str, chain: Tuple[str, ...]) -> str:
    current = value
    for name in chain:
        current = _REGISTRY[name].apply_text(current)
    return current


def apply_chain(value: str, chain: Sequence[str]) -> str:
    """Apply a sequence of transform names to a text value.

    An empty chain returns the value unchanged (the paper's "plaintext"
    form).  Each step consumes the previous step's canonical text output,
    which is how multi-layer obfuscations like "SHA256 of MD5" compose.

    Results are memoised on ``(value, chain)``: every transform is a pure
    function, and the detector re-derives the same few hundred
    ``surface form × chain`` combinations for every request it inspects,
    so the cache turns the per-request cost into a dict hit.
    """
    return _apply_chain_cached(value, tuple(chain))


def clear_chain_cache() -> None:
    """Drop the :func:`apply_chain` memo.

    For benchmarks (cold-path timing) and memory-sensitive callers; the
    cache is a pure-function memo, so clearing it never changes results.
    """
    _apply_chain_cached.cache_clear()


def chain_label(chain: Sequence[str]) -> str:
    """Human-readable label for a chain, matching the paper's notation."""
    if not chain:
        return "plaintext"
    if len(chain) == 1:
        return chain[0]
    # The paper writes "SHA256 of MD5" for sha256(md5(x)).
    return " of ".join(reversed([name for name in chain]))
