"""Pure-Python Whirlpool (ISO/IEC 10118-3).

Whirlpool appears in the paper's appendix of supported leak-detection hash
functions but is absent from ``hashlib``.  This implementation follows the
Barreto-Rijmen specification:

* the 8-bit S-box is generated from the published 4-bit mini-boxes ``E``,
  ``E^-1`` and ``R`` rather than embedded as a 256-entry constant;
* the diffusion layer multiplies state rows by the circulant matrix
  ``cir(1, 1, 4, 1, 8, 5, 2, 9)`` over GF(2^8) with the reduction polynomial
  ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D);
* the hash construction is Miyaguchi-Preneel over the 512-bit block cipher W.

Verified against the official ISO test vectors in the test suite.
"""

from __future__ import annotations

from typing import List

_ROUNDS = 10
_POLY = 0x11D

# The 4-bit "E" mini-box (exponential) and the pseudo-random "R" mini-box
# from the Whirlpool reference specification.
_E_BOX = (0x1, 0xB, 0x9, 0xC, 0xD, 0x6, 0xF, 0x3,
          0xE, 0x8, 0x7, 0x4, 0xA, 0x2, 0x5, 0x0)
_R_BOX = (0x7, 0xC, 0xB, 0xD, 0xE, 0x4, 0x9, 0xF,
          0x6, 0x3, 0x8, 0xA, 0x2, 0x5, 0x1, 0x0)
_E_INV = tuple(_E_BOX.index(i) for i in range(16))

# Circulant row of the MixRows matrix.
_CIR = (0x01, 0x01, 0x04, 0x01, 0x08, 0x05, 0x02, 0x09)


def _build_sbox() -> bytes:
    sbox = bytearray(256)
    for x in range(256):
        upper = _E_BOX[x >> 4]
        lower = _E_INV[x & 0xF]
        mixed = _R_BOX[upper ^ lower]
        sbox[x] = (_E_BOX[upper ^ mixed] << 4) | _E_INV[lower ^ mixed]
    return bytes(sbox)


_SBOX = _build_sbox()


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= _POLY
        b >>= 1
    return result & 0xFF


def _build_mul_tables() -> dict:
    tables = {}
    for weight in set(_CIR):
        tables[weight] = bytes(_gf_mul(weight, x) for x in range(256))
    return tables


_MUL = _build_mul_tables()

# Round constants: rc[r] is a 64-byte state with the first row taken from
# consecutive S-box entries and the remaining rows zero.
_RC = [
    bytes(_SBOX[8 * (r - 1) + j] for j in range(8)) + bytes(56)
    for r in range(1, _ROUNDS + 1)
]


def _sub_bytes(state: bytearray) -> bytearray:
    return bytearray(_SBOX[b] for b in state)


def _shift_columns(state: bytearray) -> bytearray:
    # Column j is cyclically shifted downwards by j positions.
    out = bytearray(64)
    for i in range(8):
        for j in range(8):
            out[((i + j) % 8) * 8 + j] = state[i * 8 + j]
    return out


def _mix_rows(state: bytearray) -> bytearray:
    out = bytearray(64)
    for i in range(8):
        row = state[i * 8:(i + 1) * 8]
        for j in range(8):
            acc = 0
            for k in range(8):
                acc ^= _MUL[_CIR[(j - k) % 8]][row[k]]
            out[i * 8 + j] = acc
    return out


def _add_key(state: bytearray, key: bytes) -> bytearray:
    return bytearray(s ^ k for s, k in zip(state, key))


def _w_cipher(key_bytes: bytes, block: bytes) -> bytes:
    key = bytearray(key_bytes)
    state = _add_key(bytearray(block), key)
    for round_index in range(_ROUNDS):
        key = _add_key(_mix_rows(_shift_columns(_sub_bytes(key))),
                       _RC[round_index])
        state = _add_key(_mix_rows(_shift_columns(_sub_bytes(state))), key)
    return bytes(state)


def _pad(message: bytes) -> bytes:
    bit_length = len(message) * 8
    padded = message + b"\x80"
    padded += b"\x00" * ((32 - len(padded) % 64) % 64)
    return padded + bit_length.to_bytes(32, "big")


def whirlpool_digest(message: bytes) -> bytes:
    """Return the 64-byte Whirlpool digest of ``message``."""
    state = bytes(64)
    padded = _pad(message)
    for offset in range(0, len(padded), 64):
        block = padded[offset:offset + 64]
        encrypted = _w_cipher(state, block)
        # Miyaguchi-Preneel chaining.
        state = bytes(e ^ b ^ s for e, b, s in zip(encrypted, block, state))
    return state


def whirlpool_hexdigest(message: bytes) -> str:
    """Return the Whirlpool digest of ``message`` as lowercase hex."""
    return whirlpool_digest(message).hex()


def _self_test() -> List[str]:
    """Return digests for the ISO vector inputs (used by the test suite)."""
    return [whirlpool_hexdigest(b""), whirlpool_hexdigest(b"abc")]
