"""Pure-Python RIPEMD-128/160/256/320.

The paper's leak-detection appendix lists all four RIPEMD variants among the
supported hash functions.  ``hashlib`` only exposes RIPEMD-160 (and only when
OpenSSL's legacy provider is enabled), so the whole family is implemented
here from the Dobbertin/Bosselaers/Preneel specification.

RIPEMD-160 is verified against the published test vectors (and, when
available, cross-checked against ``hashlib``'s OpenSSL implementation in the
test suite).  RIPEMD-128 shares the first four rounds of the same schedule;
RIPEMD-256 and RIPEMD-320 are the standard double-width variants that omit
the final cross-line combination and instead swap one chaining word between
the parallel lines after every round.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

_MASK = 0xFFFFFFFF

# Message word selection for the left line, rounds 1..5.
_R_LEFT = (
    (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
    (7, 4, 13, 1, 10, 6, 15, 3, 12, 0, 9, 5, 2, 14, 11, 8),
    (3, 10, 14, 4, 9, 15, 8, 1, 2, 7, 0, 6, 13, 11, 5, 12),
    (1, 9, 11, 10, 0, 8, 12, 4, 13, 3, 7, 15, 14, 5, 6, 2),
    (4, 0, 5, 9, 7, 12, 2, 10, 14, 1, 3, 8, 11, 6, 15, 13),
)

# Message word selection for the right line, rounds 1..5.
_R_RIGHT = (
    (5, 14, 7, 0, 9, 2, 11, 4, 13, 6, 15, 8, 1, 10, 3, 12),
    (6, 11, 3, 7, 0, 13, 5, 10, 14, 15, 8, 12, 4, 9, 1, 2),
    (15, 5, 1, 3, 7, 14, 6, 9, 11, 8, 12, 2, 10, 0, 4, 13),
    (8, 6, 4, 1, 3, 11, 15, 0, 5, 12, 2, 13, 9, 7, 10, 14),
    (12, 15, 10, 4, 1, 5, 8, 7, 6, 2, 13, 14, 0, 3, 9, 11),
)

# Rotation amounts, left line, rounds 1..5.
_S_LEFT = (
    (11, 14, 15, 12, 5, 8, 7, 9, 11, 13, 14, 15, 6, 7, 9, 8),
    (7, 6, 8, 13, 11, 9, 7, 15, 7, 12, 15, 9, 11, 7, 13, 12),
    (11, 13, 6, 7, 14, 9, 13, 15, 14, 8, 13, 6, 5, 12, 7, 5),
    (11, 12, 14, 15, 14, 15, 9, 8, 9, 14, 5, 6, 8, 6, 5, 12),
    (9, 15, 5, 11, 6, 8, 13, 12, 5, 12, 13, 14, 11, 8, 5, 6),
)

# Rotation amounts, right line, rounds 1..5.
_S_RIGHT = (
    (8, 9, 9, 11, 13, 15, 15, 5, 7, 7, 8, 11, 14, 14, 12, 6),
    (9, 13, 15, 7, 12, 8, 9, 11, 7, 7, 12, 7, 6, 15, 13, 11),
    (9, 7, 15, 11, 8, 6, 6, 14, 12, 13, 5, 14, 13, 13, 7, 5),
    (15, 5, 8, 11, 14, 14, 6, 14, 6, 9, 12, 9, 12, 5, 15, 8),
    (8, 5, 12, 9, 12, 5, 14, 6, 8, 13, 6, 5, 15, 13, 11, 11),
)

_K_LEFT_160 = (0x00000000, 0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xA953FD4E)
_K_RIGHT_160 = (0x50A28BE6, 0x5C4DD124, 0x6D703EF3, 0x7A6D76E9, 0x00000000)

_K_LEFT_128 = (0x00000000, 0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC)
_K_RIGHT_128 = (0x50A28BE6, 0x5C4DD124, 0x6D703EF3, 0x00000000)


def _rol(value: int, amount: int) -> int:
    value &= _MASK
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def _f1(x: int, y: int, z: int) -> int:
    return x ^ y ^ z


def _f2(x: int, y: int, z: int) -> int:
    return (x & y) | (~x & z)


def _f3(x: int, y: int, z: int) -> int:
    return (x | ~y) ^ z


def _f4(x: int, y: int, z: int) -> int:
    return (x & z) | (y & ~z)


def _f5(x: int, y: int, z: int) -> int:
    return x ^ (y | ~z)


_FUNCS = (_f1, _f2, _f3, _f4, _f5)


def _pad(message: bytes) -> bytes:
    bit_length = (len(message) * 8) & 0xFFFFFFFFFFFFFFFF
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    return padded + struct.pack("<Q", bit_length)


def _round5_line(
    words: Sequence[int],
    state: Sequence[int],
    r_table: Sequence[Sequence[int]],
    s_table: Sequence[Sequence[int]],
    k_table: Sequence[int],
    func_order: Sequence[int],
) -> Tuple[int, int, int, int, int]:
    a, b, c, d, e = state
    for round_index in range(5):
        func = _FUNCS[func_order[round_index]]
        k = k_table[round_index]
        selection = r_table[round_index]
        shifts = s_table[round_index]
        for j in range(16):
            t = (a + func(b, c, d) + words[selection[j]] + k) & _MASK
            t = (_rol(t, shifts[j]) + e) & _MASK
            a, b, c, d, e = e, t, b, _rol(c, 10), d
    return a, b, c, d, e


def _round4_line(
    words: Sequence[int],
    state: Sequence[int],
    r_table: Sequence[Sequence[int]],
    s_table: Sequence[Sequence[int]],
    k_table: Sequence[int],
    func_order: Sequence[int],
) -> Tuple[int, int, int, int]:
    a, b, c, d = state
    for round_index in range(4):
        func = _FUNCS[func_order[round_index]]
        k = k_table[round_index]
        selection = r_table[round_index]
        shifts = s_table[round_index]
        for j in range(16):
            t = (a + func(b, c, d) + words[selection[j]] + k) & _MASK
            t = _rol(t, shifts[j])
            a, b, c, d = d, t, b, c
    return a, b, c, d


def _compress_160(state: List[int], block: bytes) -> List[int]:
    words = struct.unpack("<16I", block)
    left = _round5_line(words, state, _R_LEFT, _S_LEFT, _K_LEFT_160, (0, 1, 2, 3, 4))
    right = _round5_line(words, state, _R_RIGHT, _S_RIGHT, _K_RIGHT_160, (4, 3, 2, 1, 0))
    combined = [
        (state[1] + left[2] + right[3]) & _MASK,
        (state[2] + left[3] + right[4]) & _MASK,
        (state[3] + left[4] + right[0]) & _MASK,
        (state[4] + left[0] + right[1]) & _MASK,
        (state[0] + left[1] + right[2]) & _MASK,
    ]
    return combined


def _compress_128(state: List[int], block: bytes) -> List[int]:
    words = struct.unpack("<16I", block)
    left = _round4_line(words, state, _R_LEFT, _S_LEFT, _K_LEFT_128, (0, 1, 2, 3))
    right = _round4_line(words, state, _R_RIGHT, _S_RIGHT, _K_RIGHT_128, (3, 2, 1, 0))
    return [
        (state[1] + left[2] + right[3]) & _MASK,
        (state[2] + left[3] + right[0]) & _MASK,
        (state[3] + left[0] + right[1]) & _MASK,
        (state[0] + left[1] + right[2]) & _MASK,
    ]


def _compress_256(state: List[int], block: bytes) -> List[int]:
    words = struct.unpack("<16I", block)
    left = list(state[:4])
    right = list(state[4:])
    # Word swapped between the lines after each of the four rounds.
    swap_positions = (0, 1, 2, 3)
    for round_index in range(4):
        left = list(
            _round4_line_single(words, left, _R_LEFT[round_index],
                                _S_LEFT[round_index], _K_LEFT_128[round_index],
                                _FUNCS[round_index]))
        right = list(
            _round4_line_single(words, right, _R_RIGHT[round_index],
                                _S_RIGHT[round_index], _K_RIGHT_128[round_index],
                                _FUNCS[3 - round_index]))
        pos = swap_positions[round_index]
        left[pos], right[pos] = right[pos], left[pos]
    return [
        (state[0] + left[0]) & _MASK,
        (state[1] + left[1]) & _MASK,
        (state[2] + left[2]) & _MASK,
        (state[3] + left[3]) & _MASK,
        (state[4] + right[0]) & _MASK,
        (state[5] + right[1]) & _MASK,
        (state[6] + right[2]) & _MASK,
        (state[7] + right[3]) & _MASK,
    ]


def _round4_line_single(words, state, selection, shifts, k, func):
    a, b, c, d = state
    for j in range(16):
        t = (a + func(b, c, d) + words[selection[j]] + k) & _MASK
        t = _rol(t, shifts[j])
        a, b, c, d = d, t, b, c
    return a, b, c, d


def _round5_line_single(words, state, selection, shifts, k, func):
    a, b, c, d, e = state
    for j in range(16):
        t = (a + func(b, c, d) + words[selection[j]] + k) & _MASK
        t = (_rol(t, shifts[j]) + e) & _MASK
        a, b, c, d, e = e, t, b, _rol(c, 10), d
    return a, b, c, d, e


def _compress_320(state: List[int], block: bytes) -> List[int]:
    words = struct.unpack("<16I", block)
    left = list(state[:5])
    right = list(state[5:])
    # Word swapped between the lines after each of the five rounds
    # (B, D, A, C, E in the reference specification).
    swap_positions = (1, 3, 0, 2, 4)
    for round_index in range(5):
        left = list(
            _round5_line_single(words, left, _R_LEFT[round_index],
                                _S_LEFT[round_index], _K_LEFT_160[round_index],
                                _FUNCS[round_index]))
        right = list(
            _round5_line_single(words, right, _R_RIGHT[round_index],
                                _S_RIGHT[round_index], _K_RIGHT_160[round_index],
                                _FUNCS[4 - round_index]))
        pos = swap_positions[round_index]
        left[pos], right[pos] = right[pos], left[pos]
    return [(state[i] + (left + right)[i]) & _MASK for i in range(10)]


_INIT_128 = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
_INIT_160 = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
_INIT_256 = [
    0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
    0x76543210, 0xFEDCBA98, 0x89ABCDEF, 0x01234567,
]
_INIT_320 = [
    0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0,
    0x76543210, 0xFEDCBA98, 0x89ABCDEF, 0x01234567, 0x3C2D1E0F,
]


def _run(message: bytes, init: List[int], compress) -> bytes:
    state = list(init)
    padded = _pad(message)
    for offset in range(0, len(padded), 64):
        state = compress(state, padded[offset:offset + 64])
    return struct.pack("<%dI" % len(state), *state)


def ripemd128_digest(message: bytes) -> bytes:
    """Return the 16-byte RIPEMD-128 digest of ``message``."""
    return _run(message, _INIT_128, _compress_128)


def ripemd160_digest(message: bytes) -> bytes:
    """Return the 20-byte RIPEMD-160 digest of ``message``."""
    return _run(message, _INIT_160, _compress_160)


def ripemd256_digest(message: bytes) -> bytes:
    """Return the 32-byte RIPEMD-256 digest of ``message``."""
    return _run(message, _INIT_256, _compress_256)


def ripemd320_digest(message: bytes) -> bytes:
    """Return the 40-byte RIPEMD-320 digest of ``message``."""
    return _run(message, _INIT_320, _compress_320)


def ripemd128_hexdigest(message: bytes) -> str:
    """RIPEMD-128 digest as lowercase hex."""
    return ripemd128_digest(message).hex()


def ripemd160_hexdigest(message: bytes) -> str:
    """RIPEMD-160 digest as lowercase hex."""
    return ripemd160_digest(message).hex()


def ripemd256_hexdigest(message: bytes) -> str:
    """RIPEMD-256 digest as lowercase hex."""
    return ripemd256_digest(message).hex()


def ripemd320_hexdigest(message: bytes) -> str:
    """RIPEMD-320 digest as lowercase hex."""
    return ripemd320_digest(message).hex()
