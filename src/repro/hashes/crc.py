"""Checksums used as PII obfuscators: CRC-16, CRC-32 and Adler-32.

The paper's appendix lists ``crc16``, ``crc32`` and ``adler32`` among the
transforms applied when building the candidate token set (trackers have been
observed using checksums as cheap identifier derivations).  CRC-32 and
Adler-32 delegate to :mod:`zlib`; CRC-16 variants are implemented here.
"""

from __future__ import annotations

import zlib


def _reflect(value: int, width: int) -> int:
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def _build_crc16_table(poly: int, reflected: bool) -> tuple:
    table = []
    for byte in range(256):
        if reflected:
            crc = byte
            for _ in range(8):
                crc = (crc >> 1) ^ (_reflect(poly, 16)) if crc & 1 else crc >> 1
        else:
            crc = byte << 8
            for _ in range(8):
                crc = ((crc << 1) ^ poly) if crc & 0x8000 else crc << 1
            crc &= 0xFFFF
        table.append(crc & 0xFFFF)
    return tuple(table)


_ARC_TABLE = _build_crc16_table(0x8005, reflected=True)
_CCITT_TABLE = _build_crc16_table(0x1021, reflected=False)


def crc16_arc(data: bytes) -> int:
    """CRC-16/ARC (poly 0x8005, reflected, init 0) — the common "CRC-16"."""
    crc = 0
    for byte in data:
        crc = (crc >> 8) ^ _ARC_TABLE[(crc ^ byte) & 0xFF]
    return crc & 0xFFFF


def crc16_ccitt(data: bytes) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, non-reflected, init 0xFFFF)."""
    crc = 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CCITT_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc & 0xFFFF


def crc32(data: bytes) -> int:
    """Standard zlib CRC-32."""
    return zlib.crc32(data) & 0xFFFFFFFF


def adler32(data: bytes) -> int:
    """Standard zlib Adler-32."""
    return zlib.adler32(data) & 0xFFFFFFFF


def crc16_hexdigest(data: bytes) -> str:
    """CRC-16/ARC rendered as four lowercase hex digits."""
    return "%04x" % crc16_arc(data)


def crc32_hexdigest(data: bytes) -> str:
    """CRC-32 rendered as eight lowercase hex digits."""
    return "%08x" % crc32(data)


def adler32_hexdigest(data: bytes) -> str:
    """Adler-32 rendered as eight lowercase hex digits."""
    return "%08x" % adler32(data)
