"""Pure-Python MD4 (RFC 1320).

MD4 is cryptographically broken but still appears in the wild as a PII
obfuscation primitive, which is why the paper's appendix lists it among the
supported hash functions for leak detection.  ``hashlib`` no longer ships MD4
on modern OpenSSL builds, so this module provides a from-scratch
implementation verified against the RFC 1320 test vectors.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF

# Per-round message word orderings (RFC 1320 section A.3).
_ROUND2_ORDER = (0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15)
_ROUND3_ORDER = (0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15)

_ROUND1_SHIFTS = (3, 7, 11, 19)
_ROUND2_SHIFTS = (3, 5, 9, 13)
_ROUND3_SHIFTS = (3, 9, 11, 15)


def _rol(value: int, amount: int) -> int:
    value &= _MASK
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def _f(x: int, y: int, z: int) -> int:
    return (x & y) | (~x & z)


def _g(x: int, y: int, z: int) -> int:
    return (x & y) | (x & z) | (y & z)


def _h(x: int, y: int, z: int) -> int:
    return x ^ y ^ z


def _pad(message: bytes) -> bytes:
    bit_length = (len(message) * 8) & 0xFFFFFFFFFFFFFFFF
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    return padded + struct.pack("<Q", bit_length)


def _compress(state: tuple, block: bytes) -> tuple:
    x = struct.unpack("<16I", block)
    a, b, c, d = state

    for i in range(16):
        s = _ROUND1_SHIFTS[i % 4]
        if i % 4 == 0:
            a = _rol(a + _f(b, c, d) + x[i], s)
        elif i % 4 == 1:
            d = _rol(d + _f(a, b, c) + x[i], s)
        elif i % 4 == 2:
            c = _rol(c + _f(d, a, b) + x[i], s)
        else:
            b = _rol(b + _f(c, d, a) + x[i], s)

    for i in range(16):
        k = _ROUND2_ORDER[i]
        s = _ROUND2_SHIFTS[i % 4]
        if i % 4 == 0:
            a = _rol(a + _g(b, c, d) + x[k] + 0x5A827999, s)
        elif i % 4 == 1:
            d = _rol(d + _g(a, b, c) + x[k] + 0x5A827999, s)
        elif i % 4 == 2:
            c = _rol(c + _g(d, a, b) + x[k] + 0x5A827999, s)
        else:
            b = _rol(b + _g(c, d, a) + x[k] + 0x5A827999, s)

    for i in range(16):
        k = _ROUND3_ORDER[i]
        s = _ROUND3_SHIFTS[i % 4]
        if i % 4 == 0:
            a = _rol(a + _h(b, c, d) + x[k] + 0x6ED9EBA1, s)
        elif i % 4 == 1:
            d = _rol(d + _h(a, b, c) + x[k] + 0x6ED9EBA1, s)
        elif i % 4 == 2:
            c = _rol(c + _h(d, a, b) + x[k] + 0x6ED9EBA1, s)
        else:
            b = _rol(b + _h(c, d, a) + x[k] + 0x6ED9EBA1, s)

    return (
        (state[0] + a) & _MASK,
        (state[1] + b) & _MASK,
        (state[2] + c) & _MASK,
        (state[3] + d) & _MASK,
    )


def md4_digest(message: bytes) -> bytes:
    """Return the 16-byte MD4 digest of ``message``."""
    state = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)
    padded = _pad(message)
    for offset in range(0, len(padded), 64):
        state = _compress(state, padded[offset:offset + 64])
    return struct.pack("<4I", *state)


def md4_hexdigest(message: bytes) -> str:
    """Return the MD4 digest of ``message`` as a lowercase hex string."""
    return md4_digest(message).hex()
