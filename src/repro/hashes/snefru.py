"""Snefru-128/256 with derived S-boxes.

Snefru (Merkle, 1990) appears in the paper's appendix of supported hash
functions.  The original algorithm depends on 16 "standard" S-boxes of 256
32-bit words each (generated at Xerox PARC from a certified random source).
Those tables are pure data that cannot be re-derived offline, so this module
keeps Snefru's exact *structure* — a 512-bit shift-register compression
function with byte-indexed S-box lookups and the (16, 8, 16, 24) rotation
schedule over eight security passes — while generating the S-boxes
deterministically from SHA-256 in counter mode.

As with :mod:`repro.hashes.md2`, the substitution is flagged via
:data:`FAITHFUL`; within this reproduction both the leaking scripts and the
detector share the tables, so detection semantics are preserved.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Tuple

#: False because the original Xerox S-box tables are replaced.
FAITHFUL = False

_MASK = 0xFFFFFFFF
_SECURITY_LEVEL = 8  # Snefru 2.0 uses eight passes.
_ROTATIONS = (16, 8, 16, 24)
_INPUT_WORDS = 16  # the compression function always mixes 16 words


def _build_sboxes() -> Tuple[Tuple[int, ...], ...]:
    boxes: List[Tuple[int, ...]] = []
    for box_index in range(_SECURITY_LEVEL * 2):
        words: List[int] = []
        counter = 0
        while len(words) < 256:
            digest = hashlib.sha256(
                b"repro-snefru-sbox-%d-%d" % (box_index, counter)).digest()
            words.extend(struct.unpack(">8I", digest))
            counter += 1
        boxes.append(tuple(words[:256]))
    return tuple(boxes)


_SBOXES = _build_sboxes()


def _ror(value: int, amount: int) -> int:
    value &= _MASK
    return ((value >> amount) | (value << (32 - amount))) & _MASK


def _compress(block_words: List[int]) -> List[int]:
    """One application of the Snefru compression function.

    ``block_words`` must contain exactly 16 32-bit words: the chaining value
    followed by the message chunk.  Returns the full mixed state; callers
    truncate to the output size.
    """
    state = list(block_words)
    for pass_index in range(_SECURITY_LEVEL):
        for rotation in _ROTATIONS:
            for i in range(_INPUT_WORDS):
                sbox = _SBOXES[2 * pass_index + ((i // 2) & 1)]
                entry = sbox[state[i] & 0xFF]
                state[(i + 1) % _INPUT_WORDS] ^= entry
                state[(i - 1) % _INPUT_WORDS] ^= entry
            for i in range(_INPUT_WORDS):
                state[i] = _ror(state[i], rotation)
    return [(block_words[i] ^ state[_INPUT_WORDS - 1 - i]) & _MASK
            for i in range(_INPUT_WORDS)]


def _snefru(message: bytes, output_words: int) -> bytes:
    chunk_words = _INPUT_WORDS - output_words
    chunk_bytes = chunk_words * 4
    state = [0] * output_words

    full_len = len(message)
    padded = message + b"\x00" * ((chunk_bytes - len(message) % chunk_bytes)
                                  % chunk_bytes)
    for offset in range(0, len(padded), chunk_bytes):
        chunk = struct.unpack(">%dI" % chunk_words,
                              padded[offset:offset + chunk_bytes])
        mixed = _compress(state + list(chunk))
        state = mixed[:output_words]

    # Final block encodes the bit length, exactly as the reference design.
    length_block = [0] * (chunk_words - 2)
    bit_length = full_len * 8
    length_block.append((bit_length >> 32) & _MASK)
    length_block.append(bit_length & _MASK)
    mixed = _compress(state + length_block)
    state = mixed[:output_words]
    return struct.pack(">%dI" % output_words, *state)


def snefru128_digest(message: bytes) -> bytes:
    """Return the 16-byte Snefru-128 digest of ``message``."""
    return _snefru(message, 4)


def snefru256_digest(message: bytes) -> bytes:
    """Return the 32-byte Snefru-256 digest of ``message``."""
    return _snefru(message, 8)


def snefru128_hexdigest(message: bytes) -> str:
    """Snefru-128 digest as lowercase hex."""
    return snefru128_digest(message).hex()


def snefru256_hexdigest(message: bytes) -> str:
    """Snefru-256 digest as lowercase hex."""
    return snefru256_digest(message).hex()
