"""Reversible encodings used as PII obfuscators.

Covers the encoding half of the paper's appendix: base16, base32, base32hex,
base58, base64, rot13 and the three compression formats (gzip, bzip2, raw
deflate).  Every encoder maps ``bytes -> bytes`` so encoders and hashes can
be chained uniformly by the transform registry.

Compressed output is binary; when it participates in a chain the registry
renders it as base64 text first, which matches how trackers actually ship
compressed identifiers inside URLs.
"""

from __future__ import annotations

import base64
import bz2
import codecs
import gzip
import zlib

_BASE58_ALPHABET = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_BASE58_INDEX = {char: index for index, char in enumerate(_BASE58_ALPHABET)}


def base16_encode(data: bytes) -> bytes:
    """Uppercase hexadecimal (RFC 4648 base16)."""
    return base64.b16encode(data)


def base32_encode(data: bytes) -> bytes:
    """RFC 4648 base32."""
    return base64.b32encode(data)


def base32hex_encode(data: bytes) -> bytes:
    """RFC 4648 base32 with the extended-hex alphabet."""
    return base64.b32hexencode(data)


def base64_encode(data: bytes) -> bytes:
    """RFC 4648 base64."""
    return base64.b64encode(data)


def base64url_encode(data: bytes) -> bytes:
    """RFC 4648 URL-safe base64 (the form most often seen in query strings)."""
    return base64.urlsafe_b64encode(data)


def base58_encode(data: bytes) -> bytes:
    """Bitcoin-alphabet base58 (no padding, leading zeros become '1')."""
    leading_zeros = len(data) - len(data.lstrip(b"\x00"))
    number = int.from_bytes(data, "big")
    encoded = bytearray()
    while number:
        number, remainder = divmod(number, 58)
        encoded.append(_BASE58_ALPHABET[remainder])
    encoded.extend(_BASE58_ALPHABET[0:1] * leading_zeros)
    encoded.reverse()
    return bytes(encoded)


def base58_decode(data: bytes) -> bytes:
    """Inverse of :func:`base58_encode`.

    Raises ``ValueError`` on characters outside the base58 alphabet.
    """
    leading_ones = len(data) - len(data.lstrip(b"1"))
    number = 0
    for char in data:
        if char not in _BASE58_INDEX:
            raise ValueError("invalid base58 character: %r" % chr(char))
        number = number * 58 + _BASE58_INDEX[char]
    body = number.to_bytes((number.bit_length() + 7) // 8, "big") if number else b""
    return b"\x00" * leading_ones + body


def rot13_encode(data: bytes) -> bytes:
    """ROT13 over ASCII letters; other bytes pass through unchanged."""
    text = data.decode("latin-1")
    return codecs.encode(text, "rot13").encode("latin-1")


def gzip_encode(data: bytes) -> bytes:
    """Deterministic gzip stream (mtime pinned to zero)."""
    return gzip.compress(data, mtime=0)


def bzip2_encode(data: bytes) -> bytes:
    """bzip2 stream at the default compression level."""
    return bz2.compress(data)


def deflate_encode(data: bytes) -> bytes:
    """Raw DEFLATE stream (no zlib header), as used by HTTP deflate."""
    compressor = zlib.compressobj(9, zlib.DEFLATED, -zlib.MAX_WBITS)
    return compressor.compress(data) + compressor.flush()


def deflate_decode(data: bytes) -> bytes:
    """Inverse of :func:`deflate_encode`."""
    return zlib.decompress(data, -zlib.MAX_WBITS)
