"""Bootstrap statistics for measured quantities.

A single crawl yields point estimates (mean receivers per sender, % of
senders with ≥ 3 receivers, …).  Measurement papers report how stable such
numbers are under resampling of the measured population; this module
provides nonparametric bootstrap confidence intervals over the sender
sample, plus a helper that checks whether the paper's published value
falls inside the measured interval.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from .analysis import LeakAnalysis


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with its bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    samples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return "%.3f [%.3f, %.3f] (%.0f%% CI, n=%d)" % (
            self.estimate, self.low, self.high, 100 * self.confidence,
            self.samples)


def bootstrap_ci(values: Sequence[float],
                 statistic: Callable[[Sequence[float]], float],
                 n_resamples: int = 2000,
                 confidence: float = 0.95,
                 seed: int = 0) -> BootstrapResult:
    """Percentile bootstrap CI of ``statistic`` over ``values``.

    Deterministic for a given seed; raises ``ValueError`` on empty input.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    data = list(values)
    size = len(data)
    estimates = []
    for _ in range(n_resamples):
        resample = [data[rng.randrange(size)] for _ in range(size)]
        estimates.append(statistic(resample))
    estimates.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * n_resamples)
    high_index = min(n_resamples - 1,
                     int((1.0 - alpha) * n_resamples))
    return BootstrapResult(estimate=statistic(data),
                           low=estimates[low_index],
                           high=estimates[high_index],
                           confidence=confidence, samples=size)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _share_at_least(threshold: float) -> Callable[[Sequence[float]], float]:
    def statistic(values: Sequence[float]) -> float:
        return 100.0 * sum(1 for v in values if v >= threshold) / len(values)
    return statistic


def sender_degree_sample(analysis: LeakAnalysis) -> List[int]:
    """Receivers-per-sender observations (the §4.2 unit of analysis)."""
    return [len({rel.receiver
                 for rel in analysis.relationships_of_sender(sender)})
            for sender in analysis.senders()]


def headline_intervals(analysis: LeakAnalysis,
                       n_resamples: int = 2000,
                       seed: int = 0) -> Dict[str, BootstrapResult]:
    """Bootstrap CIs for the §4.2 per-sender statistics."""
    degrees = sender_degree_sample(analysis)
    return {
        "mean_receivers_per_sender": bootstrap_ci(
            degrees, _mean, n_resamples=n_resamples, seed=seed),
        "pct_senders_with_3plus": bootstrap_ci(
            degrees, _share_at_least(3), n_resamples=n_resamples,
            seed=seed + 1),
    }
