"""Aggregation of leak events into the paper's result structures (§4.2).

The unit of aggregation is the *leak relationship*: one (sender, receiver)
pair with everything observed about it — channels, encoding forms, PII
types, parameters, stages.  Table 1's three breakdowns count senders and
receivers per attribute, with the "Combined" rows counting those that have
a relationship using several methods (or several encoding forms) at once,
matching the paper's examples ("via request URI and cookie", "plaintext
and SHA256").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .. import hashes
from .leakmodel import LeakEvent

# Canonical Table 1b encoding rows.
ENCODING_ROWS = ("plaintext", "base64", "md5", "sha1", "sha256",
                 "sha256 of md5")


def encoding_label(chain: Tuple[str, ...]) -> str:
    """Normalize a chain to the paper's Table 1b vocabulary.

    ``base64url`` is folded into ``base64``: for the token alphabet PII
    values produce, the two encoders emit identical strings, so a detector
    cannot (and the paper does not) distinguish them.
    """
    normalized = tuple("base64" if name == "base64url" else name
                       for name in chain)
    return hashes.chain_label(normalized)


@dataclass
class LeakRelationship:
    """Everything observed for one (sender, receiver) pair."""

    sender: str
    receiver: str
    channels: Set[str] = field(default_factory=set)
    encodings: Set[str] = field(default_factory=set)
    pii_types: Set[str] = field(default_factory=set)
    parameters: Set[str] = field(default_factory=set)
    stages: Set[str] = field(default_factory=set)
    cloaked: bool = False
    events: List[LeakEvent] = field(default_factory=list)

    @property
    def uses_combined_channels(self) -> bool:
        return len(self.channels) >= 2

    @property
    def uses_combined_encodings(self) -> bool:
        return len(self.encodings) >= 2

    @property
    def pii_combo(self) -> FrozenSet[str]:
        return frozenset(self.pii_types)

    @property
    def seen_on_subpage(self) -> bool:
        return "subpage" in self.stages


@dataclass(frozen=True)
class BreakdownRow:
    """One row of a Table 1 style breakdown."""

    label: str
    senders: int
    receivers: int
    sender_pct: float
    receiver_pct: float


class LeakAnalysis:
    """Computed views over a set of leak events."""

    def __init__(self, events: Sequence[LeakEvent]) -> None:
        self.events = list(events)
        self._relationships: Dict[Tuple[str, str], LeakRelationship] = {}
        for event in self.events:
            key = (event.sender, event.receiver)
            rel = self._relationships.get(key)
            if rel is None:
                rel = LeakRelationship(sender=event.sender,
                                       receiver=event.receiver)
                self._relationships[key] = rel
            rel.channels.add(event.channel)
            rel.encodings.add(encoding_label(event.chain))
            rel.pii_types.add(event.pii_type)
            if event.parameter:
                rel.parameters.add(event.parameter)
            rel.stages.add(event.stage)
            rel.cloaked = rel.cloaked or event.cloaked
            rel.events.append(event)

    # -- basic sets ---------------------------------------------------------

    def relationships(self) -> List[LeakRelationship]:
        return list(self._relationships.values())

    def senders(self) -> List[str]:
        return sorted({rel.sender for rel in self._relationships.values()})

    def receivers(self) -> List[str]:
        return sorted({rel.receiver for rel in self._relationships.values()})

    def relationships_of_sender(self, sender: str) -> List[LeakRelationship]:
        return [rel for rel in self._relationships.values()
                if rel.sender == sender]

    def relationships_of_receiver(self, receiver: str) -> List[LeakRelationship]:
        return [rel for rel in self._relationships.values()
                if rel.receiver == receiver]

    # -- headline statistics (§4.2) ------------------------------------------

    def headline(self, total_sites: Optional[int] = None) -> Dict[str, float]:
        """The §4.2 summary statistics."""
        senders = self.senders()
        receivers = self.receivers()
        per_sender = [len({rel.receiver
                           for rel in self.relationships_of_sender(s)})
                      for s in senders]
        stats: Dict[str, float] = {
            "senders": len(senders),
            "receivers": len(receivers),
            "relationships": len(self._relationships),
            "mean_receivers_per_sender": (
                sum(per_sender) / len(per_sender) if per_sender else 0.0),
            "max_receivers_per_sender": max(per_sender, default=0),
            "pct_senders_with_3plus": (
                100.0 * sum(1 for n in per_sender if n >= 3) / len(per_sender)
                if per_sender else 0.0),
        }
        if total_sites:
            stats["pct_sites_leaking"] = 100.0 * len(senders) / total_sites
        return stats

    def max_receiver_sender(self) -> Optional[Tuple[str, int]]:
        """(sender, receiver count) with the most receivers (loccitane)."""
        best: Optional[Tuple[str, int]] = None
        for sender in self.senders():
            count = len({rel.receiver
                         for rel in self.relationships_of_sender(sender)})
            if best is None or count > best[1]:
                best = (sender, count)
        return best

    # -- Table 1 breakdowns ---------------------------------------------------

    def _breakdown(self, attribute_of, combined_of) -> List[BreakdownRow]:
        sender_total = len(self.senders()) or 1
        receiver_total = len(self.receivers()) or 1
        rows: Dict[str, Tuple[Set[str], Set[str]]] = {}
        combined_senders: Set[str] = set()
        combined_receivers: Set[str] = set()
        for rel in self._relationships.values():
            for label in attribute_of(rel):
                senders, receivers = rows.setdefault(label, (set(), set()))
                senders.add(rel.sender)
                receivers.add(rel.receiver)
            if combined_of(rel):
                combined_senders.add(rel.sender)
                combined_receivers.add(rel.receiver)
        result = [
            BreakdownRow(label=label, senders=len(senders),
                         receivers=len(receivers),
                         sender_pct=100.0 * len(senders) / sender_total,
                         receiver_pct=100.0 * len(receivers) / receiver_total)
            for label, (senders, receivers) in rows.items()]
        result.append(BreakdownRow(
            label="combined", senders=len(combined_senders),
            receivers=len(combined_receivers),
            sender_pct=100.0 * len(combined_senders) / sender_total,
            receiver_pct=100.0 * len(combined_receivers) / receiver_total))
        return result

    def table1a(self) -> List[BreakdownRow]:
        """Breakdown by leak method, in the paper's row order."""
        rows = self._breakdown(lambda rel: rel.channels,
                               lambda rel: rel.uses_combined_channels)
        return _ordered(rows, ("referer", "uri", "payload", "cookie",
                               "combined"))

    def table1b(self) -> List[BreakdownRow]:
        """Breakdown by encoding/hashing form."""
        rows = self._breakdown(lambda rel: rel.encodings,
                               lambda rel: rel.uses_combined_encodings)
        order = ENCODING_ROWS + ("combined",)
        return _ordered(rows, order, keep_extra=True)

    def table1c(self) -> List[BreakdownRow]:
        """Breakdown by PII type combination."""
        def combo_label(rel: LeakRelationship):
            return [ ",".join(sorted(rel.pii_types)) ]
        rows = self._breakdown(combo_label, lambda rel: False)
        return [row for row in rows if row.label != "combined"]

    # -- Figure 2 --------------------------------------------------------------

    def figure2(self, top_n: int = 15) -> List[Tuple[str, int, float]]:
        """Top receivers by distinct sender count: (domain, n, pct)."""
        sender_total = len(self.senders()) or 1
        counts: Dict[str, Set[str]] = {}
        for rel in self._relationships.values():
            counts.setdefault(rel.receiver, set()).add(rel.sender)
        ranked = sorted(counts.items(),
                        key=lambda item: (-len(item[1]), item[0]))
        return [(domain, len(senders), 100.0 * len(senders) / sender_total)
                for domain, senders in ranked[:top_n]]

    # -- convenience ------------------------------------------------------------

    def receiver_degree(self) -> Dict[str, int]:
        """receiver -> number of distinct senders."""
        degrees: Dict[str, Set[str]] = {}
        for rel in self._relationships.values():
            degrees.setdefault(rel.receiver, set()).add(rel.sender)
        return {domain: len(senders) for domain, senders in degrees.items()}

    def single_sender_receivers(self) -> List[str]:
        """Receivers seen with exactly one sender (the paper's 58)."""
        return sorted(domain for domain, degree
                      in self.receiver_degree().items() if degree == 1)


def _ordered(rows: List[BreakdownRow], order: Sequence[str],
             keep_extra: bool = False) -> List[BreakdownRow]:
    by_label = {row.label: row for row in rows}
    result = [by_label[label] for label in order if label in by_label]
    if keep_extra:
        extras = [row for row in rows if row.label not in order]
        combined = [row for row in result if row.label == "combined"]
        body = [row for row in result if row.label != "combined"]
        result = body + sorted(extras, key=lambda r: r.label) + combined
    return result
