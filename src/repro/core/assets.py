"""Compiled study assets: build once, match many (the hot-path API).

Every stage of a study hammers the same immutable inputs — the persona's
candidate token set, the tracker catalog, the PSL, the blocklists — yet
the historical code paths rebuilt them per call: ``Study.analyze``
enumerated thousands of encoding chains per invocation, every shard
rebuilt its population and token automaton from scratch, and the Table 4
evaluator re-parsed filter lists per run.  :class:`CompiledStudyAssets`
is the one public construction path that replaces those implicit
rebuilds: a study compiles its assets once and threads them
``Study.crawl → supervisor/parallel → runner → detector``.

Two classes split the work across the process boundary:

* :class:`CompiledStudyAssets` — the live, *unpicklable-by-intent*
  bundle: the built population, the lazily-compiled
  :class:`~repro.core.tokens.CandidateTokenSet` (built recorder-free so
  it can be reused under any trace; see :meth:`replay_token_funnel`),
  compiled blocklists, detector factories.
* :class:`StudyAssetsSpec` — the compact picklable recipe
  (population spec + token config) a :class:`~repro.crawler.parallel.
  ShardJob` carries instead of heavyweight live objects.  Workers call
  :meth:`StudyAssetsSpec.compiled`, which memoises per process: every
  shard that lands in the same worker (and, under a forking start
  method, every worker inheriting the parent's warm memo) reuses one
  compiled bundle instead of rebuilding per shard.

Nothing here may move a fingerprint: assets only cache pure functions
of the study's immutable inputs, and the funnel counters a precomputed
token set would have recorded are replayed verbatim into whichever
recorder the reusing stage supplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..obs import Recorder
from ..psl import PublicSuffixList, default_list
from .detector import LeakDetector
from .tokens import CandidateTokenSet, TokenSetConfig


class CompiledStudyAssets:
    """Everything the crawl/analyze hot path needs, compiled once.

    Build it with :meth:`for_population` (or :meth:`StudyAssetsSpec.
    compiled` inside workers); :class:`~repro.core.pipeline.Study`
    builds one automatically, or accepts a prebuilt instance via
    ``StudyConfig(assets=...)`` so several studies over the same
    population can share the compiled state.
    """

    def __init__(self, population, *,
                 population_spec=None,
                 token_config: Optional[TokenSetConfig] = None,
                 psl: Optional[PublicSuffixList] = None) -> None:
        self.population = population
        self.population_spec = population_spec
        self.token_config = token_config
        self.psl = psl or default_list()
        self._tokens: Optional[CandidateTokenSet] = None
        self._compiled_rules: Dict[int, object] = {}

    @classmethod
    def for_population(cls, population, *, population_spec=None,
                       token_config: Optional[TokenSetConfig] = None,
                       psl: Optional[PublicSuffixList] = None
                       ) -> "CompiledStudyAssets":
        """The single public construction path for live assets."""
        return cls(population, population_spec=population_spec,
                   token_config=token_config, psl=psl)

    # -- identity ---------------------------------------------------------

    @property
    def persona(self):
        return self.population.persona

    @property
    def catalog(self):
        return self.population.catalog

    def spec(self) -> "StudyAssetsSpec":
        """The picklable recipe for these assets.

        Requires a ``population_spec``; a bundle built straight from a
        live population has no compact recipe to ship.
        """
        if self.population_spec is None:
            raise ValueError(
                "these assets were built from a live population without a "
                "population_spec; construct them with one (e.g. "
                "Study(population, population_spec=...)) to get a "
                "picklable StudyAssetsSpec")
        return StudyAssetsSpec(population_spec=self.population_spec,
                               token_config=self.token_config)

    # -- compiled pieces --------------------------------------------------

    def tokens(self) -> CandidateTokenSet:
        """The persona's candidate token set (compiled on first use).

        Built without a recorder — generation-funnel tallies are kept as
        plain ints on the set — so one compilation serves every stage
        and every trace; stages that trace call
        :meth:`replay_token_funnel` to surface the funnel.
        """
        if self._tokens is None:
            self._tokens = CandidateTokenSet(self.persona,
                                             config=self.token_config,
                                             recorder=None)
        return self._tokens

    def replay_token_funnel(self, recorder: Optional[Recorder]) -> None:
        """Replay the token-generation funnel into ``recorder``.

        Emits exactly the counters/gauge a fresh
        :class:`CandidateTokenSet` constructed with that recorder would
        have recorded, so traces stay bit-identical whether the token
        set was compiled here or built inline.
        """
        self.tokens().replay_funnel(recorder)

    def detector(self, recorder: Optional[Recorder] = None,
                 scan_first_party: bool = False,
                 locations=None,
                 fault_plan=None) -> LeakDetector:
        """A :class:`LeakDetector` over the compiled token set."""
        return LeakDetector(self.tokens(), catalog=self.catalog,
                            resolver=self.population.resolver(fault_plan),
                            psl=self.psl,
                            scan_first_party=scan_first_party,
                            locations=locations, recorder=recorder)

    def compile_rules(self, rules):
        """Compile (and memoise) a blocklist :class:`~repro.blocklist.
        matcher.RuleSet` onto the Aho–Corasick engine.

        Already-compiled sets pass through unchanged; each distinct
        source set is compiled at most once per assets bundle.
        """
        from ..blocklist.matcher import CompiledRuleSet
        if isinstance(rules, CompiledRuleSet):
            return rules
        compiled = self._compiled_rules.get(id(rules))
        if compiled is None:
            compiled = rules.compile()
            self._compiled_rules[id(rules)] = compiled
        return compiled


@dataclass(frozen=True)
class StudyAssetsSpec:
    """Picklable recipe for :class:`CompiledStudyAssets`.

    The compact payload shard jobs carry across the process boundary:
    a :class:`~repro.crawler.parallel.PopulationSpec` plus the token
    config.  :meth:`compiled` rebuilds — or, crucially, *reuses* — the
    live bundle in the executing process.
    """

    population_spec: object
    token_config: Optional[TokenSetConfig] = None

    def compiled(self) -> CompiledStudyAssets:
        """The process-local compiled bundle for this recipe.

        Memoised per process keyed by the spec's value (identity for
        unhashable population specs, e.g. prebuilt ones wrapping live
        populations): all shards executed by one process share a single
        population + token automaton, and processes forked from a warm
        parent inherit its memo copy-on-write.
        """
        key = self._memo_key()
        entry = _PROCESS_ASSETS.get(key)
        # Entries keep the keying spec alive, so an id()-based key can
        # never alias a new spec onto a dead one's bundle; the identity
        # check makes that explicit.
        if entry is not None and (key is self or entry[0] is self):
            return entry[1]
        population = self.population_spec.build()
        assets = CompiledStudyAssets(
            population, population_spec=self.population_spec,
            token_config=self.token_config)
        _memo_store(key, self, assets)
        return assets

    def seed(self, assets: CompiledStudyAssets) -> None:
        """Pre-populate the process memo with a live bundle.

        The parent-side warm-up for forking engines: seeding before the
        workers fork lets every child inherit the already-built bundle
        copy-on-write and skip its own population build entirely.  (With
        a ``spawn`` start method children start cold and :meth:`compiled`
        rebuilds once per worker as before.)
        """
        _memo_store(self._memo_key(), self, assets)

    def _memo_key(self) -> Union["StudyAssetsSpec", int]:
        # Probes hashability only; the memo this keys is process-local
        # by design, so per-process hash randomisation cannot leak into
        # anything that crosses a process or a fingerprint.
        try:
            hash(self)  # statan: ignore[DET104] -- process-local memo key, never serialized or fingerprinted
        except TypeError:
            return id(self)
        return self


#: Process-local memo of compiled bundles (see `StudyAssetsSpec.compiled`):
#: key -> (keying spec, bundle), insertion-ordered for FIFO eviction.
_PROCESS_ASSETS: Dict[object, tuple] = {}
_PROCESS_ASSETS_LIMIT = 4


def _memo_store(key: object, spec: "StudyAssetsSpec",
                assets: CompiledStudyAssets) -> None:
    while len(_PROCESS_ASSETS) >= _PROCESS_ASSETS_LIMIT:
        # FIFO eviction: bound what a long-lived service process can
        # pin (populations are large); evicted recipes just rebuild.
        _PROCESS_ASSETS.pop(next(iter(_PROCESS_ASSETS)))
    _PROCESS_ASSETS[key] = (spec, assets)


def clear_process_assets() -> None:
    """Drop the process-local assets memo (tests and long-lived services)."""
    _PROCESS_ASSETS.clear()
