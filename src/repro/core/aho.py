"""Aho-Corasick multi-pattern string matching.

The candidate token set easily reaches thousands of strings per persona
(every PII surface form under every transform chain), and every one of them
must be searched for in every request URL, header and payload.  Scanning
with ``token in text`` per token is quadratic in practice; an Aho-Corasick
automaton finds all occurrences of all tokens in a single pass.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

Payload = TypeVar("Payload")


@dataclass(frozen=True)
class Match(Generic[Payload]):
    """One pattern occurrence: ``text[start:end] == pattern``."""

    start: int
    end: int
    pattern: str
    payload: Payload


class _Node:
    __slots__ = ("children", "fail", "outputs")

    def __init__(self) -> None:
        self.children: Dict[str, "_Node"] = {}
        self.fail: Optional["_Node"] = None
        self.outputs: List[Tuple[str, object]] = []


class AhoCorasick(Generic[Payload]):
    """Multi-pattern matcher; add patterns, ``build()``, then search."""

    def __init__(self) -> None:
        self._root = _Node()
        self._built = False
        self._count = 0

    def add(self, pattern: str, payload: Payload) -> None:
        """Register a pattern with an arbitrary payload.

        Adding after :meth:`build` invalidates the automaton; it is rebuilt
        lazily on the next search.
        """
        if not pattern:
            raise ValueError("empty pattern")
        node = self._root
        for char in pattern:
            node = node.children.setdefault(char, _Node())
        node.outputs.append((pattern, payload))
        self._built = False
        self._count += 1

    def build(self) -> None:
        """Compute failure links (BFS over the trie)."""
        queue: deque = deque()
        self._root.fail = self._root
        for child in self._root.children.values():
            child.fail = self._root
            queue.append(child)
        while queue:
            node = queue.popleft()
            for char, child in node.children.items():
                queue.append(child)
                fail = node.fail
                while fail is not self._root and char not in fail.children:
                    fail = fail.fail
                child.fail = fail.children.get(char, self._root)
                if child.fail is child:
                    child.fail = self._root
                child.outputs = child.outputs + child.fail.outputs
        self._built = True

    def iter_matches(self, text: str) -> Iterator[Match[Payload]]:
        """Yield every occurrence of every pattern in ``text``."""
        if not self._built:
            self.build()
        node = self._root
        for index, char in enumerate(text):
            while node is not self._root and char not in node.children:
                node = node.fail
            node = node.children.get(char, self._root)
            for pattern, payload in node.outputs:
                yield Match(start=index - len(pattern) + 1, end=index + 1,
                            pattern=pattern, payload=payload)

    def iter_hits(self, text: str) -> Iterator[Tuple[int, str, Payload]]:
        """Yield ``(end, pattern, payload)`` per occurrence, cheaply.

        The low-overhead variant of :meth:`iter_matches` for hot loops:
        same occurrences in the same order, but plain tuples instead of
        :class:`Match` instances (``start`` is ``end - len(pattern)``).
        """
        if not self._built:
            self.build()
        root = self._root
        node = root
        for index, char in enumerate(text):
            while node is not root and char not in node.children:
                node = node.fail
            node = node.children.get(char, root)
            if node.outputs:
                end = index + 1
                for pattern, payload in node.outputs:
                    yield end, pattern, payload

    def find_all(self, text: str) -> List[Match[Payload]]:
        """All matches as a list."""
        return list(self.iter_matches(text))

    def contains_any(self, text: str) -> bool:
        """Whether any pattern occurs in ``text`` (early exit)."""
        for _ in self.iter_matches(text):
            return True
        return False

    def __len__(self) -> int:
        return self._count
