"""Shared vocabulary for PII leaks (§4.1).

Defines the four leak channels the paper detects, and the
:class:`LeakEvent` record the detector emits — one per (request, PII token)
observation, carrying everything the downstream analyses group by: sender,
receiver, channel, encoding chain, PII type, flow stage, and the parameter
name that carried the value (the raw material for §5's trackid inference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .. import hashes

# The four leakage methods of Figure 1.
CHANNEL_REFERER = "referer"
CHANNEL_URI = "uri"
CHANNEL_COOKIE = "cookie"
CHANNEL_PAYLOAD = "payload"

CHANNELS = (CHANNEL_REFERER, CHANNEL_URI, CHANNEL_COOKIE, CHANNEL_PAYLOAD)

#: Where in the request the token was found, mapped to its channel.
LOCATION_QUERY = "query"            # -> uri
LOCATION_PATH = "path"              # -> uri
LOCATION_REFERER = "referer"        # -> referer
LOCATION_COOKIE = "cookie"          # -> cookie
LOCATION_BODY = "body"              # -> payload

_LOCATION_TO_CHANNEL = {
    LOCATION_QUERY: CHANNEL_URI,
    LOCATION_PATH: CHANNEL_URI,
    LOCATION_REFERER: CHANNEL_REFERER,
    LOCATION_COOKIE: CHANNEL_COOKIE,
    LOCATION_BODY: CHANNEL_PAYLOAD,
}


def channel_for_location(location: str) -> str:
    """Map a token location inside a request to its paper leak channel."""
    return _LOCATION_TO_CHANNEL[location]


@dataclass(frozen=True)
class LeakEvent:
    """One detected PII leak observation."""

    sender: str                     # registrable domain of the visited site
    receiver: str                   # attributed third-party domain
    request_host: str               # literal host the request went to
    channel: str                    # one of CHANNELS
    location: str                   # finer-grained location
    pii_type: str                   # repro.core.persona PII_* value
    chain: Tuple[str, ...]          # transform chain, () = plaintext
    parameter: Optional[str]        # query/body/cookie parameter name
    stage: str                      # flow stage (netsim.har STAGE_*)
    url: str                        # full request URL
    cloaked: bool = False           # receiver reached via CNAME cloaking
    surface_form: str = ""          # the persona surface form that leaked
    token: str = ""                 # the matched candidate token
    timestamp: float = 0.0          # simulated time the request fired

    @property
    def encoding_label(self) -> str:
        """The paper's encoding notation (``plaintext``, ``sha256 of md5``)."""
        return hashes.chain_label(self.chain)

    @property
    def is_auth_stage(self) -> bool:
        from ..netsim import AUTH_STAGES
        return self.stage in AUTH_STAGES
