"""Heuristic (parameter-name) leak detection.

The token-matching detector is exact but has a known blind spot the paper
acknowledges implicitly: a tracker that *salts* or truncates its hashes
produces values no candidate set can precompute.  This module implements
the standard fallback from the measurement literature — flagging request
parameters whose *names* advertise identifier payloads (``email_sha256``,
``hashed_email``, ``u_hem``, …) when their values look like digests or
opaque identifiers.

Findings are *suspected* leaks: lower confidence than token matches, kept
separate so analyses can report them distinctly (and so exact and
heuristic detection can be compared on the same traffic).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import List, Optional, Set

from ..netsim import CaptureEntry, CaptureLog, decode_urlencoded
from ..psl import PublicSuffixList, default_list

#: Parameter-name fragments advertising an identity payload.
_NAME_PATTERNS = (
    r"e?mail.{0,4}(hash|sha|md5|id)",
    r"(hash|sha\d*|md5).{0,4}e?mail",
    r"\bhem\b|u_hem|udff|\bpd\b",
    r"user.{0,4}(hash|id(entifier)?)\b",
    r"^(em|uid|puid|exid|ext(ernal)?_?id)$",
)
_NAME_RE = re.compile("|".join("(?:%s)" % pattern
                               for pattern in _NAME_PATTERNS),
                      re.IGNORECASE)

_HEX_RE = re.compile(r"^[0-9a-fA-F]{16,128}$")
_B64_RE = re.compile(r"^[A-Za-z0-9+/_-]{16,}={0,2}$")

#: Digest lengths (hex chars) of common hashes.
_DIGEST_LENGTHS = {32, 40, 56, 64, 96, 128}


def _shannon_entropy(value: str) -> float:
    if not value:
        return 0.0
    counts = {}
    for char in value:
        counts[char] = counts.get(char, 0) + 1
    total = len(value)
    return -sum((count / total) * math.log2(count / total)
                for count in counts.values())


def looks_like_identifier(value: str) -> bool:
    """Whether a parameter value is plausibly a derived identifier."""
    value = value.strip()
    if _HEX_RE.match(value):
        return len(value) in _DIGEST_LENGTHS or len(value) >= 32
    if _B64_RE.match(value) and _shannon_entropy(value) >= 3.5:
        return True
    return False


def suspicious_parameter(name: str) -> bool:
    """Whether a parameter name advertises an identity payload."""
    return bool(name) and _NAME_RE.search(name) is not None


@dataclass(frozen=True)
class SuspectedLeak:
    """A heuristic finding: named like an ID slot, valued like a digest."""

    sender: str
    receiver: str
    parameter: str
    value_preview: str
    location: str
    url: str

    @property
    def confidence(self) -> str:
        return "suspected"


class HeuristicDetector:
    """Flags suspected identifier parameters in third-party traffic."""

    def __init__(self, psl: Optional[PublicSuffixList] = None,
                 known_tokens: Optional[Set[str]] = None) -> None:
        """``known_tokens``: values already confirmed by the exact
        detector, excluded here so the two result sets stay disjoint."""
        self.psl = psl or default_list()
        self.known_tokens = known_tokens or set()

    def _candidate_pairs(self, entry: CaptureEntry):
        request = entry.request
        for name, value in request.url.query:
            yield "query", name, value
        content_type = (request.headers.get("Content-Type") or "").lower()
        if request.body and "urlencoded" in content_type:
            for name, value in decode_urlencoded(request.body):
                yield "body", name, value

    def detect_entry(self, entry: CaptureEntry) -> List[SuspectedLeak]:
        site_host = "www." + entry.site
        if not self.psl.is_third_party(entry.request.url.host, site_host):
            return []
        findings = []
        for location, name, value in self._candidate_pairs(entry):
            if not suspicious_parameter(name):
                continue
            if not looks_like_identifier(value):
                continue
            if value in self.known_tokens or \
                    value.lower() in self.known_tokens:
                continue
            findings.append(SuspectedLeak(
                sender=entry.site,
                receiver=self.psl.registrable_domain(
                    entry.request.url.host) or entry.request.url.host,
                parameter=name,
                value_preview=value[:24],
                location=location,
                url=str(entry.request.url)))
        return findings

    def detect(self, log: CaptureLog) -> List[SuspectedLeak]:
        findings: List[SuspectedLeak] = []
        for entry in log:
            if entry.was_blocked:
                continue
            findings.extend(self.detect_entry(entry))
        return findings
