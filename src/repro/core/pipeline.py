"""End-to-end study pipeline.

:class:`Study` is the library's one-call entry point: build the calibrated
synthetic web (or accept a custom population), crawl it with the
measurement browser, detect PII leakage, and run the downstream analyses.
Every individual stage remains available for piecemeal use; this facade
wires them together the way the paper's methodology chains them:

    §3 data collection -> §4 leak detection -> §5 tracking analysis
    -> §6 policy audit (and, via :mod:`repro.protection` /
    :mod:`repro.blocklist`, the §7 countermeasure studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..browser import BrowserProfile, vanilla_firefox
from ..crawler import CrawlDataset, StudyCrawler
from ..mailsim import KIND_MARKETING
from ..policy import PolicyVerdict, classify_policies, policies_for_sites
from ..policy import table3 as policy_table3
from ..tracking import PersistenceAnalyzer, PersistenceReport
from .analysis import LeakAnalysis
from .detector import LeakDetector, leaking_requests
from .heuristics import HeuristicDetector, SuspectedLeak
from .leakmodel import LeakEvent
from .persona import Persona
from .tokens import CandidateTokenSet, TokenSetConfig


@dataclass
class StudyConfig:
    """Tunables for a full study run."""

    profile: Optional[BrowserProfile] = None
    token_config: Optional[TokenSetConfig] = None


@dataclass
class StudyResult:
    """Everything a full study run produced."""

    dataset: CrawlDataset
    tokens: CandidateTokenSet
    events: List[LeakEvent]
    analysis: LeakAnalysis
    persistence: PersistenceReport
    policy_verdicts: List[PolicyVerdict]
    leaking_request_count: int
    #: Heuristic findings (salted/unknown identifiers) the exact detector
    #: could not confirm — disjoint from ``events`` by construction.
    suspected_leaks: List[SuspectedLeak] = field(default_factory=list)

    @property
    def table3_counts(self) -> Dict[str, int]:
        return policy_table3(self.policy_verdicts)

    def marketing_mail_counts(self) -> Dict[str, int]:
        """{'inbox': n, 'spam': m} marketing-only counts (§4.2.3)."""
        mailbox = self.dataset.mailbox
        return {
            "inbox": len(mailbox.messages(folder="inbox",
                                          kind=KIND_MARKETING)),
            "spam": len(mailbox.messages(folder="spam",
                                         kind=KIND_MARKETING)),
        }

    def third_party_mail_senders(self) -> List[str]:
        """Mail senders that are leak receivers (paper observed none)."""
        receivers = set(self.analysis.receivers())
        return [domain for domain in self.dataset.mailbox.sender_domains()
                if domain in receivers]


class Study:
    """The full reproduction pipeline over a population."""

    def __init__(self, population, config: Optional[StudyConfig] = None) -> None:
        self.population = population
        self.config = config or StudyConfig()

    @classmethod
    def calibrated(cls, config: Optional[StudyConfig] = None) -> "Study":
        """A study over the paper-calibrated shopping population."""
        from ..websim.shopping import build_study_population
        spec = build_study_population()
        study = cls(spec.population, config=config)
        study.spec = spec
        return study

    def run(self) -> StudyResult:
        """Crawl, detect, and analyze; returns the combined result."""
        profile = self.config.profile or vanilla_firefox()
        crawler = StudyCrawler(self.population, profile=profile)
        dataset = crawler.crawl()

        tokens = CandidateTokenSet(self.population.persona,
                                   config=self.config.token_config)
        detector = LeakDetector(tokens, catalog=self.population.catalog,
                                resolver=self.population.resolver())
        events = detector.detect(dataset.log)
        analysis = LeakAnalysis(events)
        persistence = PersistenceAnalyzer(events).report()
        heuristics = HeuristicDetector(
            known_tokens={event.token for event in events})
        suspected = heuristics.detect(dataset.log)

        site_classes = {
            domain: self.population.sites[domain].policy_class
            for domain in analysis.senders()
            if self.population.sites[domain].policy_class is not None}
        verdicts = classify_policies(policies_for_sites(site_classes))

        return StudyResult(
            dataset=dataset,
            tokens=tokens,
            events=events,
            analysis=analysis,
            persistence=persistence,
            policy_verdicts=verdicts,
            leaking_request_count=len(leaking_requests(dataset.log,
                                                       detector)),
            suspected_leaks=suspected,
        )
