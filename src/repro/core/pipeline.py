"""End-to-end study pipeline.

:class:`Study` is the library's one-call entry point: build the calibrated
synthetic web (or accept a custom population), crawl it with the
measurement browser, detect PII leakage, and run the downstream analyses.
Every individual stage remains available for piecemeal use; this facade
wires them together the way the paper's methodology chains them:

    §3 data collection -> §4 leak detection -> §5 tracking analysis
    -> §6 policy audit (and, via :mod:`repro.protection` /
    :mod:`repro.blocklist`, the §7 countermeasure studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..browser import BrowserProfile, RetryPolicy, vanilla_firefox
from ..crawler import CrawlDataset, CrawlSession, StudyCrawler
from ..mailsim import KIND_MARKETING
from ..netsim.faults import FaultPlan
from ..policy import PolicyVerdict, classify_policies, policies_for_sites
from ..policy import table3 as policy_table3
from ..tracking import PersistenceAnalyzer, PersistenceReport
from .analysis import LeakAnalysis
from .detector import LeakDetector, leaking_requests
from .heuristics import HeuristicDetector, SuspectedLeak
from .leakmodel import LeakEvent
from .tokens import CandidateTokenSet, TokenSetConfig


@dataclass
class StudyConfig:
    """Tunables for a full study run.

    ``fault_plan`` injects seeded network faults into the crawl (see
    :mod:`repro.netsim.faults`); when set, the crawler runs its resilient
    network path with ``retry_policy`` (defaulting to a standard
    :class:`~repro.browser.RetryPolicy`).

    ``workers`` selects the crawl engine: ``1`` (default) is the
    historical single-session serial crawl; ``N > 1`` fans the
    population's shards out over N worker processes via
    :class:`~repro.crawler.ParallelCrawler` and merges to a dataset
    whose fingerprint is invariant to the worker count.  ``num_shards``
    pins the shard layout (default:
    :func:`~repro.crawler.default_shard_count`, which is independent of
    ``workers`` so fingerprints stay comparable across machines).
    """

    profile: Optional[BrowserProfile] = None
    token_config: Optional[TokenSetConfig] = None
    fault_plan: Optional[FaultPlan] = None
    retry_policy: Optional[RetryPolicy] = None
    workers: int = 1
    num_shards: Optional[int] = None


@dataclass
class StudyResult:
    """Everything a full study run produced."""

    dataset: CrawlDataset
    tokens: CandidateTokenSet
    events: List[LeakEvent]
    analysis: LeakAnalysis
    persistence: PersistenceReport
    policy_verdicts: List[PolicyVerdict]
    leaking_request_count: int
    #: Heuristic findings (salted/unknown identifiers) the exact detector
    #: could not confirm — disjoint from ``events`` by construction.
    suspected_leaks: List[SuspectedLeak] = field(default_factory=list)

    @property
    def table3_counts(self) -> Dict[str, int]:
        return policy_table3(self.policy_verdicts)

    def marketing_mail_counts(self) -> Dict[str, int]:
        """{'inbox': n, 'spam': m} marketing-only counts (§4.2.3)."""
        mailbox = self.dataset.mailbox
        return {
            "inbox": len(mailbox.messages(folder="inbox",
                                          kind=KIND_MARKETING)),
            "spam": len(mailbox.messages(folder="spam",
                                         kind=KIND_MARKETING)),
        }

    def third_party_mail_senders(self) -> List[str]:
        """Mail senders that are leak receivers (paper observed none)."""
        receivers = set(self.analysis.receivers())
        return [domain for domain in self.dataset.mailbox.sender_domains()
                if domain in receivers]

    def quarantined_sites(self) -> List[str]:
        """Sites the resilient crawl gave up on (never silently dropped)."""
        return self.dataset.quarantined_sites()


class Study:
    """The full reproduction pipeline over a population.

    ``population`` is the synthetic web to study; ``config`` a
    :class:`StudyConfig` (defaults apply when omitted).  The instance
    exposes each stage separately (:meth:`crawler`, :meth:`start_crawl`,
    :meth:`analyze`) plus the one-call :meth:`run`.
    """

    def __init__(self, population, config: Optional[StudyConfig] = None) -> None:
        self.population = population
        self.config = config or StudyConfig()
        #: Picklable recipe used by the parallel engine to rebuild the
        #: population inside worker processes.  ``None`` (the default)
        #: means the live population is deep-copied per shard; factory
        #: constructors set a cheaper spec.
        self.population_spec = None

    @classmethod
    def calibrated(cls, config: Optional[StudyConfig] = None) -> "Study":
        """A study over the paper-calibrated shopping population.

        Returns a :class:`Study` whose ``spec`` attribute carries the
        full calibrated :class:`~repro.websim.shopping` study spec.
        """
        from ..crawler import CalibratedPopulationSpec
        from ..websim.shopping import build_study_population
        spec = build_study_population()
        study = cls(spec.population, config=config)
        study.spec = spec
        study.population_spec = CalibratedPopulationSpec()
        return study

    def crawler(self) -> StudyCrawler:
        """The configured serial crawler (fault plan and retries applied)."""
        profile = self.config.profile or vanilla_firefox()
        return StudyCrawler(self.population, profile=profile,
                            fault_plan=self.config.fault_plan,
                            retry_policy=self.config.retry_policy)

    def parallel_crawler(self, checkpoint_dir: Optional[str] = None):
        """The sharded multi-process crawl engine for this study.

        Honors ``config.workers`` / ``config.num_shards``; pass
        ``checkpoint_dir`` to enable per-shard checkpointing and resume.
        Returns a :class:`~repro.crawler.ParallelCrawler` whose merged
        dataset fingerprint is invariant to the worker count.
        """
        from ..crawler import ParallelCrawler, PrebuiltPopulationSpec
        spec = self.population_spec or PrebuiltPopulationSpec(self.population)
        return ParallelCrawler(spec, workers=self.config.workers,
                               num_shards=self.config.num_shards,
                               profile=self.config.profile or vanilla_firefox(),
                               fault_plan=self.config.fault_plan,
                               retry_policy=self.config.retry_policy,
                               checkpoint_dir=checkpoint_dir)

    def start_crawl(self) -> CrawlSession:
        """Begin an incremental serial crawl session (checkpointable)."""
        return self.crawler().start()

    def run(self) -> StudyResult:
        """Crawl, detect, and analyze; returns the combined result.

        Uses the serial engine for ``config.workers == 1`` and the
        sharded parallel engine otherwise; either way the analysis runs
        over the complete merged dataset.
        """
        if self.config.workers > 1:
            return self.analyze(self.parallel_crawler().crawl())
        return self.analyze(self.crawler().crawl())

    def analyze(self, dataset: CrawlDataset) -> StudyResult:
        """Detect and analyze an existing (possibly partial) dataset.

        Works on datasets from interrupted-and-resumed or fault-heavy
        crawls: analysis runs over whatever the crawl captured, sites the
        crawl quarantined stay visible via ``dataset.status_counts()``
        and are never silently dropped.
        """
        population = dataset.population
        tokens = CandidateTokenSet(population.persona,
                                   config=self.config.token_config)
        detector = LeakDetector(tokens, catalog=population.catalog,
                                resolver=population.resolver())
        events = detector.detect(dataset.log)
        analysis = LeakAnalysis(events)
        persistence = PersistenceAnalyzer(events).report()
        heuristics = HeuristicDetector(
            known_tokens={event.token for event in events})
        suspected = heuristics.detect(dataset.log)

        site_classes = {
            domain: population.sites[domain].policy_class
            for domain in analysis.senders()
            if domain in population.sites
            and population.sites[domain].policy_class is not None}
        verdicts = classify_policies(policies_for_sites(site_classes))

        return StudyResult(
            dataset=dataset,
            tokens=tokens,
            events=events,
            analysis=analysis,
            persistence=persistence,
            policy_verdicts=verdicts,
            leaking_request_count=len(leaking_requests(dataset.log,
                                                       detector)),
            suspected_leaks=suspected,
        )
