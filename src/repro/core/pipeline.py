"""End-to-end study pipeline.

:class:`Study` is the library's one-call entry point: build the calibrated
synthetic web (or accept a custom population), crawl it with the
measurement browser, detect PII leakage, and run the downstream analyses.
Every individual stage remains available for piecemeal use; this facade
wires them together the way the paper's methodology chains them:

    §3 data collection -> §4 leak detection -> §5 tracking analysis
    -> §6 policy audit (and, via :mod:`repro.protection` /
    :mod:`repro.blocklist`, the §7 countermeasure studies).

Crawling goes through the single entry point :meth:`Study.crawl`, which
dispatches on ``config.workers`` (serial session vs. sharded
multi-process engine) and handles checkpoint/resume for both.  The
pipeline is observable end to end: give the config a
:class:`repro.obs.Recorder` (``StudyConfig.with_observability()``) and
every stage — crawl, token generation, detection, analysis — records
spans and counters without perturbing a single byte of the dataset
fingerprint.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..browser import BrowserProfile, RetryPolicy, vanilla_firefox
from ..crawler import CrawlDataset, CrawlSession, StudyCrawler
from ..mailsim import KIND_MARKETING
from ..netsim.faults import FaultPlan
from ..obs import NULL_RECORDER, Recorder
from ..policy import PolicyVerdict, classify_policies, policies_for_sites
from ..policy import table3 as policy_table3
from ..tracking import PersistenceAnalyzer, PersistenceReport
from .analysis import LeakAnalysis
from .assets import CompiledStudyAssets
from .heuristics import HeuristicDetector, SuspectedLeak
from .leakmodel import LeakEvent
from .tokens import CandidateTokenSet, TokenSetConfig


class StudyConfig:
    """Tunables for a full study run (all fields keyword-only).

    ``fault_plan`` injects seeded network faults into the crawl (see
    :mod:`repro.netsim.faults`); when set, the crawler runs its resilient
    network path with ``retry_policy`` (defaulting to a standard
    :class:`~repro.browser.RetryPolicy`).

    ``workers`` selects the crawl engine: ``1`` (default) is the
    historical single-session serial crawl; ``N > 1`` fans the
    population's shards out over N worker processes via
    :class:`~repro.crawler.ParallelCrawler` and merges to a dataset
    whose fingerprint is invariant to the worker count.  ``num_shards``
    pins the shard layout (default:
    :func:`~repro.crawler.default_shard_count`, which is independent of
    ``workers`` so fingerprints stay comparable across machines).

    ``recorder`` opts the whole pipeline into structured tracing (see
    :mod:`repro.obs`); prefer :meth:`with_observability` over setting
    it by hand.  ``None`` (the default) records nothing and costs
    nothing.

    ``progress`` is a live heartbeat sink — any callable taking a
    :class:`repro.obs.progress.HeartbeatEvent`, typically a
    :class:`repro.obs.progress.ProgressAggregator` — fed one event per
    crawled site by whichever crawl engine runs.  Like tracing,
    progress never changes a dataset fingerprint.

    ``resources=True`` attaches CPU/RSS/GC samples
    (:class:`repro.obs.runtime.ResourceSampler`) to each heartbeat, so
    per-shard cost lands in ``progress.jsonl``, the study manifest and
    the progress snapshot.  It needs a ``progress`` sink to ride on
    (inert otherwise, except through the parallel engine's
    ``result.resources``) and, like progress itself, never changes a
    dataset fingerprint or a trace.

    ``supervision`` (a :class:`~repro.crawler.SupervisorConfig`) tunes
    the supervised parallel executor — watchdog heartbeat deadline,
    per-shard retry budget, graceful-shutdown drain timeout; ``None``
    uses the defaults.  ``chaos`` (a :class:`~repro.crawler.ChaosPlan`)
    injects seeded worker faults for supervision testing; it requires
    ``workers > 1``.  Both are inert on the serial path.

    ``assets`` (a :class:`~repro.core.assets.CompiledStudyAssets`)
    supplies a prebuilt compile-once bundle — token automaton, compiled
    blocklists, PSL — for the hot path; ``None`` (the default) lets the
    study compile its own on first use.  Pass one to share compiled
    state across several studies over the same population.
    """

    _FIELDS = ("profile", "token_config", "fault_plan", "retry_policy",
               "workers", "num_shards", "recorder", "progress",
               "resources", "supervision", "chaos", "assets")

    def __init__(self, *,
                 profile: Optional[BrowserProfile] = None,
                 token_config: Optional[TokenSetConfig] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 workers: int = 1,
                 num_shards: Optional[int] = None,
                 recorder: Optional[Recorder] = None,
                 progress: Optional[object] = None,
                 resources: bool = False,
                 supervision: Optional[object] = None,
                 chaos: Optional[object] = None,
                 assets: Optional[CompiledStudyAssets] = None) -> None:
        self.profile = profile
        self.token_config = token_config
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.workers = workers
        self.num_shards = num_shards
        self.recorder = recorder
        self.progress = progress
        self.resources = resources
        self.supervision = supervision
        self.chaos = chaos
        self.assets = assets

    def replace(self, **changes: object) -> "StudyConfig":
        """A copy of this config with ``changes`` applied.

        Raises :class:`TypeError` for names that are not config fields.
        """
        unknown = set(changes) - set(self._FIELDS)
        if unknown:
            raise TypeError("unknown StudyConfig field(s): %s"
                            % ", ".join(sorted(unknown)))
        values = {name: getattr(self, name) for name in self._FIELDS}
        values.update(changes)
        return StudyConfig(**values)

    def with_observability(self,
                           recorder: Optional[Recorder] = None
                           ) -> "StudyConfig":
        """A copy of this config with tracing enabled.

        ``recorder`` defaults to a fresh :class:`repro.obs.Recorder`
        (deterministic tick clock).  This is the supported way to turn
        tracing on — through config, not a side-channel global — so two
        studies can trace independently in one process.
        """
        return self.replace(recorder=recorder or Recorder())

    def __repr__(self) -> str:
        parts = ", ".join("%s=%r" % (name, getattr(self, name))
                          for name in self._FIELDS)
        return "StudyConfig(%s)" % parts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StudyConfig):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in self._FIELDS)


@dataclass
class CrawlOutcome:
    """What :meth:`Study.crawl` produced.

    ``fault_plan`` carries the executed fault events (merged across
    shards for a parallel crawl) for crawl-health reporting; ``None``
    when no faults were injected.  ``recorder`` is the study's recorder
    when tracing was enabled — after a parallel crawl it already holds
    the per-shard traces merged in layout order.

    ``complete`` is False when a supervised parallel crawl came back
    partial (shards quarantined, or a graceful shutdown landed first) —
    the dataset then holds only the salvaged shards and its fingerprint
    is not covered by the invariance contract.  ``incomplete_shards``
    names what is missing and ``supervision`` (a
    :class:`~repro.crawler.SupervisionOutcome`) carries the executor's
    decisions: retries, watchdog trips, quarantines, shutdown.
    """

    dataset: CrawlDataset
    fault_plan: Optional[FaultPlan] = None
    recorder: Optional[Recorder] = None
    complete: bool = True
    incomplete_shards: tuple = ()
    supervision: Optional[object] = None


@dataclass
class StudyResult:
    """Everything a full study run produced."""

    dataset: CrawlDataset
    tokens: CandidateTokenSet
    events: List[LeakEvent]
    analysis: LeakAnalysis
    persistence: PersistenceReport
    policy_verdicts: List[PolicyVerdict]
    leaking_request_count: int
    #: Heuristic findings (salted/unknown identifiers) the exact detector
    #: could not confirm — disjoint from ``events`` by construction.
    suspected_leaks: List[SuspectedLeak] = field(default_factory=list)

    @property
    def table3_counts(self) -> Dict[str, int]:
        return policy_table3(self.policy_verdicts)

    def marketing_mail_counts(self) -> Dict[str, int]:
        """{'inbox': n, 'spam': m} marketing-only counts (§4.2.3)."""
        mailbox = self.dataset.mailbox
        return {
            "inbox": len(mailbox.messages(folder="inbox",
                                          kind=KIND_MARKETING)),
            "spam": len(mailbox.messages(folder="spam",
                                         kind=KIND_MARKETING)),
        }

    def third_party_mail_senders(self) -> List[str]:
        """Mail senders that are leak receivers (paper observed none)."""
        receivers = set(self.analysis.receivers())
        return [domain for domain in self.dataset.mailbox.sender_domains()
                if domain in receivers]

    def quarantined_sites(self) -> List[str]:
        """Sites the resilient crawl gave up on (never silently dropped)."""
        return self.dataset.quarantined_sites()


class Study:
    """The full reproduction pipeline over a population.

    ``population`` is the synthetic web to study; ``config`` a
    :class:`StudyConfig` (defaults apply when omitted);
    ``population_spec`` an optional picklable
    :class:`~repro.crawler.PopulationSpec` recipe the parallel engine
    uses to rebuild the population inside worker processes (``None``
    deep-copies the live population per shard).  The instance exposes
    each stage separately (:meth:`crawler`, :meth:`crawl`,
    :meth:`analyze`) plus the one-call :meth:`run`.
    """

    def __init__(self, population,
                 config: Optional[StudyConfig] = None,
                 population_spec=None) -> None:
        self.population = population
        self.config = config or StudyConfig()
        self.population_spec = population_spec
        self._assets: Optional[CompiledStudyAssets] = None

    def assets(self) -> CompiledStudyAssets:
        """The study's compile-once asset bundle.

        ``config.assets`` when one was supplied, otherwise a bundle
        compiled (lazily, once) from this study's population, spec and
        token config.  Every stage — parallel fan-out, detection,
        analysis — draws from this single bundle.
        """
        if self.config.assets is not None:
            return self.config.assets
        if self._assets is None:
            self._assets = CompiledStudyAssets.for_population(
                self.population, population_spec=self.population_spec,
                token_config=self.config.token_config)
        return self._assets

    @classmethod
    def calibrated(cls, config: Optional[StudyConfig] = None) -> "Study":
        """A study over the paper-calibrated shopping population.

        Returns a :class:`Study` whose ``spec`` attribute carries the
        full calibrated :class:`~repro.websim.shopping` study spec and
        whose ``population_spec`` is the cheap picklable
        :class:`~repro.crawler.CalibratedPopulationSpec` recipe.
        """
        from ..crawler import CalibratedPopulationSpec
        from ..websim.shopping import build_study_population
        spec = build_study_population()
        study = cls(spec.population, config=config,
                    population_spec=CalibratedPopulationSpec())
        study.spec = spec
        return study

    # -- crawling --------------------------------------------------------

    def crawler(self) -> StudyCrawler:
        """The configured serial crawler (fault plan and retries applied)."""
        profile = self.config.profile or vanilla_firefox()
        return StudyCrawler(self.population, profile=profile,
                            fault_plan=self.config.fault_plan,
                            retry_policy=self.config.retry_policy,
                            recorder=self.config.recorder)

    def crawl(self, checkpoint: Optional[str] = None,
              resume: Optional[str] = None) -> CrawlOutcome:
        """Crawl the population — the single crawl entry point.

        Dispatches on ``config.workers``: ``1`` runs the serial
        :class:`~repro.crawler.CrawlSession`, ``N > 1`` the sharded
        :class:`~repro.crawler.ParallelCrawler`; either way the
        resulting dataset's fingerprint depends only on (population,
        fault seed, shard layout).

        ``checkpoint``/``resume`` follow the CLI semantics: for a
        serial crawl they name a checkpoint *file* (saved after every
        site / loaded before crawling); for a parallel crawl they name
        a *directory* of per-shard checkpoints (resume simply points at
        the directory a previous run checkpointed into).
        ``resume=True`` means "resume from ``checkpoint``" with
        resume-or-start semantics: whatever state the interrupted run
        left there (per-shard checkpoints plus the study manifest a
        graceful shutdown wrote) is picked up exactly, and a clean
        directory/missing file simply starts fresh — so one invocation
        is safe to re-run until it completes.  Raises
        :class:`~repro.crawler.CheckpointError` (or :class:`OSError`)
        when a resume source is unusable, and :class:`ValueError` for
        ``resume=True`` without a ``checkpoint`` target.
        """
        resume_or_start = resume is True
        if resume_or_start:
            if not checkpoint:
                raise ValueError(
                    "crawl(resume=True) resumes from the checkpoint "
                    "target; pass checkpoint= as well")
            resume = checkpoint
        recorder = self.config.recorder
        rec = recorder or NULL_RECORDER
        with rec.span("crawl", kind="stage"):
            if self.config.workers > 1:
                engine = self._parallel_engine(
                    checkpoint_dir=resume or checkpoint)
                result = engine.run()
                return CrawlOutcome(dataset=result.dataset,
                                    fault_plan=result.fault_plan,
                                    recorder=recorder,
                                    complete=result.complete,
                                    incomplete_shards=result.incomplete_shards,
                                    supervision=result.supervision)
            if resume is not None and \
                    (os.path.exists(resume) or not resume_or_start):
                session = CrawlSession.load(resume, expect_shard=None)
            else:
                session = self.crawler().start()
            emit = self.config.progress
            total = session.crawled_count + len(session.remaining_sites)
            retried = quarantined = 0
            sampler = None
            if emit is not None and self.config.resources:
                from ..obs.runtime import ResourceSampler
                sampler = ResourceSampler()
            while not session.done:
                entries_before = len(session.browser.log.entries)
                result = session.step()
                if checkpoint:
                    session.save(checkpoint)
                if emit is not None and result is not None:
                    from ..crawler.flows import STATUS_QUARANTINED
                    from ..obs.progress import step_heartbeat
                    retried += 1 if result.attempts > 1 else 0
                    quarantined += (1 if result.status == STATUS_QUARANTINED
                                    else 0)
                    emit(step_heartbeat(
                        shard=0, crawled=session.crawled_count,
                        total=total, domain=result.site,
                        status=result.status, attempts=result.attempts,
                        requests=(len(session.browser.log.entries)
                                  - entries_before),
                        retried=retried, quarantined=quarantined,
                        resources=(sampler.sample() if sampler is not None
                                   else None)))
            if emit is not None:
                from ..obs.progress import final_heartbeat
                emit(final_heartbeat(shard=0,
                                     crawled=session.crawled_count,
                                     total=total, retried=retried,
                                     quarantined=quarantined,
                                     resources=(sampler.sample()
                                                if sampler is not None
                                                else None)))
            dataset = session.finish()
            if recorder is not None and session.recorder is not recorder:
                # A resumed session carries its own (pickled) recorder;
                # graft its history under this study's crawl span.
                recorder.adopt(session.recorder)
            return CrawlOutcome(dataset=dataset,
                                fault_plan=session.fault_plan,
                                recorder=recorder)

    def _parallel_engine(self, checkpoint_dir: Optional[str] = None):
        """The sharded multi-process engine for this study's population."""
        from ..crawler import ParallelCrawler, PrebuiltPopulationSpec
        spec = self.population_spec or PrebuiltPopulationSpec(self.population)
        return ParallelCrawler(spec, assets=self.assets(),
                               workers=self.config.workers,
                               num_shards=self.config.num_shards,
                               profile=self.config.profile or vanilla_firefox(),
                               fault_plan=self.config.fault_plan,
                               retry_policy=self.config.retry_policy,
                               checkpoint_dir=checkpoint_dir,
                               recorder=self.config.recorder,
                               progress=self.config.progress,
                               resources=self.config.resources,
                               supervision=self.config.supervision,
                               chaos=self.config.chaos)

    # -- deprecated crawl surfaces --------------------------------------

    def parallel_crawler(self, checkpoint_dir: Optional[str] = None):
        """Deprecated: use :meth:`crawl` (or build a
        :class:`~repro.crawler.ParallelCrawler` directly)."""
        warnings.warn(
            "Study.parallel_crawler() is deprecated; use Study.crawl(), "
            "which dispatches on config.workers",
            DeprecationWarning, stacklevel=2)
        return self._parallel_engine(checkpoint_dir=checkpoint_dir)

    def start_crawl(self) -> CrawlSession:
        """Deprecated: use :meth:`crawl` (or ``crawler().start()`` for a
        stepwise session)."""
        warnings.warn(
            "Study.start_crawl() is deprecated; use Study.crawl() for a "
            "full crawl or Study.crawler().start() for a stepwise session",
            DeprecationWarning, stacklevel=2)
        return self.crawler().start()

    # -- the pipeline ----------------------------------------------------

    def run(self) -> StudyResult:
        """Crawl, detect, and analyze; returns the combined result.

        Uses the serial engine for ``config.workers == 1`` and the
        sharded parallel engine otherwise; either way the analysis runs
        over the complete merged dataset.  Raises
        :class:`~repro.crawler.IncompleteCrawlError` when a supervised
        crawl came back partial — the one-call pipeline never analyzes
        (or fingerprints) an incomplete merge; use :meth:`crawl` +
        :meth:`analyze` to work with salvaged partial datasets
        explicitly.
        """
        rec = self.config.recorder or NULL_RECORDER
        with rec.span("study"):
            outcome = self.crawl()
            if not outcome.complete:
                from ..crawler import IncompleteCrawlError
                raise IncompleteCrawlError(
                    "study crawl incomplete: shards %s missing (see "
                    "outcome.supervision); rerun or resume before "
                    "analysis" % ", ".join(
                        str(index)
                        for index in outcome.incomplete_shards),
                    incomplete_shards=outcome.incomplete_shards)
            return self.analyze(outcome.dataset)

    def analyze(self, dataset: CrawlDataset) -> StudyResult:
        """Detect and analyze an existing (possibly partial) dataset.

        Works on datasets from interrupted-and-resumed or fault-heavy
        crawls: analysis runs over whatever the crawl captured, sites the
        crawl quarantined stay visible via ``dataset.status_counts()``
        and are never silently dropped.
        """
        recorder = self.config.recorder
        rec = recorder or NULL_RECORDER
        population = dataset.population
        if population is self.population:
            assets = self.assets()
        else:
            # A dataset from some other population (loaded from disk,
            # partial salvage, ...): compile a one-off bundle for it.
            assets = CompiledStudyAssets.for_population(
                population, token_config=self.config.token_config)

        with rec.span("tokens", kind="stage"):
            tokens = assets.tokens()
            # The funnel counters a fresh per-call construction would
            # have recorded, replayed so traces stay bit-identical.
            assets.replay_token_funnel(recorder)
        with rec.span("detect", kind="stage"):
            detector = assets.detector(recorder=recorder)
            detection = detector.run(dataset.log)
            events = detection.events
            leaking_request_count = detection.leaking_entry_count
        with rec.span("analysis", kind="stage"):
            analysis = LeakAnalysis(events)
            persistence = PersistenceAnalyzer(events).report()
            rec.count("analysis.receivers", len(analysis.receivers()))
        with rec.span("heuristics", kind="stage"):
            heuristics = HeuristicDetector(
                known_tokens={event.token for event in events})
            suspected = heuristics.detect(dataset.log)
            rec.count("heuristics.suspected_leaks", len(suspected))
        with rec.span("policy", kind="stage"):
            site_classes = {
                domain: population.sites[domain].policy_class
                for domain in analysis.senders()
                if domain in population.sites
                and population.sites[domain].policy_class is not None}
            verdicts = classify_policies(policies_for_sites(site_classes))
            rec.count("policy.verdicts", len(verdicts))

        return StudyResult(
            dataset=dataset,
            tokens=tokens,
            events=events,
            analysis=analysis,
            persistence=persistence,
            policy_verdicts=verdicts,
            leaking_request_count=leaking_request_count,
            suspected_leaks=suspected,
        )
