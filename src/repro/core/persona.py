"""Persona creation (§3.1).

The paper fills every sign-up form with a fixed persona — username, name,
phone, email address, date of birth, gender, job title and postal address —
and considers *any* information input by the user to be PII.  The persona is
therefore the ground truth the detector searches for.

Each PII category exposes its *surface forms*: the textual variants a site
or tracker might serialize (e.g. ``John Smith`` vs ``john.smith`` vs the
individual name parts), because trackers hash whichever form their snippet
happens to read from the form or the data layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# PII categories, following the paper's Table 1c terminology.
PII_EMAIL = "email"
PII_USERNAME = "username"
PII_NAME = "name"
PII_PHONE = "phone"
PII_DOB = "dob"
PII_GENDER = "gender"
PII_JOB = "job"
PII_ADDRESS = "address"

PII_TYPES = (
    PII_EMAIL,
    PII_USERNAME,
    PII_NAME,
    PII_PHONE,
    PII_DOB,
    PII_GENDER,
    PII_JOB,
    PII_ADDRESS,
)


@dataclass(frozen=True)
class Persona:
    """The simulated user whose PII seeds both forms and detection."""

    # The mailbox-local part deliberately avoids the persona's name parts so
    # that a plaintext email match is never simultaneously a name match
    # (keeps Table 1c's PII-type categories disjoint at the token level).
    email: str = "ar.shopper.2091@pmail.example"
    username: str = "alexromero91"
    first_name: str = "Alex"
    last_name: str = "Romero"
    phone: str = "+81-90-5501-2763"
    date_of_birth: str = "1991-03-14"
    gender: str = "other"
    job_title: str = "research engineer"
    street: str = "2-1-2 Hitotsubashi"
    city: str = "Chiyoda-ku Tokyo"
    postcode: str = "101-8430"
    country: str = "JP"
    password: str = "N0t-A-Real-Secret!91"

    @property
    def full_name(self) -> str:
        return "%s %s" % (self.first_name, self.last_name)

    def form_fields(self) -> Dict[str, str]:
        """Canonical field-name -> value mapping used to fill forms."""
        return {
            "email": self.email,
            "username": self.username,
            "first_name": self.first_name,
            "last_name": self.last_name,
            "name": self.full_name,
            "phone": self.phone,
            "dob": self.date_of_birth,
            "gender": self.gender,
            "job_title": self.job_title,
            "street": self.street,
            "city": self.city,
            "postcode": self.postcode,
            "country": self.country,
            "password": self.password,
        }

    def surface_forms(self) -> Dict[str, Tuple[str, ...]]:
        """PII type -> textual variants a leaking script might serialize.

        Variants cover the casings and concatenations observed in the wild:
        trackers hash emails lower-cased (Facebook's advanced matching
        normalization), send names as given, joined, or lower-cased, and
        strip phone numbers to digits.
        """
        email = self.email
        phone_digits = "".join(ch for ch in self.phone if ch.isdigit())
        return {
            PII_EMAIL: _dedupe((email, email.lower(), email.upper())),
            PII_USERNAME: _dedupe((self.username, self.username.lower())),
            PII_NAME: _dedupe((
                self.full_name,
                self.full_name.lower(),
                self.first_name,
                self.last_name,
                "%s.%s" % (self.first_name.lower(), self.last_name.lower()),
                "%s+%s" % (self.first_name, self.last_name),
            )),
            PII_PHONE: _dedupe((self.phone, phone_digits)),
            PII_DOB: _dedupe((self.date_of_birth,
                              self.date_of_birth.replace("-", ""))),
            PII_GENDER: (self.gender,),
            PII_JOB: _dedupe((self.job_title, self.job_title.lower())),
            PII_ADDRESS: _dedupe((self.street, self.city, self.postcode)),
        }


def _dedupe(values: Tuple[str, ...]) -> Tuple[str, ...]:
    seen: List[str] = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return tuple(seen)


#: The persona used throughout the study, mirroring the paper's single
#: fixed persona created in May 2021.
DEFAULT_PERSONA = Persona()
