"""PII leakage detection (§4.1).

Given the raw capture log of a crawl, the detector:

1. classifies every request as first-party or third-party using the Public
   Suffix List, additionally re-classifying first-party subdomains whose
   CNAME chains land in known tracker zones (CNAME cloaking);
2. scans each third-party request for candidate PII tokens — in the
   request URI (per query parameter and in the path), the ``Referer``
   header, the ``Cookie`` header, and the payload body (urlencoded, JSON,
   and raw text) — in every plaintext/encoded/hashed form the candidate
   token set enumerates;
3. emits one :class:`~repro.core.leakmodel.LeakEvent` per distinct
   observation, attributed to the receiving tracker service.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dnssim import CnameCloakingDetector, Resolver
from ..obs import NULL_RECORDER, Recorder
from ..netsim import (
    CaptureEntry,
    CaptureLog,
    HttpRequest,
    decode_json,
    decode_urlencoded,
    flatten_json,
    percent_decode,
)
from ..psl import PublicSuffixList, default_list
from ..websim.trackers import TrackerCatalog
from .leakmodel import (
    LOCATION_BODY,
    LOCATION_COOKIE,
    LOCATION_PATH,
    LOCATION_QUERY,
    LOCATION_REFERER,
    LeakEvent,
    channel_for_location,
)
from .tokens import CandidateTokenSet, TokenOrigin


@dataclass(frozen=True)
class _Attribution:
    """How a request host was attributed to a third party."""

    receiver: str
    cloaked: bool


@dataclass
class DetectionResult:
    """Everything one pass over a capture log produces.

    Replaces the old ``detect()`` + ``leaking_requests()`` pair, which
    walked (and re-scanned) the log twice to get events and leaking
    entries separately.
    """

    events: List[LeakEvent]
    leaking_entries: List[CaptureEntry]
    entries_scanned: int
    entries_blocked_skipped: int

    @property
    def leaking_entry_count(self) -> int:
        return len(self.leaking_entries)


class LeakDetector:
    """Scans capture logs for PII leaks to third parties."""

    def __init__(self, tokens: CandidateTokenSet,
                 catalog: Optional[TrackerCatalog] = None,
                 resolver: Optional[Resolver] = None,
                 psl: Optional[PublicSuffixList] = None,
                 scan_first_party: bool = False,
                 locations: Optional[Sequence[str]] = None,
                 recorder: Optional[Recorder] = None) -> None:
        """``locations`` restricts which request parts are scanned (for
        ablation studies, e.g. URL-only detection as in prior work);
        ``None`` scans everything.  ``recorder`` (a
        :class:`repro.obs.Recorder`) records detection-funnel counters
        — entries scanned, pruned and matched — at no cost when left
        ``None``."""
        self.tokens = tokens
        self.recorder = recorder or NULL_RECORDER
        self.catalog = catalog
        self.psl = psl or default_list()
        self.scan_first_party = scan_first_party
        self.locations = frozenset(locations) if locations else None
        self._cloaking = (CnameCloakingDetector(resolver, psl=self.psl)
                          if resolver is not None else None)
        if self._cloaking is not None and catalog is not None:
            # Catalog-declared cloaking zones extend the published
            # blocklists (covers custom/simulated cloaked services).
            for service in catalog.services():
                if service.cloaked_zone:
                    self._cloaking.add_zone(service.cloaked_zone,
                                            service.organisation)
        self._attribution_cache: Dict[Tuple[str, str],
                                      Optional[_Attribution]] = {}

    # -- public API --------------------------------------------------------

    def run(self, log: CaptureLog, include_blocked: bool = False,
            record: bool = True) -> DetectionResult:
        """One pass over a capture log: events *and* leaking entries.

        With a recorder attached (and ``record`` true), the §4.1
        detection funnel becomes visible as counters: how many entries
        were scanned vs. skipped as blocked, how many produced at least
        one event, and how many events survived in total.  ``record``
        exists so deprecated wrappers can reuse the pass without
        double-emitting counters.
        """
        events: List[LeakEvent] = []
        leaking_entries: List[CaptureEntry] = []
        scanned = skipped = 0
        for entry in log:
            if entry.was_blocked and not include_blocked:
                skipped += 1
                continue
            scanned += 1
            found = self.detect_entry(entry)
            if found:
                leaking_entries.append(entry)
            events.extend(found)
        if record:
            recorder = self.recorder
            recorder.count("detector.entries_scanned", scanned)
            recorder.count("detector.entries_blocked_skipped", skipped)
            recorder.count("detector.entries_leaking", len(leaking_entries))
            recorder.count("detector.events", len(events))
        return DetectionResult(events=events, leaking_entries=leaking_entries,
                               entries_scanned=scanned,
                               entries_blocked_skipped=skipped)

    def detect(self, log: CaptureLog,
               include_blocked: bool = False) -> List[LeakEvent]:
        """All leak events in a capture log (see :meth:`run`)."""
        return self.run(log, include_blocked=include_blocked).events

    def detect_entry(self, entry: CaptureEntry) -> List[LeakEvent]:
        """Leak events for a single capture entry."""
        site_host = "www." + entry.site
        attribution = self._attribute(entry.request.url.host, site_host)
        if attribution is None:
            return []
        events: List[LeakEvent] = []
        seen: Set[Tuple] = set()
        for location, parameter, text in self._scan_targets(entry.request):
            if not text:
                continue
            if self.locations is not None and \
                    location not in self.locations:
                continue
            for origin in self.tokens.scan_distinct(text):
                token = self._token_for(origin, text)
                key = (location, parameter, origin.pii_type, origin.chain)
                if key in seen:
                    continue
                seen.add(key)
                events.append(LeakEvent(
                    sender=entry.site,
                    receiver=attribution.receiver,
                    request_host=entry.request.url.host,
                    channel=channel_for_location(location),
                    location=location,
                    pii_type=origin.pii_type,
                    chain=origin.chain,
                    parameter=parameter,
                    stage=entry.stage,
                    url=str(entry.request.url),
                    cloaked=attribution.cloaked,
                    surface_form=origin.surface_form,
                    token=token,
                    timestamp=entry.request.timestamp,
                ))
        return events

    # -- attribution --------------------------------------------------------

    def _attribute(self, host: str, site_host: str) -> Optional[_Attribution]:
        """Receiver attribution for a request host (None = first party)."""
        cache_key = (host, site_host)
        if cache_key in self._attribution_cache:
            return self._attribution_cache[cache_key]
        attribution = self._attribute_uncached(host, site_host)
        self._attribution_cache[cache_key] = attribution
        return attribution

    def _attribute_uncached(self, host: str,
                            site_host: str) -> Optional[_Attribution]:
        # Counter totals are per unique (host, site) pair — the cache
        # guarantees one uncached call each — so they are independent
        # of scan order and of how the crawl was sharded.
        if self.psl.is_third_party(host, site_host):
            receiver = self._service_domain(host)
            self.recorder.count("detector.attribution.third_party")
            return _Attribution(receiver=receiver, cloaked=False)
        # First-party by registrable domain: check for CNAME cloaking.
        if self._cloaking is not None:
            verdict = self._cloaking.classify(host, site_host)
            if verdict.cloaked and verdict.tracker_zone is not None:
                self.recorder.count("detector.attribution.cloaked")
                return _Attribution(receiver=verdict.tracker_zone,
                                    cloaked=True)
        self.recorder.count("detector.attribution.first_party")
        if self.scan_first_party:
            return _Attribution(receiver=self._service_domain(host),
                                cloaked=False)
        return None

    def _service_domain(self, host: str) -> str:
        if self.catalog is not None:
            service = self.catalog.attribute_host(host)
            if service is not None:
                return service.domain
        return self.psl.registrable_domain(host) or host

    # -- scan target extraction ---------------------------------------------

    def _scan_targets(self, request: HttpRequest):
        """Yield (location, parameter, text) tuples to scan."""
        url = request.url
        for name, value in url.query:
            yield LOCATION_QUERY, name, value
        yield LOCATION_PATH, None, percent_decode(url.path)

        referer = request.referer
        if referer:
            yield LOCATION_REFERER, None, percent_decode(referer)

        cookie_header = request.cookie_header
        if cookie_header:
            for pair in cookie_header.split(";"):
                name, _, value = pair.strip().partition("=")
                yield LOCATION_COOKIE, name, value

        if request.body:
            yield from self._body_targets(request)

    def _body_targets(self, request: HttpRequest):
        content_type = (request.headers.get("Content-Type") or "").lower()
        body_text = request.body_text()
        if "json" in content_type:
            payload = decode_json(request.body)
            if payload is not None:
                for key, value in flatten_json(payload):
                    yield LOCATION_BODY, key, value
                return
        if "urlencoded" in content_type or ("=" in body_text
                                            and "{" not in body_text):
            for name, value in decode_urlencoded(request.body):
                yield LOCATION_BODY, name, value
            return
        yield LOCATION_BODY, None, body_text

    def _token_for(self, origin: TokenOrigin, text: str) -> str:
        """Reconstruct the matched token for reporting."""
        from .. import hashes
        if not origin.chain:
            return origin.surface_form
        return hashes.apply_chain(origin.surface_form, origin.chain)


def leaking_requests(log: CaptureLog, detector: LeakDetector) -> List[CaptureEntry]:
    """Capture entries containing at least one leak (paper's 1,522).

    .. deprecated::
        Use :meth:`LeakDetector.run`, whose :class:`DetectionResult`
        carries the leaking entries from the same single pass that
        produced the events, instead of re-scanning the log.
    """
    warnings.warn(
        "leaking_requests() is deprecated; use LeakDetector.run(log)"
        ".leaking_entries, which shares the detection pass",
        DeprecationWarning, stacklevel=2)
    # record=False: the historical helper never emitted funnel counters.
    return detector.run(log, record=False).leaking_entries
