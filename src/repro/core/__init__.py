"""Core contribution: persona, candidate tokens, leak detection, analysis,
and the end-to-end study pipeline."""

from .aho import AhoCorasick, Match
from .assets import CompiledStudyAssets, StudyAssetsSpec
from .analysis import (
    BreakdownRow,
    ENCODING_ROWS,
    LeakAnalysis,
    LeakRelationship,
    encoding_label,
)
from .detector import DetectionResult, LeakDetector, leaking_requests
from .heuristics import (
    HeuristicDetector,
    SuspectedLeak,
    looks_like_identifier,
    suspicious_parameter,
)
from .leakmodel import (
    CHANNEL_COOKIE,
    CHANNEL_PAYLOAD,
    CHANNEL_REFERER,
    CHANNEL_URI,
    CHANNELS,
    LeakEvent,
    channel_for_location,
)
from .persona import (
    DEFAULT_PERSONA,
    PII_ADDRESS,
    PII_DOB,
    PII_EMAIL,
    PII_GENDER,
    PII_JOB,
    PII_NAME,
    PII_PHONE,
    PII_TYPES,
    PII_USERNAME,
    Persona,
)
from .pipeline import CrawlOutcome, Study, StudyConfig, StudyResult
from .tokens import CandidateTokenSet, TokenOrigin, TokenSetConfig

__all__ = [
    "AhoCorasick",
    "BreakdownRow",
    "CHANNELS",
    "CHANNEL_COOKIE",
    "CHANNEL_PAYLOAD",
    "CHANNEL_REFERER",
    "CHANNEL_URI",
    "CandidateTokenSet",
    "CompiledStudyAssets",
    "CrawlOutcome",
    "DetectionResult",
    "DEFAULT_PERSONA",
    "ENCODING_ROWS",
    "HeuristicDetector",
    "SuspectedLeak",
    "looks_like_identifier",
    "suspicious_parameter",
    "LeakAnalysis",
    "LeakDetector",
    "LeakEvent",
    "LeakRelationship",
    "Match",
    "PII_ADDRESS",
    "PII_DOB",
    "PII_EMAIL",
    "PII_GENDER",
    "PII_JOB",
    "PII_NAME",
    "PII_PHONE",
    "PII_TYPES",
    "PII_USERNAME",
    "Persona",
    "Study",
    "StudyAssetsSpec",
    "StudyConfig",
    "StudyResult",
    "TokenOrigin",
    "TokenSetConfig",
    "channel_for_location",
    "encoding_label",
    "leaking_requests",
]
