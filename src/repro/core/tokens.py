"""Candidate token precomputation (§3.1).

The paper pre-computes, for every PII value, the set of strings produced by
"all supported encodings, hashes, and checksums", chained up to three layers
deep.  A leak is then found by searching raw HTTP traffic for any of those
strings.

Enumerating the *full* transform corpus at every chain depth is
combinatorially explosive (33^3 per surface form), so the default
configuration mirrors how the search space behaves in practice:

* depth 1 applies the entire corpus (trackers pick arbitrary single
  transforms);
* depths 2-3 chain over the alphabet of transforms actually observed in
  multi-layer obfuscations (base64/md5/sha1/sha256 — Table 1b's "SHA256 of
  MD5" and "BASE64, SHA1 and SHA256" forms).

Both knobs are configurable; ``benchmarks/bench_ablation_depth.py`` measures
the recall/cost trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import hashes
from ..obs import NULL_RECORDER, Recorder
from .aho import AhoCorasick, Match
from .persona import Persona

_HEX_CHARS = set("0123456789abcdef")


@dataclass(frozen=True)
class TokenOrigin:
    """Provenance of one candidate token."""

    pii_type: str
    surface_form: str
    chain: Tuple[str, ...]  # () for plaintext

    @property
    def encoding_label(self) -> str:
        return hashes.chain_label(self.chain)


@dataclass(frozen=True)
class TokenSetConfig:
    """Tuning for candidate-set generation."""

    max_depth: int = 3
    full_corpus_depth: int = 1
    chain_alphabet: Tuple[str, ...] = hashes.OBSERVED_CHAIN_ALPHABET
    min_token_length: int = 6
    include_case_variants: bool = True

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.full_corpus_depth > self.max_depth:
            raise ValueError("full_corpus_depth cannot exceed max_depth")
        unknown = [n for n in self.chain_alphabet if not hashes.has(n)]
        if unknown:
            raise ValueError("unknown transforms: %s" % unknown)


class CandidateTokenSet:
    """All strings whose appearance in traffic constitutes a PII leak."""

    #: Funnel counter names, in the order they are replayed.
    FUNNEL_COUNTERS = ("tokens.pruned_too_short", "tokens.origins",
                      "tokens.duplicate_origins")

    def __init__(self, persona: Persona,
                 config: Optional[TokenSetConfig] = None,
                 recorder: Optional[Recorder] = None) -> None:
        """``recorder`` (a :class:`repro.obs.Recorder`) records the
        candidate-generation funnel — tokens emitted, pruned as too
        short, and deduplicated — as counters and gauges."""
        self.persona = persona
        self.config = config or TokenSetConfig()
        self.recorder = recorder or NULL_RECORDER
        self._origins: Dict[str, List[TokenOrigin]] = {}
        self._automaton: AhoCorasick[TokenOrigin] = AhoCorasick()
        # Funnel tallies are kept as plain ints so a precomputed token
        # set can *replay* them into any recorder later (see
        # `replay_funnel`) — that is what keeps traces identical when
        # `CompiledStudyAssets` builds the set once and reuses it.
        self.funnel_counts: Dict[str, int] = {
            name: 0 for name in self.FUNNEL_COUNTERS}
        self._scan_distinct_memo: Dict[str, List[TokenOrigin]] = {}
        self._generate()
        self._automaton.build()
        self.replay_funnel(self.recorder)

    # -- generation --------------------------------------------------------

    def _generate(self) -> None:
        all_names = [t.name for t in hashes.all_transforms()]
        config = self.config
        alphabet = config.chain_alphabet
        for pii_type, forms in self.persona.surface_forms().items():
            for form in forms:
                self._add_token(form, TokenOrigin(pii_type, form, ()))
                # Chains share prefixes massively (every depth-d chain
                # extends a depth-(d-1) chain over the same alphabet),
                # so each level is derived from the previous level's
                # values with exactly one transform application per
                # chain instead of re-walking the whole chain.  The
                # enumeration order below is identical to the naive
                # per-chain product in `_chains` — token insertion
                # order, and with it every downstream scan, must not
                # change.
                previous: Dict[Tuple[str, ...], str] = {(): form}
                for depth in range(1, config.max_depth + 1):
                    level: Dict[Tuple[str, ...], str] = {}
                    if depth <= config.full_corpus_depth:
                        first_choices: Sequence[str] = all_names
                    else:
                        first_choices = alphabet
                    if depth == 1:
                        for name in first_choices:
                            level[(name,)] = hashes.get(name).apply_text(form)
                    else:
                        for first in first_choices:
                            for mid in product(alphabet, repeat=depth - 2):
                                prefix = (first,) + mid
                                base = previous.get(prefix)
                                if base is None:
                                    base = hashes.apply_chain(form, prefix)
                                for last in alphabet:
                                    level[prefix + (last,)] = (
                                        hashes.get(last).apply_text(base))
                    for chain, token in level.items():
                        self._add_token(
                            token, TokenOrigin(pii_type, form, chain))
                    previous = level

    def _chains(self, all_names: Sequence[str]) -> Iterable[Tuple[str, ...]]:
        config = self.config
        for depth in range(1, config.max_depth + 1):
            if depth <= config.full_corpus_depth:
                first_choices: Sequence[str] = all_names
            else:
                first_choices = config.chain_alphabet
            if depth == 1:
                for name in first_choices:
                    yield (name,)
                continue
            for first in first_choices:
                for rest in product(config.chain_alphabet, repeat=depth - 1):
                    yield (first,) + rest

    def _add_token(self, token: str, origin: TokenOrigin) -> None:
        if len(token) < self.config.min_token_length:
            self.funnel_counts["tokens.pruned_too_short"] += 1
            return
        self._register(token, origin)
        if self.config.include_case_variants and _is_hex(token):
            self._register(token.upper(), origin)

    def _register(self, token: str, origin: TokenOrigin) -> None:
        bucket = self._origins.setdefault(token, [])
        if origin not in bucket:
            bucket.append(origin)
            self._automaton.add(token, origin)
            self.funnel_counts["tokens.origins"] += 1
        else:
            self.funnel_counts["tokens.duplicate_origins"] += 1

    def replay_funnel(self, recorder: Optional[Recorder]) -> None:
        """Emit the generation funnel into ``recorder``.

        Counter totals are order-independent aggregates, so replaying
        the saved tallies produces the exact counters/gauge a fresh
        construction with the same recorder would have recorded —
        letting precomputed token sets keep traces bit-identical.
        """
        if recorder is None or recorder is NULL_RECORDER:
            return
        for name in self.FUNNEL_COUNTERS:
            value = self.funnel_counts[name]
            if value:
                recorder.count(name, value)
        recorder.gauge("tokens.candidates", len(self._origins))

    # -- queries -----------------------------------------------------------

    @property
    def token_count(self) -> int:
        return len(self._origins)

    def tokens(self) -> List[str]:
        """All candidate tokens (deterministic order)."""
        return list(self._origins)

    def origins_of(self, token: str) -> List[TokenOrigin]:
        """Provenance records for an exact token."""
        return list(self._origins.get(token, []))

    def scan(self, text: str) -> List[Match[TokenOrigin]]:
        """All candidate-token occurrences in ``text`` (single pass)."""
        if not text:
            return []
        return self._automaton.find_all(text)

    def scan_distinct(self, text: str) -> List[TokenOrigin]:
        """Distinct origins whose token occurs in ``text``.

        Results are memoised per text: the same header values, URLs and
        cookie strings recur across thousands of captured requests, and
        the origin list is a pure function of the (immutable) token set.
        """
        cached = self._scan_distinct_memo.get(text)
        if cached is not None:
            return list(cached)
        seen: List[TokenOrigin] = []
        for match in self.scan(text):
            if match.payload not in seen:
                seen.append(match.payload)
        if len(self._scan_distinct_memo) >= 8192:
            self._scan_distinct_memo.clear()
        self._scan_distinct_memo[text] = seen
        return list(seen)

    def contains_leak(self, text: str) -> bool:
        """Fast check: does ``text`` contain any candidate token?"""
        return bool(text) and self._automaton.contains_any(text)


def _is_hex(token: str) -> bool:
    return len(token) >= 8 and all(ch in _HEX_CHARS for ch in token)
