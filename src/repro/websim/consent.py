"""Consent-management platforms (cookie banners).

The paper's §3.2 procedure "always accept[s] the default cookie settings
for pop-ups" — meaning every measured site ran its trackers with consent
granted.  This module models the mechanism so the *counterfactual* can be
studied too: what would rejecting every banner have changed?

A :class:`ConsentBanner` attaches a CMP (OneTrust/Quantcast/Didomi-style)
to a site.  The browser answers the banner according to its consent
policy, records the decision in a first-party ``euconsent`` cookie, and
sends the consent receipt to the CMP.  Sites that *honor* consent gate
their tracker snippets on the decision; sites configured with
``honors_consent=False`` model the dark-pattern operators §6 describes,
whose trackers fire regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Browser-side consent policies.
CONSENT_ACCEPT_ALL = "accept-all"       # the paper's §3.2 behaviour
CONSENT_REJECT_ALL = "reject-all"
CONSENT_ESSENTIAL_ONLY = "essential-only"

CONSENT_POLICIES = (CONSENT_ACCEPT_ALL, CONSENT_REJECT_ALL,
                    CONSENT_ESSENTIAL_ONLY)

#: The first-party cookie recording the user's decision.
CONSENT_COOKIE = "euconsent"

#: CMP provider domain -> operating organisation.
CMP_PROVIDERS: Dict[str, str] = {
    "cookielaw.org": "OneTrust",
    "consensu.org": "Quantcast Choice",
    "didomi.io": "Didomi",
    "usercentrics.eu": "Usercentrics",
}


@dataclass(frozen=True)
class ConsentBanner:
    """A site's cookie banner configuration."""

    provider: str                  # one of CMP_PROVIDERS
    honors_consent: bool = True    # False -> dark pattern: ignore refusal

    def __post_init__(self) -> None:
        if self.provider not in CMP_PROVIDERS:
            raise ValueError("unknown CMP provider: %r" % self.provider)

    @property
    def script_host(self) -> str:
        return "cdn.%s" % self.provider

    @property
    def script_path(self) -> str:
        return "/cmp/stub.js"

    @property
    def receipt_host(self) -> str:
        return "consent.%s" % self.provider


def grants_tracking(policy: str) -> bool:
    """Whether a browser policy allows non-essential trackers to run."""
    if policy not in CONSENT_POLICIES:
        raise ValueError("unknown consent policy: %r" % policy)
    return policy == CONSENT_ACCEPT_ALL
