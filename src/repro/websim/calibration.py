"""Calibrated leak-assignment plan for the shopping-site study.

The paper publishes, for its 130 leaking first parties and 100 third-party
receivers, a dense set of joint statistics: per-provider sender counts and
trackid parameters (Table 2), per-method / per-encoding / per-PII-type
breakdowns (Table 1), receiver-popularity ranking (Figure 2), and headline
degree statistics (§4.2).  This module *constructs a concrete bipartite
assignment* — which sender leaks what, to whom, over which channel, in
which encoding — that realizes those statistics simultaneously (exactly
where the paper pins a number, approximately where its own marginals are
mutually over-constrained; ``verify_plan`` reports every deviation).

The plan is pure data.  :mod:`repro.websim.shopping` turns it into actual
:class:`~repro.websim.site.Website` objects whose embedded tracker snippets
really emit the traffic, and the measured tables are produced by crawling
and detecting, never by echoing these targets.

Sender slots
============

Senders are integer slots ``0..129``; slot ranges are laid out so that the
encoding/method *unions* across receivers land on the paper's sender
marginals (e.g. Facebook's 72 SHA256 senders occupy slots 0-71, and every
other SHA256-using provider is placed inside or deliberately outside that
range to steer the union toward 91).  Slot 0 is ``loccitane.com`` (the
16-receiver maximum), slot 1 is ``nykaa.com`` (the Brave CAPTCHA failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.leakmodel import (
    CHANNEL_COOKIE,
    CHANNEL_PAYLOAD,
    CHANNEL_URI,
)

N_SENDERS = 130

# Encoding chains (transform-registry names).
PLAIN: Tuple[str, ...] = ()
SHA256 = ("sha256",)
MD5 = ("md5",)
SHA1 = ("sha1",)
B64 = ("base64",)
SHA256_OF_MD5 = ("md5", "sha256")

# Special sender slots.
SLOT_LOCCITANE = 0
SLOT_NYKAA = 1
REFERER_SLOTS = (116, 117, 118)
ADOBE_COOKIE_SLOTS = (104, 105, 106, 107, 108)   # 104-106 also via URI
EMAIL_USERNAME_SLOTS = (125, 126, 127)
USERNAME_ONLY_SLOT = 128                          # -> okta-emea.com


@dataclass(frozen=True)
class EdgeSpec:
    """One (sender, receiver) leak relationship in the plan."""

    sender_slot: int
    receiver: str
    channels: Tuple[str, ...]
    chains: Tuple[Tuple[str, ...], ...]
    pii_fields: Tuple[str, ...] = ("email",)
    param: Optional[str] = None        # None -> service default
    payload_format: str = "urlencoded"

    def __post_init__(self) -> None:
        if not (0 <= self.sender_slot < N_SENDERS):
            raise ValueError("sender slot out of range: %d" % self.sender_slot)


@dataclass
class CalibratedPlan:
    """The full assignment: edges plus site-level attributes."""

    edges: List[EdgeSpec] = field(default_factory=list)
    #: Slots whose sign-up form uses GET with an email-only field set.
    referer_sender_slots: Tuple[int, ...] = REFERER_SLOTS
    #: Slots that get a cloaked ``metrics`` CNAME subdomain.
    cloaked_sender_slots: Tuple[int, ...] = ADOBE_COOKIE_SLOTS

    def edges_of_slot(self, slot: int) -> List[EdgeSpec]:
        return [e for e in self.edges if e.sender_slot == slot]

    def edges_of_receiver(self, receiver: str) -> List[EdgeSpec]:
        return [e for e in self.edges if e.receiver == receiver]

    def receivers(self) -> List[str]:
        seen: List[str] = []
        for edge in self.edges:
            if edge.receiver not in seen:
                seen.append(edge.receiver)
        return seen

    def slots_used(self) -> Set[int]:
        return {edge.sender_slot for edge in self.edges}


# --------------------------------------------------------------------------
# Receiver edge construction.
# --------------------------------------------------------------------------

def _range(start: int, end: int) -> Tuple[int, ...]:
    """Inclusive slot range."""
    return tuple(range(start, end + 1))


def _edges_for(receiver: str, slots: Sequence[int],
               channels: Tuple[str, ...],
               chains: Tuple[Tuple[str, ...], ...],
               pii: Tuple[str, ...] = ("email",),
               param: Optional[str] = None,
               payload_format: str = "urlencoded") -> List[EdgeSpec]:
    return [EdgeSpec(sender_slot=slot, receiver=receiver, channels=channels,
                     chains=chains, pii_fields=pii, param=param,
                     payload_format=payload_format)
            for slot in slots]


def _named_provider_edges() -> List[EdgeSpec]:
    """Edges for Table 2 providers and the Figure 2 ad platforms."""
    edges: List[EdgeSpec] = []
    uri = (CHANNEL_URI,)
    payload = (CHANNEL_PAYLOAD,)
    uri_payload = (CHANNEL_URI, CHANNEL_PAYLOAD)

    # facebook.com — 78 senders total: 72 SHA256 (12 of them combined
    # URI+payload), 2 MD5, 4 non-trackid email+name payloads (Figure 2's
    # 60% vs Table 2's 74).
    edges += _edges_for("facebook.com", _range(2, 13), uri_payload, (SHA256,))
    edges += _edges_for("facebook.com",
                        (0, 1) + _range(14, 30) + _range(35, 44)
                        + _range(48, 61) + (63, 65) + _range(67, 71),
                        uri, (SHA256,))
    # Payload-only senders overlap the snapchat payload slots so the
    # Table 1a payload sender union stays near the paper's 43.
    edges += _edges_for("facebook.com",
                        (62, 64, 66, 31, 32, 33, 34, 45, 46, 47),
                        payload, (SHA256,))
    edges += _edges_for("facebook.com", (72, 73), uri, (MD5,), param="ud[em]")
    edges += _edges_for("facebook.com", _range(74, 77), payload, (PLAIN,),
                        pii=("email", "name"), payload_format="json")

    # criteo.com — 37 senders across four encoding groups.
    edges += _edges_for("criteo.com", _range(78, 103), uri, (MD5,))
    edges += _edges_for("criteo.com", _range(0, 3), uri, (SHA256,))
    edges += _edges_for("criteo.com", _range(104, 108), uri, (PLAIN,))
    edges += _edges_for("criteo.com", (4, 5), uri, (SHA256_OF_MD5,))

    # pinterest.com — 33 senders.
    edges += _edges_for("pinterest.com", _range(6, 30), uri, (SHA256,))
    edges += _edges_for("pinterest.com", _range(78, 85), uri, (MD5,))

    # snapchat.com — 20 senders.
    edges += _edges_for("snapchat.com", _range(31, 34), uri_payload, (SHA256,))
    edges += _edges_for("snapchat.com", _range(35, 44), uri, (SHA256,))
    edges += _edges_for("snapchat.com", _range(45, 48), payload, (SHA256,))
    edges += _edges_for("snapchat.com", (86, 87), payload, (MD5,))

    # Ad platforms (Figure 2, no stable trackid: per-sender parameters).
    def _ad(receiver: str, slots: Sequence[int],
            combined: Sequence[int] = (),
            chains: Tuple[Tuple[str, ...], ...] = (SHA256,),
            email_name: Sequence[int] = ()) -> None:
        for slot in slots:
            channels = uri_payload if slot in combined else uri
            pii = ("email", "name") if slot in email_name else ("email",)
            # Parameter names vary per sender (site-specific custom
            # dimensions), so these platforms receive PII but expose no
            # stable cross-site identifier slot — the paper's 8
            # multi-sender receivers outside the 34 same-ID group.
            edges.append(EdgeSpec(
                sender_slot=slot, receiver=receiver, channels=channels,
                chains=chains, pii_fields=pii,
                param="cd%d" % (slot + 1)))

    _ad("google-analytics.com", (0,) + _range(49, 71),
        combined=_range(49, 51), email_name=_range(49, 57))
    _ad("doubleclick.net", (0,) + _range(52, 70), combined=(52, 53),
        email_name=_range(58, 63))
    _ad("googleadservices.com", (0,) + _range(54, 62),
        email_name=(62,))
    _ad("bing.com", (0,) + _range(63, 71), combined=(63,),
        email_name=_range(66, 68))
    _ad("tiktok.com", (0,) + _range(65, 69), combined=(65,),
        email_name=(69,))
    _ad("yandex.ru", (0,) + _range(78, 80), chains=(MD5,))
    _ad("amazon-adsystem.com", (0, 70, 71), email_name=(70, 71))
    _ad("twitter.com", (0, 81, 82), chains=(MD5,), email_name=(81, 82))

    # Remaining Table 2 providers.
    edges += _edges_for("cquotient.com", _range(119, 125), uri, (SHA256,))
    edges += _edges_for("oracleinfinity.io", _range(126, 129), uri, (SHA256,))
    edges += _edges_for("rlcdn.com", _range(88, 91), uri, (SHA1,))
    # bluecore senders partially overlap the snapchat payload slots (same
    # payload-union steering rationale as facebook's payload-only group).
    edges += _edges_for("bluecore.com", (92, 93, 94, 31, 32), payload, (B64,))
    edges += _edges_for("klaviyo.com", _range(97, 100), uri, (B64,))
    edges += _edges_for("castle.io", (101, 102), uri, (PLAIN,))
    edges += _edges_for("dotomi.com", (109, 110), uri, (SHA256,))
    edges += _edges_for("inside-graph.com", (111, 112), payload, (PLAIN,),
                        payload_format="json")
    edges += _edges_for("krxd.net", (60, 61), uri, (SHA256,))
    edges += _edges_for("pxf.io", (86, 87), payload, (SHA1,))
    edges += _edges_for("taboola.com", (113, 69), uri, (SHA256,))
    edges += _edges_for("thebrighttag.com", (70, 71), uri, (SHA256,))
    edges += _edges_for("yahoo.com", (66, 67), uri, (SHA256,))
    edges += _edges_for("zendesk.com", (115, 88), uri, (B64,))

    # custora.com — slot 113 uses the combined URI+payload form; 114 URI.
    edges += _edges_for("custora.com", (113,), uri_payload, (SHA1,))
    edges += _edges_for("custora.com", (114,), uri, (SHA1,))

    # omtrdc.net ("adobe_cname") — five senders set a SHA256 first-party
    # cookie carried to the cloaked subdomain; three of them also send the
    # hash in the beacon URI (the Table 2 row).
    edges += _edges_for("omtrdc.net", (104, 105, 106),
                        (CHANNEL_URI, CHANNEL_COOKIE), (SHA256,))
    edges += _edges_for("omtrdc.net", (107, 108), (CHANNEL_COOKIE,),
                        (SHA256,))

    # Brave-missed degree-one receivers (footnote 4; zendesk covered above).
    edges += _edges_for("aliyun.com", (103,), uri, (PLAIN,))
    edges += _edges_for("cartsync.io", (119,), uri, (PLAIN,))
    edges += _edges_for("gravatar.com", (120,), uri, (MD5,))
    edges += _edges_for("herokuapp.com", (121,), uri, (PLAIN,))
    edges += _edges_for("intercom.io", (122,), payload, (PLAIN,),
                        payload_format="json")
    edges += _edges_for("lmcdn.ru", (123,), uri, (PLAIN,))
    edges += _edges_for("okta-emea.com", (USERNAME_ONLY_SLOT,), uri, (PLAIN,),
                        pii=("username",))
    return edges


# --------------------------------------------------------------------------
# Filler receivers: steering sender unions toward Table 1 marginals.
# --------------------------------------------------------------------------

# Degree-one filler receivers: (encoding chains, channel, count).
# Composition chosen to close the Table 1b receiver rows given the named
# receivers above; dual-chain entries are "combined encoding" receivers
# (the paper's "plaintext and SHA256" style examples).
_DEG1_FILLERS: Tuple[Tuple[Tuple[Tuple[str, ...], ...], str, int], ...] = (
    ((PLAIN,), CHANNEL_URI, 14),
    ((PLAIN,), CHANNEL_PAYLOAD, 3),
    ((MD5,), CHANNEL_URI, 3),
    ((SHA256,), CHANNEL_URI, 7),
    ((SHA256,), CHANNEL_PAYLOAD, 1),
    ((B64,), CHANNEL_URI, 3),
    ((B64,), CHANNEL_PAYLOAD, 2),
    ((PLAIN, B64), CHANNEL_URI, 8),
    ((PLAIN, MD5), CHANNEL_URI, 3),
)

# Degree-two filler receivers (the 14 non-persistent cross-site receivers):
# (edge1 chains, edge2 chains, channel, count, pii).  The first group uses
# the paper's "BASE64, SHA1 and SHA256" combined form on both edges; the
# split groups receive different single encodings from their two senders
# (so the receiver appears in two Table 1b rows without being "combined").
# The last group receives email+name (closing Table 1c's 12-receiver row).
_DEG2_FILLERS: Tuple[Tuple[Tuple[Tuple[str, ...], ...],
                           Tuple[Tuple[str, ...], ...], str, int,
                           Tuple[str, ...]], ...] = (
    ((B64, SHA1, SHA256), (B64, SHA1, SHA256), CHANNEL_URI, 3, ("email",)),
    ((PLAIN,), (MD5,), CHANNEL_URI, 7, ("email",)),
    ((PLAIN,), (MD5,), CHANNEL_URI, 4, ("email", "name")),
)

#: Target sender-union sizes per encoding label (Table 1b sender column).
_SENDER_UNION_TARGETS = {
    "plaintext": 42, "base64": 19, "md5": 35, "sha1": 9, "sha256": 91,
}

#: Target sender-union size for the payload channel (Table 1a).
_PAYLOAD_SENDER_TARGET = 43

#: Target number of senders with >= 3 receivers (46.15% of 130, §4.2).
_SENDERS_WITH_3PLUS_TARGET = 60


class _UnionSteering:
    """Chooses filler-edge senders to steer marginal unions to targets.

    For every encoding label (and the payload channel) the allocator
    tracks the current sender union.  While a union is below its paper
    target, filler edges prefer senders *outside* it (growing it); once the
    target is reached they prefer senders *inside* it (avoiding overshoot).
    Ties break toward the least-connected sender, which spreads sender
    degrees toward the paper's distribution.
    """

    def __init__(self, edges: List[EdgeSpec]) -> None:
        self.unions: Dict[str, Set[int]] = {}
        self.payload_union: Set[int] = set()
        self.degree: Dict[int, int] = {slot: 0 for slot in range(N_SENDERS)}
        for edge in edges:
            self._absorb(edge)

    def _absorb(self, edge: EdgeSpec) -> None:
        for chain in edge.chains:
            self.unions.setdefault(_label(chain), set()).add(edge.sender_slot)
        if CHANNEL_PAYLOAD in edge.channels:
            self.payload_union.add(edge.sender_slot)
        self.degree[edge.sender_slot] = \
            self.degree.get(edge.sender_slot, 0) + 1

    def _score(self, slot: int, labels: Sequence[str], channel: str) -> int:
        score = 0
        for label in labels:
            union = self.unions.get(label, set())
            target = _SENDER_UNION_TARGETS.get(label, 0)
            if len(union) < target:
                score += 2 if slot not in union else 0
            else:
                score += 1 if slot in union else -2
        if channel == CHANNEL_PAYLOAD:
            if len(self.payload_union) < _PAYLOAD_SENDER_TARGET:
                score += 2 if slot not in self.payload_union else 0
            else:
                score += 1 if slot in self.payload_union else -2
        return score

    def pick(self, chains: Tuple[Tuple[str, ...], ...], channel: str,
             exclude: Set[int]) -> int:
        """Pick a sender slot for a filler edge with these chains."""
        labels = [_label(chain) for chain in chains]
        best_slot = None
        best_key: Optional[Tuple[int, int, int]] = None
        for slot in range(2, N_SENDERS):  # keep loccitane/nykaa manual
            if slot in exclude or slot in REFERER_SLOTS:
                continue
            degree = self.degree.get(slot, 0)
            if degree >= 12:
                continue  # keep loccitane's 16 the unique maximum
            key = (-self._score(slot, labels, channel),
                   self._degree_rank(degree), slot)
            if best_key is None or key < best_key:
                best_key = key
                best_slot = slot
        assert best_slot is not None
        return best_slot

    def _degree_rank(self, degree: int) -> int:
        """Tie-break steering the §4.2 degree distribution.

        While fewer than 60 senders have >= 3 receivers, lift degree-2
        senders over the threshold; afterwards pile extra edges onto
        already-heavy senders so the 1-2 receiver group stays large.
        """
        senders_3plus = sum(1 for d in self.degree.values() if d >= 3)
        if senders_3plus < _SENDERS_WITH_3PLUS_TARGET:
            preference = {2: 0, 3: 1, 4: 2}
            return preference.get(degree, 3 + max(0, 11 - degree))
        return 11 - degree  # highest degree first

    def record(self, edge: EdgeSpec) -> None:
        self._absorb(edge)


def _label(chain: Tuple[str, ...]) -> str:
    from ..core.analysis import encoding_label
    return encoding_label(chain)


def _filler_edges(named: List[EdgeSpec],
                  filler_domains: Sequence[str]) -> List[EdgeSpec]:
    """Edges for the 58 filler receivers plus loccitane's degree top-up."""
    steering = _UnionSteering(named)
    edges: List[EdgeSpec] = []
    domains = list(filler_domains)

    def next_domain() -> str:
        return domains.pop(0)

    # loccitane.com needs 16 receivers and the named structure gives it 10,
    # so the first six degree-one fillers become its exclusive receivers.
    loccitane_quota = 6

    # Degree-one fillers.
    for chains, channel, count in _DEG1_FILLERS:
        for _ in range(count):
            domain = next_domain()
            if loccitane_quota > 0:
                slot = SLOT_LOCCITANE
                loccitane_quota -= 1
            else:
                slot = steering.pick(chains, channel, exclude=set())
            payload_format = "json" if channel == CHANNEL_PAYLOAD else \
                "urlencoded"
            edge = EdgeSpec(sender_slot=slot, receiver=domain,
                            channels=(channel,), chains=chains,
                            payload_format=payload_format)
            edges.append(edge)
            steering.record(edge)

    # Degree-two fillers (cross-site, non-persistent receivers).  The first
    # six host the email+username relationships of Table 1c (three senders
    # x two receivers).
    email_username = list(EMAIL_USERNAME_SLOTS)
    deg2_specs: List[Tuple[Tuple[Tuple[str, ...], ...],
                           Tuple[Tuple[str, ...], ...], str,
                           Tuple[str, ...]]] = []
    for chains1, chains2, channel, count, pii_fields in _DEG2_FILLERS:
        deg2_specs.extend([(chains1, chains2, channel, pii_fields)] * count)
    for index, (chains1, chains2, channel, pii_fields) in \
            enumerate(deg2_specs):
        domain = next_domain()
        used: Set[int] = set()
        for edge_number, chains in enumerate((chains1, chains2)):
            if index < 6 and edge_number == 0:
                slot = email_username[index // 2]
                pii: Tuple[str, ...] = ("email", "username")
            else:
                slot = steering.pick(chains, channel, exclude=used)
                pii = pii_fields
            used.add(slot)
            edge = EdgeSpec(sender_slot=slot, receiver=domain,
                            channels=(channel,), chains=chains,
                            pii_fields=pii)
            edges.append(edge)
            steering.record(edge)
    return edges


def build_plan(filler_domains: Sequence[str]) -> CalibratedPlan:
    """Construct the full calibrated assignment.

    ``filler_domains`` supplies receiver domains for the anonymous filler
    receivers (63 are consumed: 5 loccitane top-ups + 44 degree-one + 14
    degree-two); the referer receivers are handled by
    :mod:`repro.websim.shopping` as passive embeds on the GET-form sites.
    """
    named = _named_provider_edges()
    fillers = _filler_edges(named, filler_domains)
    return CalibratedPlan(edges=named + fillers)


# --------------------------------------------------------------------------
# Plan verification.
# --------------------------------------------------------------------------

def verify_plan(plan: CalibratedPlan) -> Dict[str, Tuple[float, float]]:
    """Compare the plan's structural marginals to the paper's targets.

    Returns {metric: (target, actual)}.  This checks the *plan*; the
    end-to-end tests additionally verify the crawl+detect pipeline measures
    the same numbers from traffic.
    """
    from ..datasets import paper

    result: Dict[str, Tuple[float, float]] = {}
    by_receiver: Dict[str, Set[int]] = {}
    for edge in plan.edges:
        by_receiver.setdefault(edge.receiver, set()).add(edge.sender_slot)

    result["senders"] = (paper.LEAKING_SENDERS,
                         len(plan.slots_used() | set(REFERER_SLOTS)))
    # +7 referer receivers are added at site-build time.
    result["receivers"] = (paper.LEAK_RECEIVERS, len(by_receiver) + 7)
    result["facebook_senders"] = (paper.FACEBOOK_SENDERS,
                                  len(by_receiver.get("facebook.com", set())))
    for receiver in paper.TABLE2:
        target = paper.table2_sender_count(receiver)
        edges = plan.edges_of_receiver(receiver)
        if receiver == "facebook.com":
            # Table 2 counts only the trackid rows; Figure 2's 78 includes
            # four additional non-trackid email+name senders.
            actual = len({e.sender_slot for e in edges
                          if e.pii_fields == ("email",)})
        elif receiver == "omtrdc.net":
            # The Table 2 row lists the three URI senders; two further
            # senders use the cookie channel only (Table 1a's 5/1).
            actual = len({e.sender_slot for e in edges
                          if CHANNEL_URI in e.channels})
        else:
            actual = len({e.sender_slot for e in edges})
        result["table2:%s" % receiver] = (target, actual)
    # The seven referer receivers (added at site-build time) all have a
    # single sender, so they count toward the paper's 58.
    single = sum(1 for senders in by_receiver.values() if len(senders) == 1)
    result["single_sender_receivers"] = (
        paper.SINGLE_APPEARANCE_RECEIVERS, single + 7)

    degree: Dict[int, Set[str]] = {}
    for edge in plan.edges:
        degree.setdefault(edge.sender_slot, set()).add(edge.receiver)
    max_slot = max(degree, key=lambda slot: len(degree[slot]))
    result["max_receivers_per_sender"] = (
        paper.MAX_RECEIVERS_PER_SENDER, len(degree[max_slot]))
    result["max_is_loccitane"] = (1.0, 1.0 if max_slot == SLOT_LOCCITANE
                                  else 0.0)
    return result
