"""Site selection: Tranco-style ranking + category classification (§3.2).

The paper starts from the Tranco top-10,000 list, classifies sites with
the FortiGuard Web Filtering dataset, and keeps the 404 shopping sites
(noting that 95.0% of shopping sites carry authentication flows).  This
module reproduces that acquisition step over the synthetic web:

* :func:`build_tranco_universe` — a deterministic ranked top-N list in
  which the study's 404 shopping domains are embedded among ~9,600
  other-category sites;
* :class:`CategoryDataset` — the FortiGuard stand-in: a domain → category
  mapping with the same query surface (classify one domain, count a
  category);
* :func:`select_study_sites` — the §3.2 filter: rank cutoff + category.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

CATEGORY_SHOPPING = "shopping"

#: Non-shopping categories populating the rest of the top list (with
#: rough prevalence weights for a top-10k mix).
_OTHER_CATEGORIES: Tuple[Tuple[str, int], ...] = (
    ("news-and-media", 18),
    ("information-technology", 16),
    ("entertainment", 12),
    ("business", 12),
    ("education", 8),
    ("finance-and-banking", 7),
    ("government", 4),
    ("health", 5),
    ("travel", 5),
    ("social-networking", 4),
    ("sports", 5),
    ("games", 4),
)

_OTHER_STEMS = (
    "daily", "global", "meta", "hyper", "inter", "net", "cloud", "data",
    "info", "web", "core", "open", "next", "first", "prime", "real",
    "true", "blue", "red", "green", "alpha", "omega", "micro", "macro",
)
_OTHER_SUFFIXES = (
    "times", "post", "wire", "hub", "base", "works", "labs", "zone",
    "port", "gate", "desk", "point", "press", "report", "channel",
    "network", "system", "stack", "forge", "space",
)


@dataclass(frozen=True)
class RankedSite:
    """One entry of the ranked list."""

    rank: int
    domain: str
    category: str


class CategoryDataset:
    """FortiGuard-style domain categorization dataset."""

    def __init__(self, assignments: Dict[str, str]) -> None:
        self._assignments = dict(assignments)

    def classify(self, domain: str) -> Optional[str]:
        """Category of a domain, or None when unrated."""
        return self._assignments.get(domain.lower())

    def count(self, category: str) -> int:
        return sum(1 for value in self._assignments.values()
                   if value == category)

    def domains(self, category: str) -> List[str]:
        return sorted(domain for domain, value
                      in self._assignments.items() if value == category)

    def __len__(self) -> int:
        return len(self._assignments)


def build_tranco_universe(shopping_domains: Sequence[str],
                          total: int = 10_000,
                          seed: int = 20210501) -> Tuple[List[RankedSite],
                                                         CategoryDataset]:
    """A ranked top-``total`` list embedding the study's shopping sites.

    The shopping domains are spread over the rank range the way popular
    shop sites actually sit in Tranco (none in the very top handful, then
    thinly throughout); every other rank is filled with a generated
    domain from the non-shopping category mix.
    """
    if len(shopping_domains) >= total:
        raise ValueError("total must exceed the shopping-site count")
    rng = random.Random(seed)

    shopping_ranks = sorted(rng.sample(range(50, total),
                                       len(shopping_domains)))
    by_rank: Dict[int, Tuple[str, str]] = {}
    for rank, domain in zip(shopping_ranks, shopping_domains):
        by_rank[rank] = (domain, CATEGORY_SHOPPING)

    category_pool: List[str] = []
    for category, weight in _OTHER_CATEGORIES:
        category_pool.extend([category] * weight)

    taken = set(shopping_domains)
    ranked: List[RankedSite] = []
    assignments: Dict[str, str] = {}
    for rank in range(1, total + 1):
        if rank in by_rank:
            domain, category = by_rank[rank]
        else:
            while True:
                domain = "%s%s.%s" % (
                    rng.choice(_OTHER_STEMS), rng.choice(_OTHER_SUFFIXES),
                    rng.choice(("com", "com", "org", "net", "io")))
                if domain not in taken:
                    break
                domain = "%s%d.com" % (domain.split(".")[0], rank)
                break
            taken.add(domain)
            category = rng.choice(category_pool)
        ranked.append(RankedSite(rank=rank, domain=domain,
                                 category=category))
        assignments[domain] = category
    return ranked, CategoryDataset(assignments)


def select_study_sites(ranked: Sequence[RankedSite],
                       dataset: CategoryDataset,
                       category: str = CATEGORY_SHOPPING,
                       max_rank: int = 10_000) -> List[str]:
    """The §3.2 selection: top-``max_rank`` sites of one category."""
    return [site.domain for site in ranked
            if site.rank <= max_rank
            and dataset.classify(site.domain) == category]
