"""First-party website model.

A :class:`Website` is a shopping site with a homepage, product subpages and
an authentication flow (sign-up / sign-in / account pages).  Sites embed
third-party services (:class:`TrackerEmbed`), may leak PII to some of them
(:class:`LeakBehavior`, attached per embed), and carry the §3.2 gating
attributes observed in the paper's data collection: unreachable sites,
sites without authentication, sign-up policies that block account creation
(phone verification, identity documents, region locks), e-mail confirmation
and bot detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .consent import ConsentBanner
from .trackers import TrackerService

# Sign-up gating outcomes (§3.2): 56 sites could not be signed up to.
BLOCK_NONE = None
BLOCK_PHONE = "phone_verification"
BLOCK_IDENTITY = "identity_documents"
BLOCK_REGION = "region_restricted"

# Page kinds.
PAGE_HOME = "home"
PAGE_SIGNUP = "signup"
PAGE_SIGNIN = "signin"
PAGE_ACCOUNT = "account"
PAGE_PRODUCT = "product"

PAGE_PATHS = {
    PAGE_HOME: "/",
    PAGE_SIGNUP: "/account/register",
    PAGE_SIGNIN: "/account/login",
    PAGE_ACCOUNT: "/account",
    PAGE_PRODUCT: "/products/aurora-lamp",
}


@dataclass(frozen=True)
class LeakBehavior:
    """How one embedded service receives PII from this site (one edge).

    ``channels`` may contain several entries — the paper's "combined
    methods" (e.g. the same identifier sent via request URI *and* payload
    body).  ``chains`` likewise may contain several transform chains — the
    "combined encoding/hashing forms" (e.g. plaintext and SHA256 of the
    same email).  ``pii_fields`` selects what leaks (email / name /
    username), matching Table 1c's combinations.
    """

    channels: Tuple[str, ...]
    chains: Tuple[Tuple[str, ...], ...]
    pii_fields: Tuple[str, ...] = ("email",)
    param: Optional[str] = None           # None -> service default
    payload_format: str = "urlencoded"    # urlencoded | json
    cookie_name: str = "s_ecid"           # for the cookie channel
    #: Prepended to the PII value before hashing: a salting tracker whose
    #: tokens no candidate set can precompute (detector blind spot; see
    #: repro.core.heuristics).
    salt: str = ""

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("LeakBehavior needs at least one channel")
        if not self.chains:
            raise ValueError("LeakBehavior needs at least one chain")
        if not self.pii_fields:
            raise ValueError("LeakBehavior needs at least one PII field")


@dataclass(frozen=True)
class TrackerEmbed:
    """One third-party service embedded by a site."""

    service: TrackerService
    leak: Optional[LeakBehavior] = None  # None -> embedded but not leaking

    @property
    def leaks(self) -> bool:
        return self.leak is not None


@dataclass
class SiteAuthConfig:
    """Authentication-flow attributes from §3.2."""

    has_auth: bool = True
    signup_method: str = "POST"          # "GET" -> referer leakage
    requires_email_confirmation: bool = False
    bot_detection: bool = False
    captcha_blocks_brave: bool = False   # the nykaa.com case (§7.1)
    signup_block: Optional[str] = BLOCK_NONE
    unreachable: bool = False
    #: Field names on the sign-up form; None means the full §3.1 field set.
    #: The accidental GET-form sites use a newsletter-style email-only form.
    signup_fields: Optional[Tuple[str, ...]] = None


@dataclass
class Website:
    """A first-party shopping site in the synthetic web."""

    domain: str
    auth: SiteAuthConfig = field(default_factory=SiteAuthConfig)
    embeds: List[TrackerEmbed] = field(default_factory=list)
    category: str = "shopping"
    tranco_rank: int = 0
    #: Subdomain label -> CNAME target (cloaked trackers), e.g.
    #: ``{"metrics": "shop.example.sc.omtrdc.net"}``.
    cname_records: Dict[str, str] = field(default_factory=dict)
    #: Privacy-policy disclosure class (set by the policy generator).
    policy_class: Optional[str] = None
    #: Marketing e-mail volume this site sends post-signup (inbox, spam).
    marketing_mail: Tuple[int, int] = (0, 0)
    #: Cookie banner, if the site runs a CMP (see repro.websim.consent).
    consent: Optional["ConsentBanner"] = None

    @property
    def https_origin(self) -> str:
        return "https://www.%s" % self.domain

    @property
    def www_host(self) -> str:
        return "www.%s" % self.domain

    def page_url(self, kind: str) -> str:
        return self.https_origin + PAGE_PATHS[kind]

    def leaking_embeds(self) -> List[TrackerEmbed]:
        return [e for e in self.embeds if e.leaks]

    def receiver_domains(self) -> List[str]:
        """Receivers this site leaks to (distinct, in embed order)."""
        seen: List[str] = []
        for embed in self.leaking_embeds():
            if embed.service.domain not in seen:
                seen.append(embed.service.domain)
        return seen

    @property
    def is_crawlable(self) -> bool:
        """Whether the §3.2 manual flow completes on this site."""
        return (not self.auth.unreachable and self.auth.has_auth
                and self.auth.signup_block is BLOCK_NONE)


@dataclass(frozen=True)
class FormField:
    """One input field of a form."""

    name: str
    kind: str = "text"  # text | email | password | hidden
    value: str = ""     # pre-filled value for hidden fields


@dataclass(frozen=True)
class FormSpec:
    """A form as rendered on a page."""

    action: str
    method: str
    fields: Tuple[FormField, ...]
    form_id: str = "auth-form"


_DEFAULT_SIGNUP_FIELDS: Tuple[FormField, ...] = (
    FormField("email", "email"),
    FormField("username"),
    FormField("first_name"),
    FormField("last_name"),
    FormField("phone"),
    FormField("dob"),
    FormField("gender"),
    FormField("job_title"),
    FormField("street"),
    FormField("city"),
    FormField("postcode"),
    FormField("country"),
    FormField("password", "password"),
)


def signup_form(site: Website) -> FormSpec:
    """The sign-up form for a site (field set follows common shop forms)."""
    if site.auth.signup_fields is not None:
        fields = tuple(
            FormField(name, "email" if name == "email" else
                      "password" if name == "password" else "text")
            for name in site.auth.signup_fields)
    else:
        fields = _DEFAULT_SIGNUP_FIELDS
    fields = fields + (
        FormField("csrf_token", "hidden", "tok-%s" % site.domain),)
    if site.auth.captcha_blocks_brave:
        fields = fields + (FormField("captcha_token", "hidden", ""),)
    return FormSpec(action="/account/register/submit",
                    method=site.auth.signup_method, fields=fields,
                    form_id="signup-form")


def signin_form(site: Website) -> FormSpec:
    """The sign-in form (email + password)."""
    fields = (
        FormField("email", "email"),
        FormField("password", "password"),
        FormField("csrf_token", "hidden", "tok-%s" % site.domain),
    )
    return FormSpec(action="/account/login/submit", method="POST",
                    fields=fields, form_id="signin-form")
