"""Tracker script engine.

Stands in for executing third-party JavaScript: given an embedded service,
its per-site leak behaviour and the page context (what PII the user has
typed, which flow stage we are in), it produces the *actions* the real
snippet would take — emitting beacon requests and setting cookies.

The browser engine executes these actions, so all traffic — baseline pixel
loads, PII exfiltration, persistent-ID re-emission on subpages — flows
through the same instrumented request path the detector later analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import hashes
from ..core.leakmodel import (
    CHANNEL_COOKIE,
    CHANNEL_PAYLOAD,
    CHANNEL_URI,
)
from ..netsim import (
    CONTENT_JSON,
    FORM_URLENCODED,
    RESOURCE_IMAGE,
    RESOURCE_PING,
    Url,
    encode_json,
    encode_urlencoded,
)
from .site import LeakBehavior, TrackerEmbed, Website
from .trackers import TrackerService


@dataclass(frozen=True)
class EmitRequest:
    """Action: send an HTTP request."""

    method: str
    url: Url
    body: bytes = b""
    content_type: Optional[str] = None
    resource_type: str = RESOURCE_PING


@dataclass(frozen=True)
class SetFirstPartyCookie:
    """Action: store a cookie in the first-party context."""

    name: str
    value: str
    domain: str  # registrable domain; stored as a domain cookie


@dataclass(frozen=True)
class StoreTrackerState:
    """Action: persist identifier state in page-context storage."""

    service_domain: str
    values: Tuple[Tuple[str, str], ...]


Action = object  # union of the three dataclasses above


@dataclass
class ScriptContext:
    """What a snippet can observe when it runs."""

    site: Website
    page_url: Url
    stage: str
    #: PII the page currently exposes (form fields / data layer); empty
    #: before the user has typed anything.
    pii: Dict[str, str] = field(default_factory=dict)
    #: Previously stored tracker state for (this site, service) pairs.
    stored_state: Dict[str, Dict[str, str]] = field(default_factory=dict)
    timestamp: float = 0.0


def _param_for_field(base_param: str, pii_field: str, chain_index: int,
                     service: TrackerService) -> str:
    """Derive the parameter name for a PII field / chain combination.

    Mirrors real snippets: Facebook's advanced matching uses ``udff[em]`` /
    ``udff[fn]`` / ``udff[ln]``; Criteo numbers its hashes ``p0``/``p1``.
    """
    from .trackers import ALT_PARAMS
    param = base_param
    if chain_index > 0:
        alternates = ALT_PARAMS.get(service.domain, ())
        if chain_index < len(alternates):
            param = alternates[chain_index]
        else:
            param = "%s%d" % (base_param, chain_index)
    if pii_field == "email":
        return param
    suffix = {"name": "fn", "username": "un"}.get(pii_field, pii_field)
    if "[em]" in param:
        return param.replace("[em]", "[%s]" % suffix)
    return "%s_%s" % (param, suffix)


def _pii_value(pii: Dict[str, str], pii_field: str) -> Optional[str]:
    value = pii.get(pii_field)
    if value is None:
        return None
    # Trackers normalize emails before hashing (advanced-matching style).
    return value.strip().lower() if pii_field == "email" else value.strip()


def _identifier_params(behavior: LeakBehavior, service: TrackerService,
                       pii: Dict[str, str]) -> List[Tuple[str, str]]:
    """The (param, obfuscated value) pairs a snippet would transmit."""
    base_param = behavior.param or service.default_param
    params: List[Tuple[str, str]] = []
    for chain_index, chain in enumerate(behavior.chains):
        for pii_field in behavior.pii_fields:
            value = _pii_value(pii, pii_field)
            if value is None:
                continue
            if behavior.salt and chain:
                # Salted hashing: the provider derives a private token.
                value = behavior.salt + value
            token = hashes.apply_chain(value, chain)
            params.append((_param_for_field(base_param, pii_field,
                                            chain_index, service), token))
    return params


def _endpoint_host(service: TrackerService, site: Website) -> str:
    """Collection host: cloaked endpoints live on a first-party subdomain."""
    if service.is_cloaked:
        return "%s.%s" % (service.endpoint_host, site.domain)
    return service.endpoint_host


def _uri_request(service: TrackerService, site: Website,
                 params: List[Tuple[str, str]],
                 event: str = "identify") -> EmitRequest:
    url = Url(scheme="https", host=_endpoint_host(service, site),
              path=service.endpoint_path,
              query=tuple([("ev", event)] + params))
    return EmitRequest(method="GET", url=url, resource_type=RESOURCE_IMAGE)


def _payload_request(service: TrackerService, site: Website,
                     behavior: LeakBehavior,
                     params: List[Tuple[str, str]]) -> EmitRequest:
    url = Url(scheme="https", host=_endpoint_host(service, site),
              path=service.endpoint_path, query=(("ev", "identify"),))
    if behavior.payload_format == "json":
        payload = {"event": "identify", "site": site.domain,
                   "properties": dict(params)}
        return EmitRequest(method="POST", url=url, body=encode_json(payload),
                           content_type=CONTENT_JSON,
                           resource_type="xmlhttprequest")
    body = encode_urlencoded([("ev", "identify")] + params)
    return EmitRequest(method="POST", url=url, body=body,
                       content_type=FORM_URLENCODED,
                       resource_type="xmlhttprequest")


def baseline_actions(embed: TrackerEmbed, ctx: ScriptContext) -> List[Action]:
    """Actions every embedded snippet performs on page load.

    A plain event ping (no PII) — the background tracking traffic that
    exists whether or not the site leaks.
    """
    service = embed.service
    host = _endpoint_host(service, ctx.site)
    # "dl" carries the document location with the query stripped, so that
    # PII landing in the page URL (GET forms) reaches third parties via the
    # Referer header only — keeping the paper's channels distinct.
    url = Url(scheme="https", host=host, path=service.endpoint_path,
              query=(("ev", "PageView"),
                     ("dl", str(ctx.page_url.without_query()))))
    return [EmitRequest(method="GET", url=url, resource_type=RESOURCE_IMAGE)]


def exfil_actions(embed: TrackerEmbed, ctx: ScriptContext) -> List[Action]:
    """Actions when PII is present on the page and the embed leaks it."""
    behavior = embed.leak
    if behavior is None or not ctx.pii:
        return []
    service = embed.service
    params = _identifier_params(behavior, service, ctx.pii)
    if not params:
        return []

    actions: List[Action] = []
    for channel in behavior.channels:
        if channel == CHANNEL_URI:
            actions.append(_uri_request(service, ctx.site, params))
        elif channel == CHANNEL_PAYLOAD:
            actions.append(_payload_request(service, ctx.site, behavior,
                                            params))
        elif channel == CHANNEL_COOKIE:
            # The site-side snippet stores the identifier in a first-party
            # cookie; the beacon to the cloaked subdomain then carries it
            # automatically in the Cookie header (Figure 1.c).
            primary_value = params[0][1]
            actions.append(SetFirstPartyCookie(
                name=behavior.cookie_name, value=primary_value,
                domain=ctx.site.domain))
            actions.append(_uri_request(service, ctx.site, [],
                                        event="PageView"))
    if service.persistent:
        actions.append(StoreTrackerState(service_domain=service.domain,
                                         values=tuple(params)))
    return actions


def revisit_actions(embed: TrackerEmbed, ctx: ScriptContext) -> List[Action]:
    """Actions on later pages when a persistent ID is already stored.

    This is the §5.2 tracking cue: the stored identifier is re-emitted on
    *every* page of the sender, including ordinary subpages.
    """
    service = embed.service
    if not service.persistent:
        return []
    stored = ctx.stored_state.get(service.domain)
    if not stored:
        return []
    behavior = embed.leak
    params = list(stored.items())
    if behavior is not None and CHANNEL_PAYLOAD in behavior.channels \
            and CHANNEL_URI not in behavior.channels:
        return [_payload_request(service, ctx.site, behavior, params)]
    if behavior is not None and CHANNEL_COOKIE in behavior.channels:
        # The first-party cookie persists; the beacon keeps carrying it.
        return [_uri_request(service, ctx.site, [], event="PageView")]
    return [_uri_request(service, ctx.site, params, event="PageView")]
