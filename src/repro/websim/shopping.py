"""The calibrated Tranco-shopping-site study population (§3.2).

Builds the full 404-site universe the paper crawled:

* 22 unreachable sites, 19 without authentication flows, 56 whose policies
  block sign-up (47 phone verification, 6 identity documents, 3 region
  locked) — none of them crawlable to completion;
* 307 sites with successful flows, 68 of which require e-mail confirmation
  and 43 of which deploy bot detection;
* 130 of the successful sites leak PII according to the calibrated plan
  (:mod:`repro.websim.calibration`), including ``loccitane.com`` (16
  receivers, the maximum) and ``nykaa.com`` (whose CAPTCHA provider Brave
  blocks);
* first-party marketing-mail volumes totalling 2,172 inbox and 141 spam
  messages across the successful sites (§4.2.3);
* Table 3 privacy-policy disclosure classes over the 130 leaking sites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.persona import DEFAULT_PERSONA, Persona
from .consent import CMP_PROVIDERS, ConsentBanner
from .calibration import (
    ADOBE_COOKIE_SLOTS,
    CalibratedPlan,
    EdgeSpec,
    N_SENDERS,
    REFERER_SLOTS,
    SLOT_LOCCITANE,
    SLOT_NYKAA,
    build_plan,
)
from .population import Population
from .tranco import CategoryDataset, RankedSite, build_tranco_universe
from .site import (
    BLOCK_IDENTITY,
    BLOCK_PHONE,
    BLOCK_REGION,
    LeakBehavior,
    SiteAuthConfig,
    TrackerEmbed,
    Website,
)
from .trackers import (
    _FILLER_DOMAINS,
    TrackerCatalog,
    build_default_catalog,
)

_SEED = 20210501  # the paper's crawl month

# Table 3 disclosure classes (also used by repro.policy).
POLICY_NOT_SPECIFIC = "disclose_not_specific"
POLICY_SPECIFIC = "disclose_specific"
POLICY_NO_DESCRIPTION = "no_description"
POLICY_NOT_SHARED = "explicitly_not_shared"

POLICY_CLASSES = (POLICY_NOT_SPECIFIC, POLICY_SPECIFIC,
                  POLICY_NO_DESCRIPTION, POLICY_NOT_SHARED)

_ADJECTIVES = (
    "aurora", "lumen", "vista", "cedar", "ember", "harbor", "indigo",
    "juniper", "karmin", "lively", "meadow", "noble", "opal", "prime",
    "quaint", "rustic", "solstice", "tidal", "urban", "velvet", "willow",
    "zephyr", "amber", "breeze", "coral", "dapper", "everly", "fable",
    "golden", "hazel", "ivory", "jade", "kindred", "linen", "mosaic",
    "nectar", "orchid", "pearl", "quill", "raven", "sable", "thistle",
)
_NOUNS = (
    "boutique", "market", "outfitters", "emporium", "goods", "supply",
    "wares", "bazaar", "collective", "mercantile", "trading", "closet",
    "attic", "cellar", "garden", "kitchen", "threads", "soles", "lane",
    "alley", "corner", "stylehouse", "depot", "gallery", "pantry",
)
_TLDS = ("com", "com", "com", "com", "net", "shop", "store", "io",
         "co.uk", "co.jp", "de", "fr", "com.au")


def _generate_domains(count: int, rng: random.Random,
                      taken: set) -> List[str]:
    domains: List[str] = []
    while len(domains) < count:
        name = "%s%s" % (rng.choice(_ADJECTIVES), rng.choice(_NOUNS))
        tld = rng.choice(_TLDS)
        domain = "%s.%s" % (name, tld)
        if domain in taken:
            continue
        taken.add(domain)
        domains.append(domain)
    return domains


@dataclass
class StudySpec:
    """The built population plus the plan it realizes."""

    population: Population
    plan: CalibratedPlan
    slot_domains: List[str]                   # sender slot -> domain
    leaking_domains: List[str]                # the 130
    referer_receiver_domains: List[str]       # the 7 passive receivers
    nonleaking_successful: List[str]
    #: The §3.2 acquisition context: the ranked top-10k universe the 404
    #: shopping sites were selected from, plus the category dataset.
    tranco: List[RankedSite] = field(default_factory=list)
    categories: Optional[CategoryDataset] = None

    @property
    def catalog(self) -> TrackerCatalog:
        return self.population.catalog


def _leak_behavior(edge: EdgeSpec) -> LeakBehavior:
    return LeakBehavior(channels=edge.channels, chains=edge.chains,
                        pii_fields=edge.pii_fields, param=edge.param,
                        payload_format=edge.payload_format)


def _consent_banner(index: int, rng: random.Random) -> Optional[ConsentBanner]:
    """Banner assignment: ~60% of sites run a CMP; roughly one in twelve
    of those is a dark-pattern operator whose trackers ignore refusals
    (the §6 observation that consent flows manipulate users)."""
    if rng.random() >= 0.6:
        return None
    provider = sorted(CMP_PROVIDERS)[index % len(CMP_PROVIDERS)]
    honors = rng.random() >= 0.08
    return ConsentBanner(provider=provider, honors_consent=honors)


def _benign_embeds(catalog: TrackerCatalog,
                   rng: random.Random) -> List[TrackerEmbed]:
    from .trackers import BENIGN_SERVICES
    count = rng.randint(1, 2)
    picks = rng.sample(range(len(BENIGN_SERVICES)), count)
    return [TrackerEmbed(service=catalog.get(BENIGN_SERVICES[i].domain))
            for i in picks]


def _nonleaking_tracker_embeds(catalog: TrackerCatalog, rng: random.Random,
                               exclude: set) -> List[TrackerEmbed]:
    """2-4 ordinary (non-leaking) tracker embeds for a site."""
    common = ("facebook.com", "google-analytics.com", "doubleclick.net",
              "hotjar.com", "criteo.com", "pinterest.com", "twitter.com",
              "yandex.ru", "taboola.com")
    choices = [domain for domain in common if domain not in exclude]
    count = min(rng.randint(2, 4), len(choices))
    picks = rng.sample(choices, count)
    return [TrackerEmbed(service=catalog.get(domain)) for domain in picks]


def build_study_population(persona: Optional[Persona] = None) -> StudySpec:
    """Construct the full, calibrated §3.2 population."""
    rng = random.Random(_SEED)
    catalog = build_default_catalog()
    plan = build_plan(_FILLER_DOMAINS)

    consumed_fillers = {r for r in plan.receivers() if r in _FILLER_DOMAINS}
    spare_fillers = [d for d in _FILLER_DOMAINS
                     if d not in consumed_fillers]
    referer_receivers = spare_fillers[:7]

    taken = {"loccitane.com", "nykaa.com"}
    sender_domains = _generate_domains(N_SENDERS - 2, rng, taken)
    slot_domains: List[str] = []
    generated = iter(sender_domains)
    for slot in range(N_SENDERS):
        if slot == SLOT_LOCCITANE:
            slot_domains.append("loccitane.com")
        elif slot == SLOT_NYKAA:
            slot_domains.append("nykaa.com")
        else:
            slot_domains.append(next(generated))

    sites: Dict[str, Website] = {}

    # ---- the 130 leaking senders ----------------------------------------
    edges_by_slot: Dict[int, List[EdgeSpec]] = {}
    for edge in plan.edges:
        edges_by_slot.setdefault(edge.sender_slot, []).append(edge)

    # Referer receiver assignment: 3 + 2 + 2 across the GET-form sites.
    referer_split = (referer_receivers[:3], referer_receivers[3:5],
                     referer_receivers[5:7])

    confirmation_slots = set(range(3, 33))     # 30 of the leaking sites
    bot_slots = set(range(33, 53))             # 20 of the leaking sites

    for slot in range(N_SENDERS):
        domain = slot_domains[slot]
        embeds: List[TrackerEmbed] = []
        seen_services = set()
        for edge in edges_by_slot.get(slot, []):
            service = catalog.get(edge.receiver)
            embeds.append(TrackerEmbed(service=service,
                                       leak=_leak_behavior(edge)))
            seen_services.add(edge.receiver)
        auth = SiteAuthConfig(
            requires_email_confirmation=slot in confirmation_slots,
            bot_detection=slot in bot_slots,
            captcha_blocks_brave=slot == SLOT_NYKAA,
        )
        if slot in REFERER_SLOTS:
            # Accidental leakage: newsletter-style GET form, and the
            # receivers are ordinary embeds that see the PII-bearing URL
            # in their Referer header.
            auth.signup_method = "GET"
            auth.signup_fields = ("email", "password")
            for receiver in referer_split[REFERER_SLOTS.index(slot)]:
                embeds.append(TrackerEmbed(service=catalog.get(receiver)))
                seen_services.add(receiver)
        if slot not in REFERER_SLOTS:
            # The GET-form sites get no extra embeds: every third party on
            # their post-submit page receives the Referer leak, and the
            # paper attributes exactly seven receivers to this channel.
            embeds.extend(_benign_embeds(catalog, rng))
        cname_records: Dict[str, str] = {}
        if slot in ADOBE_COOKIE_SLOTS:
            cname_records["metrics"] = "%s.sc.omtrdc.net" % domain
        # The GET-form sites run no CMP: any extra embed on their
        # post-submit page would become an additional (uncalibrated)
        # referer receiver.
        banner = (None if slot in REFERER_SLOTS
                  else _consent_banner(slot, rng))
        sites[domain] = Website(domain=domain, auth=auth, embeds=embeds,
                                tranco_rank=100 + slot * 37,
                                cname_records=cname_records,
                                consent=banner)

    leaking_domains = [slot_domains[slot] for slot in range(N_SENDERS)]

    # Table 3 policy classes over the leaking senders: 102/9/15/4.
    policy_assignment = ([POLICY_SPECIFIC] * 9 +
                         [POLICY_NO_DESCRIPTION] * 15 +
                         [POLICY_NOT_SHARED] * 4 +
                         [POLICY_NOT_SPECIFIC] * 102)
    for domain, policy_class in zip(leaking_domains, policy_assignment):
        sites[domain].policy_class = policy_class

    # ---- 177 successful sites that do not leak --------------------------
    nonleaking = _generate_domains(177, rng, taken)
    for index, domain in enumerate(nonleaking):
        auth = SiteAuthConfig(
            requires_email_confirmation=index < 38,
            bot_detection=38 <= index < 61,
        )
        embeds = _nonleaking_tracker_embeds(catalog, rng, exclude=set())
        embeds.extend(_benign_embeds(catalog, rng))
        sites[domain] = Website(domain=domain, auth=auth, embeds=embeds,
                                tranco_rank=150 + index * 41,
                                policy_class=POLICY_CLASSES[index % 4],
                                consent=_consent_banner(index, rng))

    # ---- the 97 sites excluded during data acquisition -------------------
    for domain in _generate_domains(22, rng, taken):
        sites[domain] = Website(domain=domain,
                                auth=SiteAuthConfig(unreachable=True))
    for domain in _generate_domains(19, rng, taken):
        sites[domain] = Website(domain=domain,
                                auth=SiteAuthConfig(has_auth=False))
    block_reasons = ([BLOCK_PHONE] * 47 + [BLOCK_IDENTITY] * 6 +
                     [BLOCK_REGION] * 3)
    for domain, reason in zip(_generate_domains(56, rng, taken),
                              block_reasons):
        sites[domain] = Website(domain=domain,
                                auth=SiteAuthConfig(signup_block=reason))

    # ---- marketing mail volumes (§4.2.3): 2,172 inbox + 141 spam --------
    successful = leaking_domains + nonleaking
    for index, domain in enumerate(successful):
        inbox = 7 + (1 if index < 23 else 0)
        spam = 3 if 10 <= index < 57 else 0
        sites[domain].marketing_mail = (inbox, spam)

    # ---- §3.2 acquisition context: rank the 404 study sites inside a
    # Tranco-style top-10k universe and record the category dataset.
    ranked, categories = build_tranco_universe(list(sites))
    rank_of = {site.domain: site.rank for site in ranked}
    for domain, site in sites.items():
        site.tranco_rank = rank_of[domain]

    population = Population(sites=sites, catalog=catalog,
                            persona=persona or DEFAULT_PERSONA)
    return StudySpec(population=population, plan=plan,
                     slot_domains=slot_domains,
                     leaking_domains=leaking_domains,
                     referer_receiver_domains=referer_receivers,
                     nonleaking_successful=nonleaking,
                     tranco=ranked, categories=categories)
