"""The synthetic web's origin servers.

One :class:`WebServer` instance plays every origin in the simulation:
first-party shop sites (pages, auth endpoints, privacy policy), third-party
tracker endpoints (pixels, scripts, event collectors) and CNAME-cloaked
collection subdomains.  The browser talks to it exactly like a network —
``handle(request) -> response`` — and everything observable (HTML, cookies,
redirects, confirmation e-mails) comes out of that exchange.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netsim import Headers, HttpRequest, HttpResponse
from ..psl import default_list
from .html import render_document, render_form, render_tag
from .site import (
    PAGE_ACCOUNT,
    PAGE_HOME,
    PAGE_PATHS,
    PAGE_PRODUCT,
    PAGE_SIGNIN,
    PAGE_SIGNUP,
    FormSpec,
    Website,
    signin_form,
    signup_form,
)
from .trackers import TrackerCatalog

#: Domain of the CAPTCHA provider whose script Brave's Shields blocks —
#: the mechanism behind the paper's nykaa.com sign-up failure (§7.1).
CAPTCHA_PROVIDER = "captcha-delivery.com"

ACCOUNT_PENDING = "pending"
ACCOUNT_ACTIVE = "active"

#: Callback signature for confirmation mail: (site_domain, email, url).
MailHook = Callable[[str, str, str], None]


@dataclass
class WebServer:
    """Serves every origin of the synthetic web."""

    sites: Dict[str, Website]
    catalog: TrackerCatalog
    mail_hook: Optional[MailHook] = None
    #: site domain -> {email -> account state}
    accounts: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: site domain -> {opaque confirmation token -> email}
    pending_tokens: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Counter making tracker-minted cookie IDs unique per issuance
    #: (a cleared jar gets a *new* tuid, like real tracker backends).
    _tuid_sequence: int = 0

    # -- entry point ---------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        host = request.url.host
        site = self._site_for_host(host)
        if site is not None:
            cloaked = site.cname_records.get(host.split(".")[0])
            if cloaked is not None and host != site.www_host:
                return self._tracker_response(request)
            if site.auth.unreachable:
                return HttpResponse(status=503, body=b"service unavailable")
            return self._site_response(site, request)
        if self.catalog.attribute_host(host) is not None:
            return self._tracker_response(request)
        if self._is_cmp_host(host):
            return self._cmp_response(request)
        return HttpResponse(status=404, body=b"no such origin")

    @staticmethod
    def _is_cmp_host(host: str) -> bool:
        from .consent import CMP_PROVIDERS
        return any(host == provider or host.endswith("." + provider)
                   for provider in CMP_PROVIDERS)

    def _cmp_response(self, request: HttpRequest) -> HttpResponse:
        headers = Headers()
        if request.method == "POST" or "/receipt" in request.url.path:
            headers.set("Content-Type", "application/json")
            return HttpResponse(status=200, headers=headers,
                                body=b'{"status":"recorded"}')
        headers.set("Content-Type", "application/javascript")
        return HttpResponse(status=200, headers=headers,
                            body=b"/* consent management stub */")

    def _site_for_host(self, host: str) -> Optional[Website]:
        registrable = default_list().registrable_domain(host) or host
        return self.sites.get(registrable)

    # -- first-party pages ----------------------------------------------

    def _site_response(self, site: Website, request: HttpRequest) -> HttpResponse:
        path = request.url.path
        if path == PAGE_PATHS[PAGE_HOME]:
            return self._page(site, "Home", self._home_body(site))
        if path == PAGE_PATHS[PAGE_SIGNUP]:
            if not site.auth.has_auth:
                return HttpResponse(status=404, body=b"not found")
            return self._page(site, "Create account",
                              self._signup_body(site))
        if path == "/account/register/submit":
            return self._handle_signup_submit(site, request)
        if path == "/account/register/welcome":
            return self._page(site, "Welcome",
                              ["<h1>Account created</h1>",
                               '<a href="/account">Your account</a>'])
        if path == "/account/confirm":
            return self._handle_confirm(site, request)
        if path == PAGE_PATHS[PAGE_SIGNIN]:
            if not site.auth.has_auth:
                return HttpResponse(status=404, body=b"not found")
            return self._page(site, "Sign in", self._signin_body(site))
        if path == "/account/login/submit":
            return self._handle_signin_submit(site, request)
        if path == PAGE_PATHS[PAGE_ACCOUNT]:
            return self._page(site, "Your account",
                              ["<h1>Welcome back</h1>"])
        if path == PAGE_PATHS[PAGE_PRODUCT]:
            return self._page(site, "Aurora Lamp",
                              ["<h1>Aurora Lamp</h1>",
                               '<a href="/account">Account</a>'])
        if path == "/privacy":
            return HttpResponse(status=200, body=b"(privacy policy page)")
        return HttpResponse(status=404, body=b"not found")

    def _embed_tags(self, site: Website) -> List[str]:
        tags = []
        if site.consent is not None:
            tags.append(render_tag("script", {
                "src": "https://%s%s" % (site.consent.script_host,
                                         site.consent.script_path),
                "data-cmp": site.consent.provider}))
        for embed in site.embeds:
            service = embed.service
            script_url = "https://%s%s" % (service.script_host,
                                           service.script_path)
            tags.append(render_tag("script", {
                "src": script_url, "data-tracker": service.domain}))
        if site.auth.captcha_blocks_brave:
            tags.append(render_tag("script", {
                "src": "https://ct.%s/challenge.js" % CAPTCHA_PROVIDER,
                "data-captcha": "1"}))
        return tags

    def _page(self, site: Website, title: str,
              body_parts: List[str]) -> HttpResponse:
        body = render_document("%s - %s" % (site.domain, title),
                               body_parts + self._embed_tags(site))
        headers = Headers([("Content-Type", "text/html; charset=utf-8")])
        headers.add("Set-Cookie",
                    "session=%s; Path=/; Max-Age=86400"
                    % _session_token(site.domain))
        return HttpResponse(status=200, headers=headers,
                            body=body.encode("utf-8"))

    def _home_body(self, site: Website) -> List[str]:
        return [
            "<h1>%s</h1>" % site.domain,
            '<a href="%s">Create account</a>' % PAGE_PATHS[PAGE_SIGNUP],
            '<a href="%s">Sign in</a>' % PAGE_PATHS[PAGE_SIGNIN],
            '<a href="%s">Aurora Lamp</a>' % PAGE_PATHS[PAGE_PRODUCT],
            '<a href="/privacy">Privacy policy</a>',
        ]

    def _form_html(self, form: FormSpec) -> str:
        fields = [(f.name, f.kind, f.value) for f in form.fields]
        return render_form(form.action, form.method, form.form_id, fields)

    def _signup_body(self, site: Website) -> List[str]:
        parts = ["<h1>Create your account</h1>",
                 self._form_html(signup_form(site))]
        return parts

    def _signin_body(self, site: Website) -> List[str]:
        return ["<h1>Sign in</h1>", self._form_html(signin_form(site))]

    # -- auth endpoints --------------------------------------------------

    def _form_params(self, request: HttpRequest) -> Dict[str, str]:
        if request.method == "GET":
            return request.url.query_dict()
        from ..netsim import decode_urlencoded
        return dict(decode_urlencoded(request.body))

    def _handle_signup_submit(self, site: Website,
                              request: HttpRequest) -> HttpResponse:
        params = self._form_params(request)
        email = params.get("email", "")
        if not email:
            return HttpResponse(status=400, body=b"missing email")
        if site.auth.bot_detection and \
                request.headers.get("Sec-Automation") == "true":
            return HttpResponse(status=403, body=b"bot detected")
        if site.auth.captcha_blocks_brave and not params.get("captcha_token"):
            return HttpResponse(status=403, body=b"captcha required")

        site_accounts = self.accounts.setdefault(site.domain, {})
        if site.auth.requires_email_confirmation:
            site_accounts[email] = ACCOUNT_PENDING
            # The confirmation link carries an opaque token only — the
            # address itself never appears in the URL (sites that embed
            # PII in URLs are modelled via GET forms instead).
            token = _session_token(site.domain + ":confirm:" + email)
            self.pending_tokens.setdefault(site.domain, {})[token] = email
            confirm_url = "%s/account/confirm?token=%s" % (
                site.https_origin, token)
            if self.mail_hook is not None:
                self.mail_hook(site.domain, email, confirm_url)
            return self._page(site, "Confirm your email",
                              ["<h1>Check your inbox</h1>"])
        site_accounts[email] = ACCOUNT_ACTIVE
        if request.method == "POST":
            # POST-redirect-GET, as well-built sites do.  GET forms (the
            # accidental-leak sites) land directly on the result page so
            # the PII-bearing URL stays the document location.
            return _redirect("/account/register/welcome")
        return self._page(site, "Welcome",
                          ["<h1>Account created</h1>",
                           '<a href="/account">Your account</a>'])

    def _handle_confirm(self, site: Website,
                        request: HttpRequest) -> HttpResponse:
        token = request.url.query_get("token") or ""
        email = self.pending_tokens.get(site.domain, {}).get(token)
        site_accounts = self.accounts.setdefault(site.domain, {})
        if email is not None and site_accounts.get(email) == ACCOUNT_PENDING:
            site_accounts[email] = ACCOUNT_ACTIVE
            return self._page(site, "Email confirmed",
                              ["<h1>Thanks, you are verified</h1>"])
        return HttpResponse(status=400, body=b"invalid confirmation")

    def _handle_signin_submit(self, site: Website,
                              request: HttpRequest) -> HttpResponse:
        params = self._form_params(request)
        email = params.get("email", "")
        state = self.accounts.get(site.domain, {}).get(email)
        if state != ACCOUNT_ACTIVE:
            return HttpResponse(status=401, body=b"unknown or pending account")
        return self._page(site, "Signed in",
                          ["<h1>Signed in</h1>",
                           '<a href="/account">Your account</a>'])

    # -- third-party endpoints --------------------------------------------

    def _tracker_response(self, request: HttpRequest) -> HttpResponse:
        headers = Headers()
        service = self.catalog.attribute_host(request.url.host)
        if request.url.path.endswith(".js") or \
                request.resource_type == "script":
            headers.set("Content-Type", "application/javascript")
            body = b"/* tracking snippet */"
        else:
            headers.set("Content-Type", "image/gif")
            body = b"GIF89a\x01\x00\x01\x00"
        if service is not None and service.sets_cookie \
                and request.headers.get("Cookie") is None:
            self._tuid_sequence += 1
            headers.add("Set-Cookie",
                        "tuid=%s; Path=/; Max-Age=31536000; Domain=%s"
                        % (_session_token("%s#%d" % (service.domain,
                                                     self._tuid_sequence)),
                           service.domain))
        return HttpResponse(status=200, headers=headers, body=body)


def _redirect(location: str) -> HttpResponse:
    return HttpResponse(status=302,
                        headers=Headers([("Location", location)]))


def _session_token(seed: str) -> str:
    """Deterministic opaque token (no randomness, reproducible crawls)."""
    return hashlib.sha256(("repro-token:" + seed).encode()).hexdigest()[:24]
