"""Fault-injecting wrapper around the synthetic web's origin servers.

:class:`FaultyServer` sits between the browser and a
:class:`~repro.websim.server.WebServer` and consults a
:class:`~repro.netsim.faults.FaultPlan` before every exchange.  Injected
transport faults surface as :class:`~repro.netsim.faults.NetworkError`
raises (the request never reaches the origin — no cookies are minted, no
accounts mutate); injected HTTP faults surface as real 429/5xx responses;
slow responses surface as the origin's genuine answer annotated with a
``latency_seconds`` the client may refuse to wait for.
"""

from __future__ import annotations

from typing import Optional

from ..netsim import Headers, HttpRequest, HttpResponse
from ..netsim.faults import (
    FAULT_DEAD,
    FAULT_RESET,
    FAULT_SLOW,
    FAULT_TIMEOUT,
    ConnectionReset,
    ConnectionTimeout,
    FaultPlan,
    http_fault_status,
)
from ..psl import default_list


class FaultyServer:
    """Drop-in ``handle()``-compatible wrapper injecting planned faults."""

    def __init__(self, server, plan: FaultPlan) -> None:
        self.server = server
        self.plan = plan

    def handle(self, request: HttpRequest) -> HttpResponse:
        origin = self._origin(request.url.host)
        kind = self.plan.next_fault(origin)
        if kind is None:
            return self.server.handle(request)
        if kind == FAULT_DEAD:
            # A dead origin looks exactly like a timeout — the client can
            # only infer permanence from repetition (circuit breaker).
            raise ConnectionTimeout(origin, kind=FAULT_TIMEOUT)
        if kind == FAULT_TIMEOUT:
            raise ConnectionTimeout(origin)
        if kind == FAULT_RESET:
            raise ConnectionReset(origin)
        if kind == FAULT_SLOW:
            response = self.server.handle(request)
            response.latency_seconds = self.plan.slow_seconds
            return response
        status = http_fault_status(kind)
        headers = Headers([("Content-Type", "text/plain")])
        if status == 429:
            headers.set("Retry-After", "1")
        return HttpResponse(status=status or 500, headers=headers,
                            body=b"injected fault: " + kind.encode("ascii"))

    @staticmethod
    def _origin(host: str) -> str:
        return default_list().registrable_domain(host) or host


def wrap_server(server, plan: Optional[FaultPlan]):
    """Wrap ``server`` when a plan is given; identity otherwise."""
    if plan is None:
        return server
    return FaultyServer(server, plan)
