"""Minimal HTML generation and parsing.

The synthetic web serves real HTML documents and the browser engine
discovers resources and forms by *parsing* them — the same shape as a real
crawler — rather than passing structured objects around behind the page's
back.  The dialect is the subset shop pages in this simulation emit:
``script``/``img``/``link``/``iframe`` resource tags and ``form`` elements
with ``input``/``select`` fields.

Tracker snippets carry a ``data-tracker`` attribute naming the service that
owns them; the browser's script engine uses it to look up the service's
behaviour (our stand-in for executing third-party JavaScript).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_VOID_TAGS = frozenset({"img", "input", "link", "meta", "br", "hr"})


# --------------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Tag:
    """One parsed HTML start tag."""

    name: str
    attrs: Dict[str, str]

    def get(self, attr: str, default: str = "") -> str:
        return self.attrs.get(attr, default)


@dataclass
class ParsedForm:
    """A form element with its input fields."""

    action: str
    method: str
    form_id: str
    fields: List[Tuple[str, str, str]] = field(default_factory=list)
    # each field is (name, type, value)


@dataclass
class ParsedPage:
    """Everything the browser extracts from a document."""

    scripts: List[Tag] = field(default_factory=list)
    images: List[Tag] = field(default_factory=list)
    stylesheets: List[Tag] = field(default_factory=list)
    iframes: List[Tag] = field(default_factory=list)
    forms: List[ParsedForm] = field(default_factory=list)
    anchors: List[Tag] = field(default_factory=list)

    def resource_tags(self) -> List[Tuple[str, Tag]]:
        """(resource_type, tag) pairs in document order categories."""
        out: List[Tuple[str, Tag]] = []
        out.extend(("script", tag) for tag in self.scripts)
        out.extend(("image", tag) for tag in self.images)
        out.extend(("stylesheet", tag) for tag in self.stylesheets)
        out.extend(("subdocument", tag) for tag in self.iframes)
        return out


def _unescape(value: str) -> str:
    return (value.replace("&quot;", '"').replace("&lt;", "<")
            .replace("&gt;", ">").replace("&amp;", "&"))


def _parse_attrs(text: str) -> Dict[str, str]:
    attrs: Dict[str, str] = {}
    index = 0
    length = len(text)
    while index < length:
        while index < length and text[index] in " \t\r\n/":
            index += 1
        if index >= length:
            break
        start = index
        while index < length and text[index] not in "= \t\r\n/":
            index += 1
        name = text[start:index].lower()
        if not name:
            break
        while index < length and text[index] in " \t\r\n":
            index += 1
        value = ""
        if index < length and text[index] == "=":
            index += 1
            while index < length and text[index] in " \t\r\n":
                index += 1
            if index < length and text[index] in "\"'":
                quote = text[index]
                index += 1
                end = text.find(quote, index)
                if end == -1:
                    end = length
                value = text[index:end]
                index = end + 1
            else:
                start = index
                while index < length and text[index] not in " \t\r\n>":
                    index += 1
                value = text[start:index]
        attrs[name] = _unescape(value)
    return attrs


def iter_tags(html: str) -> List[Tag]:
    """All start tags in document order (comments and closers skipped)."""
    tags: List[Tag] = []
    index = 0
    length = len(html)
    while index < length:
        open_pos = html.find("<", index)
        if open_pos == -1:
            break
        if html.startswith("<!--", open_pos):
            end = html.find("-->", open_pos)
            index = length if end == -1 else end + 3
            continue
        close_pos = html.find(">", open_pos)
        if close_pos == -1:
            break
        inner = html[open_pos + 1:close_pos]
        index = close_pos + 1
        if not inner or inner.startswith("/") or inner.startswith("!"):
            continue
        name_end = 0
        while name_end < len(inner) and inner[name_end] not in " \t\r\n/>":
            name_end += 1
        name = inner[:name_end].lower()
        tags.append(Tag(name=name, attrs=_parse_attrs(inner[name_end:])))
    return tags


def parse_page(html: str) -> ParsedPage:
    """Extract resources and forms from a document."""
    page = ParsedPage()
    current_form: Optional[ParsedForm] = None
    for tag in _iter_tags_with_closers(html):
        if tag.name == "/form":
            if current_form is not None:
                page.forms.append(current_form)
                current_form = None
            continue
        if tag.name == "form":
            current_form = ParsedForm(
                action=tag.get("action", ""),
                method=tag.get("method", "GET").upper(),
                form_id=tag.get("id", ""))
            continue
        if tag.name == "input" and current_form is not None:
            current_form.fields.append((tag.get("name"),
                                        tag.get("type", "text"),
                                        tag.get("value")))
            continue
        if tag.name == "script" and tag.get("src"):
            page.scripts.append(tag)
        elif tag.name == "img" and tag.get("src"):
            page.images.append(tag)
        elif tag.name == "link" and tag.get("rel") == "stylesheet":
            page.stylesheets.append(tag)
        elif tag.name == "iframe" and tag.get("src"):
            page.iframes.append(tag)
        elif tag.name == "a" and tag.get("href"):
            page.anchors.append(tag)
    if current_form is not None:
        page.forms.append(current_form)
    return page


def _iter_tags_with_closers(html: str) -> List[Tag]:
    tags: List[Tag] = []
    index = 0
    length = len(html)
    while index < length:
        open_pos = html.find("<", index)
        if open_pos == -1:
            break
        if html.startswith("<!--", open_pos):
            end = html.find("-->", open_pos)
            index = length if end == -1 else end + 3
            continue
        close_pos = html.find(">", open_pos)
        if close_pos == -1:
            break
        inner = html[open_pos + 1:close_pos]
        index = close_pos + 1
        if not inner or inner.startswith("!"):
            continue
        if inner.startswith("/"):
            tags.append(Tag(name="/" + inner[1:].strip().lower(), attrs={}))
            continue
        name_end = 0
        while name_end < len(inner) and inner[name_end] not in " \t\r\n/>":
            name_end += 1
        name = inner[:name_end].lower()
        tags.append(Tag(name=name, attrs=_parse_attrs(inner[name_end:])))
    return tags


# --------------------------------------------------------------------------
# Generation
# --------------------------------------------------------------------------

def _escape(value: str) -> str:
    return (value.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def render_tag(name: str, attrs: Dict[str, str], void: bool = False) -> str:
    parts = ["<%s" % name]
    for attr_name, attr_value in attrs.items():
        parts.append(' %s="%s"' % (attr_name, _escape(attr_value)))
    parts.append(">" if void or name in _VOID_TAGS else "></%s>" % name)
    return "".join(parts)


def render_document(title: str, body_parts: List[str],
                    head_parts: Optional[List[str]] = None) -> str:
    head = "\n    ".join(head_parts or [])
    body = "\n    ".join(body_parts)
    return (
        "<!DOCTYPE html>\n"
        "<html>\n  <head>\n    <title>%s</title>\n    %s\n  </head>\n"
        "  <body>\n    %s\n  </body>\n</html>\n"
        % (_escape(title), head, body))


def render_form(action: str, method: str, form_id: str,
                fields: List[Tuple[str, str, str]]) -> str:
    lines = ['<form id="%s" action="%s" method="%s">'
             % (_escape(form_id), _escape(action), _escape(method))]
    for name, kind, value in fields:
        attrs = {"name": name, "type": kind}
        if value:
            attrs["value"] = value
        lines.append("  " + render_tag("input", attrs))
    lines.append('  <input type="submit" value="Submit">')
    lines.append("</form>")
    return "\n    ".join(lines)
