"""Randomized population generator.

The calibrated population (:mod:`repro.websim.shopping`) realizes the
paper's exact statistics; this generator builds *arbitrary* synthetic webs
from a seed — random sites, random tracker embeds, random leak behaviours
— for property-based testing, robustness experiments and what-if studies
(e.g. "how does detection recall change if most trackers adopt
whirlpool?").  Same machinery, different universe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.leakmodel import (
    CHANNEL_COOKIE,
    CHANNEL_PAYLOAD,
    CHANNEL_URI,
)
from ..core.persona import DEFAULT_PERSONA, Persona
from .population import Population
from .site import LeakBehavior, SiteAuthConfig, TrackerEmbed, Website
from .trackers import TrackerCatalog, TrackerService


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape of a random universe."""

    n_sites: int = 20
    n_trackers: int = 10
    leak_probability: float = 0.5
    embed_range: Tuple[int, int] = (1, 4)
    persistent_probability: float = 0.4
    cloaked_probability: float = 0.1
    confirmation_probability: float = 0.2
    get_form_probability: float = 0.05
    #: Probability that a leaking tracker salts its hashes (invisible to
    #: exact token matching; see repro.core.heuristics).
    salt_probability: float = 0.0
    #: Probability that a site runs a consent banner (always honoring).
    consent_probability: float = 0.0
    channel_choices: Tuple[str, ...] = (CHANNEL_URI, CHANNEL_PAYLOAD,
                                        CHANNEL_COOKIE)
    chain_choices: Tuple[Tuple[str, ...], ...] = (
        (), ("sha256",), ("md5",), ("sha1",), ("base64",),
        ("md5", "sha256"),
    )


def _random_service(index: int, rng: random.Random,
                    config: GeneratorConfig) -> TrackerService:
    domain = "tracker%02d.example" % index
    cloaked = rng.random() < config.cloaked_probability
    return TrackerService(
        domain=domain,
        organisation="Tracker %d" % index,
        endpoint_host="metrics" if cloaked else ("collect.%s" % domain),
        endpoint_path="/v1/event",
        script_host="static.%s" % domain,
        script_path="/tag.js",
        persistent=rng.random() < config.persistent_probability,
        cloaked_zone=domain if cloaked else None,
        default_param=rng.choice(("uid", "em", "pd", "u_hem", "data")),
    )


def _random_behavior(rng: random.Random, config: GeneratorConfig,
                     service: TrackerService) -> LeakBehavior:
    channel = rng.choice(config.channel_choices)
    if channel == CHANNEL_COOKIE and not service.is_cloaked:
        # A first-party PII cookie only reaches a tracker through a
        # cloaked (same-site) collection host; plain third parties get
        # the identifier via the URI instead.
        channel = CHANNEL_URI
    channels: Tuple[str, ...] = (channel,)
    if channel == CHANNEL_URI and rng.random() < 0.2:
        channels = (CHANNEL_URI, CHANNEL_PAYLOAD)
    chains = (rng.choice(config.chain_choices),)
    if rng.random() < 0.1:
        other = rng.choice(config.chain_choices)
        if other != chains[0]:
            chains = chains + (other,)
    pii: Tuple[str, ...] = ("email",)
    if rng.random() < 0.15:
        pii = ("email", "name")
    salt = ""
    if rng.random() < config.salt_probability and any(chains):
        salt = "salt-%s::" % service.domain
    return LeakBehavior(channels=channels, chains=chains, pii_fields=pii,
                        salt=salt)


def generate_population(seed: int = 0,
                        config: Optional[GeneratorConfig] = None,
                        persona: Optional[Persona] = None) -> Population:
    """Build a random, fully crawlable population from a seed."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)

    catalog = TrackerCatalog()
    services = [_random_service(index, rng, config)
                for index in range(config.n_trackers)]
    for service in services:
        catalog.add(service)

    sites: Dict[str, Website] = {}
    for index in range(config.n_sites):
        # ".example" keeps each site its own registrable domain (a shared
        # "example.com" suffix would make every site same-party).
        domain = "shop%03d.example" % index
        embed_count = rng.randint(*config.embed_range)
        picks = rng.sample(services, min(embed_count, len(services)))
        embeds: List[TrackerEmbed] = []
        cname_records: Dict[str, str] = {}
        for service in picks:
            behavior = None
            if rng.random() < config.leak_probability:
                behavior = _random_behavior(rng, config, service)
            if service.is_cloaked:
                cname_records["metrics"] = \
                    "%s.collect.%s" % (domain, service.domain)
            embeds.append(TrackerEmbed(service=service, leak=behavior))
        auth = SiteAuthConfig(
            requires_email_confirmation=(
                rng.random() < config.confirmation_probability),
            signup_method=("GET" if rng.random()
                           < config.get_form_probability else "POST"))
        consent = None
        if rng.random() < config.consent_probability:
            from .consent import CMP_PROVIDERS, ConsentBanner
            consent = ConsentBanner(
                provider=sorted(CMP_PROVIDERS)[index % len(CMP_PROVIDERS)])
        sites[domain] = Website(domain=domain, auth=auth, embeds=embeds,
                                cname_records=cname_records,
                                tranco_rank=1000 + index,
                                consent=consent)
    return Population(sites=sites, catalog=catalog,
                      persona=persona or DEFAULT_PERSONA)
