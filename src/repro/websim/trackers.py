"""Third-party tracker catalog.

Every third-party *receiver* in the study is modelled as a
:class:`TrackerService`: where its snippet is served from, where its
collection endpoint lives, whether it stores the leaked identifier
persistently (the §5.2 behaviour: the ID re-appears on every subpage), and
whether it is reached through CNAME cloaking.

The twenty persistent tracking providers of Table 2 are transcribed with
their real endpoints and trackid parameter names; the remaining receivers
(ad platforms, martech/CDP vendors, and the eight services Brave's Shields
misses) are modelled generically.  The catalog also maps request hosts back
to services — the entity-mapping step every measurement pipeline needs
(compare Disconnect's entity list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..psl import default_list


@dataclass(frozen=True)
class TrackerService:
    """One third-party service that can receive traffic (and maybe PII)."""

    domain: str                      # receiver identity (paper's "domain")
    organisation: str
    endpoint_host: str               # host collecting events/PII
    endpoint_path: str               # collection path
    script_host: str                 # host serving the JS snippet
    script_path: str                 # snippet path
    persistent: bool = False         # Table 2 provider: ID used on subpages
    cloaked_zone: Optional[str] = None  # CNAME target zone when cloaked
    default_param: str = "uid"       # canonical trackid parameter
    sets_cookie: bool = True         # sets its own third-party cookie

    @property
    def is_cloaked(self) -> bool:
        return self.cloaked_zone is not None


def _service(domain: str, organisation: str, endpoint_host: str,
             endpoint_path: str, param: str = "uid",
             script_host: Optional[str] = None,
             script_path: str = "/tag.js", persistent: bool = False,
             cloaked_zone: Optional[str] = None,
             sets_cookie: bool = True) -> TrackerService:
    return TrackerService(
        domain=domain, organisation=organisation,
        endpoint_host=endpoint_host, endpoint_path=endpoint_path,
        script_host=script_host or endpoint_host, script_path=script_path,
        persistent=persistent, cloaked_zone=cloaked_zone,
        default_param=param, sets_cookie=sets_cookie)


# --------------------------------------------------------------------------
# The 20 persistent tracking providers of Table 2.
# --------------------------------------------------------------------------

TABLE2_SERVICES: Tuple[TrackerService, ...] = (
    _service("facebook.com", "Facebook", "www.facebook.com", "/tr",
             param="udff[em]", script_host="connect.facebook.net",
             script_path="/en_US/fbevents.js", persistent=True),
    _service("criteo.com", "Criteo", "widget.criteo.com", "/event",
             param="p0", script_host="static.criteo.net",
             script_path="/js/ld/ld.js", persistent=True),
    _service("pinterest.com", "Pinterest", "ct.pinterest.com", "/v3/user",
             param="pd", script_host="s.pinimg.com",
             script_path="/ct/core.js", persistent=True),
    _service("snapchat.com", "Snap", "tr.snapchat.com", "/p",
             param="u_hem", script_host="sc-static.net",
             script_path="/scevent.min.js", persistent=True),
    _service("cquotient.com", "Salesforce CQ", "cq.cquotient.com",
             "/pixel", param="emailId", persistent=True),
    _service("bluecore.com", "Bluecore", "api.bluecore.com",
             "/api/track/mobile/v1", param="data", persistent=True),
    _service("klaviyo.com", "Klaviyo", "a.klaviyo.com", "/api/track",
             param="data", script_host="static.klaviyo.com",
             script_path="/onsite/js/klaviyo.js", persistent=True),
    _service("oracleinfinity.io", "Oracle", "dc.oracleinfinity.io",
             "/v3/collect", param="email_hash", persistent=True),
    _service("rlcdn.com", "LiveRamp", "api.rlcdn.com", "/api/segment",
             param="s", persistent=True),
    _service("omtrdc.net", "Adobe", "metrics", "/b/ss", param="v1",
             script_host="assets.adobedtm.com", script_path="/launch.js",
             persistent=True, cloaked_zone="omtrdc.net"),
    _service("castle.io", "Castle", "api.castle.io", "/v1/monitor",
             param="up", persistent=True),
    _service("custora.com", "Custora", "api.custora.com", "/v1/track",
             param="uid", persistent=True),
    _service("dotomi.com", "Conversant", "apps.dotomi.com", "/profile",
             param="dtm_email_hash", persistent=True),
    _service("inside-graph.com", "Inside", "collect.inside-graph.com",
             "/ig", param="md", persistent=True),
    _service("krxd.net", "Salesforce DMP", "beacon.krxd.net", "/event",
             param="_kua_email_sha256", persistent=True),
    _service("pxf.io", "Impact", "events.pxf.io", "/events",
             param="custemail", persistent=True),
    _service("taboola.com", "Taboola", "trc.taboola.com", "/tb",
             param="eflp", persistent=True),
    _service("thebrighttag.com", "Signal", "s.thebrighttag.com", "/tag",
             param="_cb_bt_data", persistent=True),
    _service("yahoo.com", "Verizon Media", "sp.analytics.yahoo.com", "/sp",
             param="he", persistent=True),
    _service("zendesk.com", "Zendesk", "api.zendesk.com", "/embeddable",
             param="data", persistent=True),
)

#: Alternate trackid parameters per Table 2 (shown when multiple exist).
ALT_PARAMS: Dict[str, Tuple[str, ...]] = {
    "facebook.com": ("udff[em]", "ud[em]"),
    "criteo.com": ("p0", "p1"),
    "oracleinfinity.io": ("email_hash", "ora.email"),
    "custora.com": ("uid", "_custrack1_identified"),
    "omtrdc.net": ("v1", "v22"),
}

# --------------------------------------------------------------------------
# Advertising platforms that receive PII without a stable trackid parameter
# (they appear in Figure 2 but not in Table 2).
# --------------------------------------------------------------------------

AD_PLATFORM_SERVICES: Tuple[TrackerService, ...] = (
    _service("google-analytics.com", "Google", "www.google-analytics.com",
             "/collect", param="uid"),
    _service("doubleclick.net", "Google", "stats.g.doubleclick.net",
             "/j/collect", param="em"),
    _service("googleadservices.com", "Google", "www.googleadservices.com",
             "/pagead/conversion", param="em"),
    _service("bing.com", "Microsoft", "bat.bing.com", "/action",
             param="em"),
    _service("tiktok.com", "TikTok", "analytics.tiktok.com",
             "/api/v2/pixel", param="email"),
    _service("yandex.ru", "Yandex", "mc.yandex.ru", "/watch",
             param="params"),
    _service("amazon-adsystem.com", "Amazon", "s.amazon-adsystem.com",
             "/iu3", param="pd"),
    _service("twitter.com", "Twitter", "analytics.twitter.com",
             "/i/adsct", param="p_user_id"),
)

# --------------------------------------------------------------------------
# The eight services missed by Brave Shields v1.29.81 (paper footnote 4).
# zendesk.com is both a Table 2 provider and a Brave miss.
# --------------------------------------------------------------------------

BRAVE_MISSED_DOMAINS: Tuple[str, ...] = (
    "aliyun.com", "cartsync.io", "gravatar.com", "herokuapp.com",
    "intercom.io", "lmcdn.ru", "okta-emea.com", "zendesk.com",
)

_BRAVE_MISSED_SERVICES: Tuple[TrackerService, ...] = (
    _service("aliyun.com", "Alibaba Cloud", "log.aliyun.com", "/track",
             param="uid"),
    _service("cartsync.io", "CartSync", "sync.cartsync.io", "/v1/sync",
             param="email"),
    _service("gravatar.com", "Automattic", "www.gravatar.com", "/avatar",
             param="d"),
    _service("herokuapp.com", "Heroku-hosted app", "pixel-sync.herokuapp.com",
             "/collect", param="email"),
    _service("intercom.io", "Intercom", "api-iam.intercom.io", "/messenger",
             param="user_data"),
    _service("lmcdn.ru", "LiveMaster", "static.lmcdn.ru", "/px",
             param="e"),
    _service("okta-emea.com", "Okta", "login.okta-emea.com", "/api/v1/authn",
             param="username"),
)

# --------------------------------------------------------------------------
# Generic martech / analytics fillers (receivers beyond the named ones).
# --------------------------------------------------------------------------

_FILLER_DOMAINS: Tuple[str, ...] = (
    "adroll.com", "outbrain.com", "quantserve.com", "scorecardresearch.com",
    "hotjar.com", "mouseflow.com", "fullstory.com", "segment.io",
    "mixpanel.com", "amplitude.com", "branch.io", "braze.com",
    "iterable.com", "sailthru.com", "listrak.com", "attentivemobile.com",
    "yotpo.com", "gorgias.com", "dynamicyield.com", "nosto.com",
    "emarsys.com", "exponea.com", "insider.com", "moengage.com",
    "clevertap.com", "leanplum.com", "airship.com", "onesignal.com",
    "pushwoosh.com", "exacttarget.com", "responsys.net", "silverpop.com",
    "dotdigital.com", "omnisend.com", "drip.com", "convertkit.com",
    "activehosted.com", "getresponse.com", "sendinblue.com", "mailchimp.com",
    "hubspot.com", "marketo.net", "pardot.com", "eloqua.com",
    "salesloft.com", "drift.com", "zoominfo.com", "clearbit.com",
    "fouanalytics.com", "heap.io", "pendo.io", "logrocket.com",
    "smartlook.com", "inspectlet.com", "luckyorange.com", "crazyegg.com",
    "vwo.com", "optimizely.com", "abtasty.com", "kameleoon.com",
    "monetate.net", "qubit.com", "evergage.com", "bounceexchange.com",
    "justuno.com", "privy.com", "sumo.com", "optinmonster.com",
)


def _filler_service(domain: str) -> TrackerService:
    label = domain.split(".")[0]
    return _service(domain, label.capitalize(), "events.%s" % domain,
                    "/collect", param="uid")


# --------------------------------------------------------------------------
# Benign third parties (CDNs, fonts) that never receive PII — negative
# traffic for the detector and the blocklists.
# --------------------------------------------------------------------------

BENIGN_SERVICES: Tuple[TrackerService, ...] = (
    _service("jsdelivr.net", "jsDelivr CDN", "cdn.jsdelivr.net",
             "/npm/app.js", sets_cookie=False),
    _service("googleapis.com", "Google Fonts", "fonts.googleapis.com",
             "/css", sets_cookie=False),
    _service("cloudflare.com", "Cloudflare", "cdnjs.cloudflare.com",
             "/ajax/libs/jquery.js", sets_cookie=False),
    _service("shopifycdn.com", "Shopify CDN", "cdn.shopifycdn.com",
             "/assets/storefront.js", sets_cookie=False),
)


class TrackerCatalog:
    """Registry of tracker services with host -> service attribution."""

    def __init__(self, services: Iterable[TrackerService] = ()) -> None:
        self._by_domain: Dict[str, TrackerService] = {}
        # host -> attribution memo; every captured request host is
        # attributed (often several times), and the linear suffix scan
        # over the whole service universe is the price worth paying
        # exactly once per distinct host.  Invalidated on `add`.
        self._host_cache: Dict[str, Optional[TrackerService]] = {}
        for service in services:
            self.add(service)

    def add(self, service: TrackerService) -> None:
        if service.domain in self._by_domain:
            raise ValueError("duplicate service: %s" % service.domain)
        self._by_domain[service.domain] = service
        self._host_cache.clear()

    def get(self, domain: str) -> TrackerService:
        return self._by_domain[domain]

    def has(self, domain: str) -> bool:
        return domain in self._by_domain

    def domains(self) -> List[str]:
        return list(self._by_domain)

    def services(self) -> List[TrackerService]:
        return list(self._by_domain.values())

    def attribute_host(self, host: str) -> Optional[TrackerService]:
        """Map a request host to the service operating it.

        Tries suffix matching against each service's domain and hosts first
        (the entity-list approach), then falls back to the registrable
        domain.  Returns None for hosts no service claims.
        """
        host = host.lower()
        if host in self._host_cache:
            return self._host_cache[host]
        attributed: Optional[TrackerService] = None
        for service in self._by_domain.values():
            candidates = (service.domain, service.endpoint_host,
                          service.script_host)
            for candidate in candidates:
                if host == candidate or host.endswith("." + candidate):
                    attributed = service
                    break
            if attributed is not None:
                break
        if attributed is None:
            registrable = default_list().registrable_domain(host)
            if registrable and registrable in self._by_domain:
                attributed = self._by_domain[registrable]
        self._host_cache[host] = attributed
        return attributed


def build_default_catalog() -> TrackerCatalog:
    """The full service universe used by the calibrated study."""
    catalog = TrackerCatalog()
    for service in TABLE2_SERVICES:
        catalog.add(service)
    for service in AD_PLATFORM_SERVICES:
        catalog.add(service)
    for service in _BRAVE_MISSED_SERVICES:
        catalog.add(service)
    for domain in _FILLER_DOMAINS:
        catalog.add(_filler_service(domain))
    for service in BENIGN_SERVICES:
        catalog.add(service)
    return catalog


#: Domains of services that set third-party cookies / run tracking scripts,
#: i.e. what Brave Shields and the blocklists conceptually target.
def tracking_domains(catalog: TrackerCatalog) -> List[str]:
    return [s.domain for s in catalog.services()
            if s.sets_cookie and s.domain not in
            {b.domain for b in BENIGN_SERVICES}]
