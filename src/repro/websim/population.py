"""The assembled synthetic web: sites + trackers + DNS.

A :class:`Population` bundles everything a crawl needs — the website
universe, the tracker catalog, and a DNS zone with A records for every
origin plus the CNAME records that implement cloaked trackers — and knows
how to construct the :class:`~repro.websim.server.WebServer` and
:class:`~repro.dnssim.Resolver` views over itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.persona import DEFAULT_PERSONA, Persona
from ..dnssim import FlakyResolver, Resolver, Zone
from ..netsim.faults import FaultPlan
from .faults import wrap_server
from .server import CAPTCHA_PROVIDER, MailHook, WebServer
from .site import Website
from .trackers import TrackerCatalog


@dataclass
class Population:
    """A complete, crawlable synthetic web."""

    sites: Dict[str, Website]
    catalog: TrackerCatalog
    persona: Persona = field(default_factory=lambda: DEFAULT_PERSONA)
    zone: Zone = field(default_factory=Zone)

    def __post_init__(self) -> None:
        if not self.zone.records:
            self.zone = build_zone(self.sites, self.catalog)

    def resolver(self, fault_plan: Optional[FaultPlan] = None) -> Resolver:
        """The population's resolver, optionally made flaky by a plan."""
        resolver = Resolver(self.zone)
        if fault_plan is not None:
            return FlakyResolver(resolver, fault_plan)
        return resolver

    def build_server(self, mail_hook: Optional[MailHook] = None,
                     fault_plan: Optional[FaultPlan] = None) -> WebServer:
        """The population's origin server, optionally fault-injected."""
        server = WebServer(sites=self.sites, catalog=self.catalog,
                           mail_hook=mail_hook)
        return wrap_server(server, fault_plan)

    def site_list(self) -> List[Website]:
        return list(self.sites.values())

    def crawlable_sites(self) -> List[Website]:
        return [site for site in self.sites.values() if site.is_crawlable]


def build_zone(sites: Dict[str, Website], catalog: TrackerCatalog) -> Zone:
    """DNS data for every origin in the population.

    Each site gets A records for its apex and ``www`` host; cloaked
    subdomains get CNAME records pointing into the tracker zone (with the
    tracker-side target itself resolvable).  Every tracker endpoint and
    script host gets an A record.
    """
    zone = Zone()
    for site in sites.values():
        zone.add_a(site.domain)
        zone.add_a(site.www_host)
        for label, target in site.cname_records.items():
            zone.add_cname("%s.%s" % (label, site.domain), target)
            zone.add_a(target)
    for service in catalog.services():
        zone.add_a(service.script_host)
        zone.add_a(service.domain)
        if not service.is_cloaked:
            # Cloaked endpoints live on first-party subdomains (added above).
            zone.add_a(service.endpoint_host)
    zone.add_a("ct.%s" % CAPTCHA_PROVIDER)
    zone.add_a(CAPTCHA_PROVIDER)
    from .consent import CMP_PROVIDERS
    for provider in CMP_PROVIDERS:
        zone.add_a(provider)
        zone.add_a("cdn.%s" % provider)
        zone.add_a("consent.%s" % provider)
    return zone
