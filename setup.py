"""Setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`pip install -e . --no-use-pep517`) on
offline machines that cannot fetch build dependencies.
"""

from setuptools import setup

setup()
