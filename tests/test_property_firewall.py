"""Property-based tests for the PII firewall's scrubbing guarantee."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import hashes
from repro.core import CandidateTokenSet
from repro.core.persona import DEFAULT_PERSONA
from repro.mitigation import PiiFirewall, REDACTION
from repro.netsim import HttpRequest, Url

_CACHE = {}


def _firewall():
    if "fw" not in _CACHE:
        _CACHE["tokens"] = CandidateTokenSet(DEFAULT_PERSONA)
        _CACHE["fw"] = PiiFirewall(_CACHE["tokens"])
    return _CACHE["fw"]


_CHAINS = st.sampled_from([
    (), ("sha256",), ("md5",), ("sha1",), ("base64",), ("md5", "sha256"),
    ("base64", "sha1", "sha256"), ("whirlpool",), ("ripemd160",),
])
_NOISE = st.text(alphabet="abcdefghij0123456789", min_size=0, max_size=12)
_PARAM = st.sampled_from(["uid", "em", "p0", "udff[em]", "data", "x"])


@given(_CHAINS, _NOISE, _PARAM)
@settings(max_examples=60, deadline=None)
def test_scrub_removes_every_embedded_token(chain, noise, param):
    """Whatever encoding a tracker picks, the scrubbed request no longer
    contains the token (the detector-grade guarantee)."""
    firewall = _firewall()
    token = hashes.apply_chain(DEFAULT_PERSONA.email, list(chain))
    url = Url(scheme="https", host="t.example", path="/p",
              query=((param, noise + token),))
    request = HttpRequest(method="GET", url=url)
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert report.modified
    assert token not in str(scrubbed.url)
    assert REDACTION in str(scrubbed.url)
    # Scrubbing is idempotent: nothing more to remove.
    again, second_report = firewall.scrub_request(scrubbed,
                                                  "www.shop.example")
    assert not second_report.modified


@given(_NOISE, _PARAM)
@settings(max_examples=40, deadline=None)
def test_scrub_never_touches_clean_requests(noise, param):
    firewall = _firewall()
    url = Url(scheme="https", host="t.example", path="/p",
              query=((param, noise or "benign"),))
    request = HttpRequest(method="GET", url=url)
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert not report.modified
    assert scrubbed is request


@given(st.lists(_CHAINS, min_size=1, max_size=3, unique=True))
@settings(max_examples=30, deadline=None)
def test_scrub_handles_multiple_tokens_in_one_value(chains):
    firewall = _firewall()
    tokens = [hashes.apply_chain(DEFAULT_PERSONA.email, list(chain))
              for chain in chains]
    url = Url(scheme="https", host="t.example", path="/p",
              query=(("blob", "::".join(tokens)),))
    request = HttpRequest(method="GET", url=url)
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert report.modified
    value = scrubbed.url.query_get("blob")
    for token in tokens:
        assert token not in value
