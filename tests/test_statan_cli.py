"""repro-lint CLI: exit codes, JSON schema, baseline workflow."""

import json
import os
import textwrap

from repro.statan.cli import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    JSON_SCHEMA_VERSION,
    main,
)

CLEAN_SOURCE = "import hashlib\nx = hashlib.sha256(b'ok').hexdigest()\n"
DIRTY_SOURCE = textwrap.dedent("""
    import time
    def stamp():
        return time.time()
""")


def _write_module(tmp_path, source, name="mod.py"):
    pkg = tmp_path / "src" / "repro" / "crawler"
    pkg.mkdir(parents=True, exist_ok=True)
    path = pkg / name
    path.write_text(source)
    return str(path)


def test_clean_tree_exits_zero(tmp_path, capsys):
    path = _write_module(tmp_path, CLEAN_SOURCE)
    assert main([path, "--no-baseline"]) == EXIT_CLEAN
    assert "0 new finding(s)" in capsys.readouterr().out


def test_findings_exit_one_and_print_location(tmp_path, capsys):
    path = _write_module(tmp_path, DIRTY_SOURCE)
    assert main([path, "--no-baseline"]) == EXIT_FINDINGS
    output = capsys.readouterr().out
    assert "DET101" in output
    assert "mod.py:4:" in output  # path:line: prefix


def test_json_output_schema(tmp_path, capsys):
    path = _write_module(tmp_path, DIRTY_SOURCE)
    assert main([path, "--no-baseline", "--format", "json"]) == \
        EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["tool"] == "repro-lint"
    assert payload["files_analyzed"] == 1
    assert payload["counts"]["new"] == 1
    assert payload["counts"]["by_rule"] == {"DET101": 1}
    assert payload["counts"]["by_family"] == {"determinism": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "family", "path", "line", "col",
                            "message", "snippet"}
    assert finding["rule"] == "DET101"
    assert payload["errors"] == [] and payload["baselined"] == []


def test_write_baseline_then_clean(tmp_path, capsys):
    path = _write_module(tmp_path, DIRTY_SOURCE)
    baseline = str(tmp_path / "baseline.json")
    assert main([path, "--baseline", baseline,
                 "--write-baseline"]) == EXIT_CLEAN
    capsys.readouterr()
    # Same findings, now baselined: gate passes.
    assert main([path, "--baseline", baseline]) == EXIT_CLEAN
    assert "1 baselined" in capsys.readouterr().out


def test_new_finding_on_top_of_baseline_fails(tmp_path, capsys):
    path = _write_module(tmp_path, DIRTY_SOURCE)
    baseline = str(tmp_path / "baseline.json")
    assert main([path, "--baseline", baseline,
                 "--write-baseline"]) == EXIT_CLEAN
    _write_module(tmp_path, DIRTY_SOURCE + "y = time.monotonic()\n")
    assert main([path, "--baseline", baseline]) == EXIT_FINDINGS
    output = capsys.readouterr().out
    assert "monotonic" in output  # only the new finding is printed
    assert "time.time()" not in output


def test_select_restricts_rules(tmp_path, capsys):
    source = DIRTY_SOURCE + "h = hash('domain')\n"
    path = _write_module(tmp_path, source)
    assert main([path, "--no-baseline", "--select", "DET104",
                 "--format", "json"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["by_rule"] == {"DET104": 1}


def test_select_family(tmp_path, capsys):
    source = DIRTY_SOURCE + textwrap.dedent("""
        class Job:
            def __init__(self):
                self.f = lambda: 1
    """)
    path = _write_module(tmp_path, source)
    assert main([path, "--no-baseline", "--select", "pickle-safety",
                 "--format", "json"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["counts"]["by_family"]) == {"pickle-safety"}


def test_unknown_select_is_usage_error(tmp_path, capsys):
    import pytest
    path = _write_module(tmp_path, CLEAN_SOURCE)
    with pytest.raises(SystemExit) as excinfo:
        main([path, "--select", "NOPE"])
    assert excinfo.value.code == EXIT_ERROR


def test_parse_error_exits_two(tmp_path, capsys):
    path = _write_module(tmp_path, "def f(:\n")
    assert main([path, "--no-baseline"]) == EXIT_ERROR
    assert "parse error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    output = capsys.readouterr().out
    for rule_id in ("DET101", "DET102", "DET103", "DET104",
                    "PII201", "PKL301", "PKL302", "PKL303",
                    "CON401", "CON402", "CON403", "CON404", "CON405",
                    "STA001"):
        assert rule_id in output


def test_explain_prints_full_rule_doc(capsys):
    assert main(["--explain", "CON402"]) == EXIT_CLEAN
    output = capsys.readouterr().out
    assert "CON402" in output and "lock-order-inversion" in output
    for section in ("Why:", "Bad:", "Good:", "How to fix:"):
        assert section in output


def test_explain_every_registered_rule(capsys):
    from repro.statan.rules import default_rules
    for rule in default_rules():
        assert main(["--explain", rule.id]) == EXIT_CLEAN
        output = capsys.readouterr().out
        assert rule.id in output and "Why:" in output


def test_explain_unknown_rule_is_usage_error(capsys):
    import pytest
    with pytest.raises(SystemExit) as excinfo:
        main(["--explain", "NOPE999"])
    assert excinfo.value.code == EXIT_ERROR


def test_select_id_prefix(tmp_path, capsys):
    path = _write_module(tmp_path, CLEAN_SOURCE)
    assert main([path, "--no-baseline", "--select", "CON",
                 "--format", "json"]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["new"] == 0


def test_suppression_counted(tmp_path, capsys):
    path = _write_module(
        tmp_path,
        "import time\n"
        "t = time.time()  # statan: ignore[DET101] -- deadline only\n")
    assert main([path, "--no-baseline"]) == EXIT_CLEAN
    assert "1 inline-suppressed" in capsys.readouterr().out


def test_unjustified_suppression_fails_gate(tmp_path, capsys):
    path = _write_module(
        tmp_path,
        "import time\nt = time.time()  # statan: ignore[DET101]\n")
    assert main([path, "--no-baseline"]) == EXIT_FINDINGS
    assert "STA001" in capsys.readouterr().out


def test_default_baseline_discovered_in_cwd(tmp_path, capsys,
                                            monkeypatch):
    path = _write_module(tmp_path, DIRTY_SOURCE)
    monkeypatch.chdir(tmp_path)
    assert main([path, "--write-baseline"]) == EXIT_CLEAN
    assert os.path.exists(str(tmp_path / ".repro-lint-baseline.json"))
    capsys.readouterr()
    assert main([path]) == EXIT_CLEAN
    assert "baselined" in capsys.readouterr().out


def test_baseline_found_from_other_cwd(tmp_path, capsys, monkeypatch):
    """Regression: the committed baseline must be honoured when
    repro-lint runs from a directory other than the repo root — the
    lookup walks up from the scanned paths, not just the CWD."""
    path = _write_module(tmp_path, DIRTY_SOURCE)
    monkeypatch.chdir(tmp_path)
    assert main([path, "--write-baseline"]) == EXIT_CLEAN
    capsys.readouterr()
    elsewhere = tmp_path / "elsewhere"
    elsewhere.mkdir()
    monkeypatch.chdir(elsewhere)
    assert main([path]) == EXIT_CLEAN
    assert "baselined" in capsys.readouterr().out
