"""Property-based tests for the matchers (Aho-Corasick, ABP patterns)."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.blocklist import compile_pattern, parse_filter
from repro.core import AhoCorasick

_ALPHABET = "ab@."
_PATTERNS = st.lists(
    st.text(alphabet=_ALPHABET, min_size=1, max_size=5),
    min_size=1, max_size=6, unique=True)
_TEXTS = st.text(alphabet=_ALPHABET, max_size=60)


def _naive(text, patterns):
    found = set()
    for pattern in patterns:
        start = 0
        while True:
            index = text.find(pattern, start)
            if index == -1:
                break
            found.add((index, pattern))
            start = index + 1
    return found


@given(_PATTERNS, _TEXTS)
def test_aho_corasick_equals_naive_search(patterns, text):
    automaton = AhoCorasick()
    for pattern in patterns:
        automaton.add(pattern, None)
    result = {(m.start, m.pattern) for m in automaton.find_all(text)}
    assert result == _naive(text, patterns)


@given(_PATTERNS, _TEXTS)
def test_contains_any_consistent_with_find_all(patterns, text):
    automaton = AhoCorasick()
    for pattern in patterns:
        automaton.add(pattern, None)
    assert automaton.contains_any(text) == bool(automaton.find_all(text))


@given(st.tuples(
    st.sampled_from(["track", "pixel", "collect", "b/ss", "tr"]),
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)))
def test_substring_rules_match_iff_substring(parts):
    token, noise = parts
    rule = parse_filter("/%s/" % token)
    url_with = "https://%s.net/%s/x" % (noise, token)
    url_without = "https://%s.net/other/x" % noise
    assert rule.matches_url(url_with)
    assert ("/%s/" % token) not in url_without or \
        rule.matches_url(url_without)


@given(st.text(alphabet=string.ascii_lowercase + string.digits,
               min_size=2, max_size=10))
def test_domain_anchor_never_matches_inside_path(domain_label):
    rule = parse_filter("||%s.net^" % domain_label)
    assert rule.matches_url("https://%s.net/x" % domain_label)
    assert rule.matches_url("https://a.%s.net/x" % domain_label)
    assert not rule.matches_url("https://other.com/%s.net/x" % domain_label)


@given(st.text(alphabet=string.ascii_lowercase + "/.-", min_size=1,
               max_size=12))
def test_compiled_pattern_literal_is_substring_match(literal):
    regex = compile_pattern(literal, match_case=False)
    assert regex.search("prefix" + literal + "suffix")
